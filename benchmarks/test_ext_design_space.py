"""Extension bench: the design space around Table I.

Validates that the published configuration sits at the knee of both
sizing curves: 16 checkers (8 suffice for compute-bound code — figure
12's half-idle observation), and 6 KiB of log SRAM (smaller logs force
shorter, costlier checkpoints on memory-bound code; bigger buys little).
"""

import pytest

from repro.experiments import ext_design_space
from repro.workloads import build_bitcount, build_stream


@pytest.fixture(scope="module")
def design(figure_scale):
    workloads = [
        build_bitcount(values=int(80 * figure_scale)),
        build_stream(elements=256, passes=max(2, int(2 * figure_scale))),
    ]
    return ext_design_space.run(workloads=workloads)


def test_ext_design_space_sweep(once, figure_scale):
    workloads = [build_bitcount(values=int(40 * figure_scale))]
    result = once(
        lambda: ext_design_space.run(
            workloads=workloads, checker_counts=(8, 16), log_sizes=(6144,)
        )
    )
    assert result.checker_sweep


def test_ext_design_space_too_few_checkers_stall(once, design):
    points = once(lambda: design.points_for("stream", "checker"))
    by_count = {p.checker_count: p for p in points}
    assert by_count[2].slowdown > by_count[16].slowdown * 1.5
    assert by_count[2].checker_wait_us > by_count[16].checker_wait_us


def test_ext_design_space_sixteen_is_the_knee(once, design):
    """Doubling past Table I's 16 checkers buys (essentially) nothing."""
    points = once(lambda: design.points_for("stream", "checker"))
    by_count = {p.checker_count: p for p in points}
    assert by_count[32].slowdown >= by_count[16].slowdown * 0.99


def test_ext_design_space_eight_suffice_for_compute(once, design):
    """Figure 12's observation: compute-bound code needs half the pool."""
    points = once(lambda: design.points_for("bitcount", "checker"))
    by_count = {p.checker_count: p for p in points}
    assert by_count[8].slowdown <= by_count[16].slowdown * 1.02


def test_ext_design_space_small_logs_hurt_memory_bound(once, design):
    points = once(lambda: design.points_for("stream", "log"))
    by_size = {p.log_bytes: p for p in points}
    assert by_size[1536].slowdown > by_size[6144].slowdown
    assert by_size[1536].mean_checkpoint_length < by_size[6144].mean_checkpoint_length


def test_ext_design_space_bigger_logs_buy_little(once, design):
    points = once(lambda: design.points_for("stream", "log"))
    by_size = {p.log_bytes: p for p in points}
    assert by_size[12288].slowdown >= by_size[6144].slowdown * 0.97


def test_ext_design_space_print_table(once, design):
    print()
    print(once(design.table))
