"""Table I: the simulated platform itself.

Table I is configuration, not results; this bench characterises the
substrate built from it — baseline IPC and simulator throughput on the
two design-space workloads — and validates that every Table I value is
what the engine actually instantiates.
"""

from repro.config import table1_config
from repro.core import BaselineSystem, ParaDoxSystem
from repro.workloads import build_bitcount, build_stream


def test_tab01_bitcount_baseline(once):
    workload = build_bitcount(values=100)
    result = once(lambda: BaselineSystem().run(workload))
    cycles = result.wall_ns / table1_config().main_core.cycle_ns
    ipc = result.instructions / cycles
    print(f"\n[Table I] bitcount baseline: {result.instructions} inst, "
          f"IPC {ipc:.2f}, wall {result.wall_ns / 1e3:.1f} us")
    assert 1.0 < ipc <= 3.0  # a 3-wide core on compute-bound code


def test_tab01_stream_baseline(once):
    workload = build_stream(elements=256, passes=2)
    result = once(lambda: BaselineSystem().run(workload))
    cycles = result.wall_ns / table1_config().main_core.cycle_ns
    ipc = result.instructions / cycles
    print(f"\n[Table I] stream baseline: {result.instructions} inst, IPC {ipc:.2f}")
    assert 0.2 < ipc <= 3.0


def test_tab01_engine_instantiates_table(once):
    workload = build_bitcount(values=10)
    engine = once(lambda: ParaDoxSystem().engine(workload))
    config = table1_config()
    assert len(engine.pool.cores) == config.checker.count == 16
    assert engine.timing.config.rob_entries == 40
    assert engine.hierarchy.l2.config.size_bytes == 1 << 20
    assert engine.tracker.ways == 4  # L1D associativity governs buffering
