#!/usr/bin/env python
"""Hot-path benchmark harness.

Measures the three numbers the performance work is steered by and writes
them to a ``BENCH_*.json`` file (see ``docs/PERFORMANCE.md`` for how to
read one):

* ``executor`` — functional-execution throughput (instructions/second of
  the bare :class:`repro.isa.executor.Executor` step loop, via a golden
  run);
* ``engine`` — full protected-simulation throughput (useful
  instructions/second of a ParaDox run, which exercises the executor,
  the main-core timing model, the log and the checker pool together);
* ``suite`` — wall-clock of the SPEC-proxy suite, serial versus
  ``--jobs N`` process fan-out, and the resulting speedup;
* ``tracing`` — engine throughput with telemetry off vs on, so the
  disabled-tracer guarantee ("tracing off costs nothing") is a measured
  number, not a claim;
* ``jit`` — interpreter versus compiled-superblock throughput for the
  bare executor and for the full engine, with bit-identity checked in
  the same breath (see ``src/repro/jit/``).

The suite fan-out defaults to ``min(4, cpu_count)`` workers: on a
single-CPU host a forced ``--jobs 4`` merely measures process-spawn
overhead and reports an honest but meaningless "speedup" below 1.0
(BENCH_PR2.json recorded 0.719x that way).  Pass ``--jobs`` explicitly
to override; the report's ``suite`` section records both the width used
and the host's ``cpu_count`` so readers can judge the number.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --out BENCH_PR3.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick   # CI smoke

Always pass an explicit ``--out`` when recording a milestone: committed
``BENCH_PR<N>.json`` files are the performance trajectory of the repo,
and the default (``BENCH_HOTPATH.json``, gitignored territory) must
never silently overwrite one.

The harness deliberately uses only public entry points so the same file
can benchmark any revision of the simulator (the ``--jobs`` fan-out is
skipped gracefully on revisions that predate it).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds of ``repeats`` calls to ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_executor(iterations: int, repeats: int, jit: bool = True) -> Dict[str, Any]:
    """Bare functional-execution throughput (no timing model, no checkers).

    ``jit=True`` (the simulator's default execution path since the
    compiled superblock tier landed) measures ``golden_run(jit=True)``;
    ``--no-jit`` reproduces the historical pure-interpreter number.
    """
    from repro.workloads import build_spec_workload, golden_run

    workload = build_spec_workload("bzip2", iterations=iterations)
    try:
        golden = golden_run(workload, jit=jit)  # warm-up + instruction count
        run = lambda: golden_run(workload, jit=jit)  # noqa: E731
    except TypeError:  # revision without the compiled superblock tier
        jit = False
        golden = golden_run(workload)
        run = lambda: golden_run(workload)  # noqa: E731
    seconds = _best_of(run, repeats)
    return {
        "workload": "bzip2",
        "iterations": iterations,
        "instructions": golden.instructions,
        "seconds": round(seconds, 4),
        "instr_per_sec": round(golden.instructions / seconds, 1),
        "jit": jit,
    }


def _system_kwargs(jit: bool) -> Dict[str, Any]:
    """Constructor kwargs honouring ``--no-jit``.

    An empty dict on the default path keeps this harness runnable
    against revisions that predate the ``jit`` field.
    """
    return {} if jit else {"jit": False}


def bench_engine(iterations: int, repeats: int, jit: bool = True) -> Dict[str, Any]:
    """Full protected run: executor + OoO timing + log + checker pool."""
    from repro.core import ParaDoxSystem
    from repro.workloads import build_spec_workload

    workload = build_spec_workload("milc", iterations=iterations)
    system = ParaDoxSystem(**_system_kwargs(jit))
    result = system.run(workload, seed=12345)  # warm-up + instruction count
    seconds = _best_of(lambda: system.run(workload, seed=12345), repeats)
    return {
        "workload": "milc",
        "iterations": iterations,
        "instructions": result.instructions,
        "seconds": round(seconds, 4),
        "instr_per_sec": round(result.instructions / seconds, 1),
        "jit": jit,
    }


def bench_tracing_overhead(
    iterations: int, repeats: int, jit: bool = True
) -> Dict[str, Any]:
    """Engine throughput with telemetry disabled vs enabled.

    The disabled number is the one guarded against regressions: with
    ``tracing=False`` no tracer object exists and every emission site is
    a single ``is not None`` test at segment granularity, so the two
    disabled/enabled runs bound the subsystem's cost from both sides.
    """
    from repro.core import ParaDoxSystem
    from repro.workloads import build_spec_workload

    workload = build_spec_workload("milc", iterations=iterations)
    plain = ParaDoxSystem(**_system_kwargs(jit))
    traced = ParaDoxSystem(tracing=True, **_system_kwargs(jit))
    result = plain.run(workload, seed=12345)  # warm-up
    disabled_s = _best_of(lambda: plain.run(workload, seed=12345), repeats)
    enabled_s = _best_of(lambda: traced.run(workload, seed=12345), repeats)
    events = traced.run(workload, seed=12345).trace
    return {
        "workload": "milc",
        "iterations": iterations,
        "instructions": result.instructions,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "disabled_instr_per_sec": round(result.instructions / disabled_s, 1),
        "enabled_instr_per_sec": round(result.instructions / enabled_s, 1),
        "enabled_overhead_pct": round(100.0 * (enabled_s / disabled_s - 1.0), 2),
        "events": len(events or []),
    }


def bench_jit(iterations: int, repeats: int, engine_iterations: int) -> Dict[str, Any]:
    """Interpreter vs compiled-superblock tier, executor and engine level.

    Equivalence is asserted alongside the timing: the two executor runs
    must agree on final registers/memory/output and the two engine runs
    on wall_ns/instructions, so a speedup number can never be recorded
    for a tier that drifted.
    """
    from repro.core import ParaDoxSystem
    from repro.workloads import build_spec_workload, golden_run

    workload = build_spec_workload("bzip2", iterations=iterations)
    interp = golden_run(workload)  # warm-up + reference
    jitted = golden_run(workload, jit=True)
    identical = (
        interp.state.regs.x == jitted.state.regs.x
        and interp.state.regs.f == jitted.state.regs.f
        and interp.instructions == jitted.instructions
        and interp.output == jitted.output
        and interp.memory.words == jitted.memory.words
    )
    interp_s = _best_of(lambda: golden_run(workload), repeats)
    jit_s = _best_of(lambda: golden_run(workload, jit=True), repeats)

    engine_workload = build_spec_workload("milc", iterations=engine_iterations)
    plain = ParaDoxSystem(jit=False)
    tiered = ParaDoxSystem()
    interp_result = plain.run(engine_workload, seed=12345)  # warm-up
    jit_result = tiered.run(engine_workload, seed=12345)
    engine_identical = (
        interp_result.wall_ns == jit_result.wall_ns
        and interp_result.instructions == jit_result.instructions
    )
    engine_interp_s = _best_of(lambda: plain.run(engine_workload, seed=12345), repeats)
    engine_jit_s = _best_of(lambda: tiered.run(engine_workload, seed=12345), repeats)
    return {
        "workload": "bzip2",
        "iterations": iterations,
        "instructions": interp.instructions,
        "interp_s": round(interp_s, 4),
        "jit_s": round(jit_s, 4),
        "interp_instr_per_sec": round(interp.instructions / interp_s, 1),
        "jit_instr_per_sec": round(interp.instructions / jit_s, 1),
        "executor_speedup": round(interp_s / jit_s, 3),
        "identical": identical,
        "engine_workload": "milc",
        "engine_iterations": engine_iterations,
        "engine_instructions": interp_result.instructions,
        "engine_interp_s": round(engine_interp_s, 4),
        "engine_jit_s": round(engine_jit_s, 4),
        "engine_interp_instr_per_sec": round(
            interp_result.instructions / engine_interp_s, 1
        ),
        "engine_jit_instr_per_sec": round(
            jit_result.instructions / engine_jit_s, 1
        ),
        "engine_speedup": round(engine_interp_s / engine_jit_s, 3),
        "engine_identical": engine_identical,
    }


def bench_suite(
    iterations: int, names: Optional[Sequence[str]], jobs: int
) -> Dict[str, Any]:
    """SPEC-proxy suite wall-clock: serial vs ``jobs``-way process fan-out."""
    from repro.experiments.spec_runs import run_spec_suite

    # Warm-up: module imports and allocator growth are one-time costs
    # that would otherwise land entirely on the serial leg (which runs
    # first) and flatter the fan-out.
    run_spec_suite(iterations=1, names=names)
    started = time.perf_counter()
    serial = run_spec_suite(iterations=iterations, names=names)
    serial_s = time.perf_counter() - started

    cpus = os.cpu_count() or 1
    entry: Dict[str, Any] = {
        "iterations": iterations,
        "workloads": len(serial.baseline),
        "systems": 4,
        "serial_s": round(serial_s, 3),
        "cpu_count": cpus,
        "oversubscribed": jobs > cpus,
    }
    try:
        started = time.perf_counter()
        parallel = run_spec_suite(iterations=iterations, names=names, jobs=jobs)
        parallel_s = time.perf_counter() - started
    except TypeError:  # revision without the parallel execution layer
        entry["parallel_s"] = None
        entry["jobs"] = jobs
        return entry
    identical = all(
        serial.paradox[name].wall_ns == parallel.paradox[name].wall_ns
        and serial.paradox[name].instructions == parallel.paradox[name].instructions
        and len(serial.paradox[name].recoveries)
        == len(parallel.paradox[name].recoveries)
        for name in serial.names()
    )
    entry.update(
        {
            "jobs": jobs,
            "parallel_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 3),
            "identical": identical,
        }
    )
    return entry


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_HOTPATH.json",
        help="output JSON path (pass BENCH_PR<N>.json explicitly when "
        "recording a milestone; the default never collides with one)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="fan-out width for the suite benchmark (default: "
        "min(4, cpu_count) — oversubscribing a small host only "
        "measures spawn overhead)",
    )
    parser.add_argument("--iterations", type=int, default=12, help="workload iterations per run")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--no-jit",
        action="store_true",
        help="run the engine/tracing sections with the compiled "
        "superblock tier disabled (the jit section is skipped)",
    )
    parser.add_argument(
        "--suite-names",
        default="bzip2,gcc,milc,gobmk,sjeng,lbm",
        help="comma list of SPEC proxies for the suite benchmark ('all' = full 19)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizing: tiny workloads, one repeat",
    )
    parser.add_argument(
        "--label", default="", help="free-form label recorded in the JSON"
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.iterations = min(args.iterations, 4)
        args.repeats = 1
        args.suite_names = "bzip2,milc"
    if args.jobs is None:
        args.jobs = min(4, os.cpu_count() or 1)

    names: Optional[List[str]]
    if args.suite_names == "all":
        names = None
    else:
        names = [name.strip() for name in args.suite_names.split(",") if name.strip()]

    report: Dict[str, Any] = {
        "label": args.label,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
    }
    print("benchmarking executor ...", flush=True)
    # The compiled tier amortises per-run block binding over run length,
    # so the jit-on executor number is taken at a steady-state size.
    report["executor"] = bench_executor(
        args.iterations if args.no_jit else max(args.iterations, 400),
        args.repeats,
        jit=not args.no_jit,
    )
    print(f"  {report['executor']['instr_per_sec']:.0f} instr/s", flush=True)
    print("benchmarking engine ...", flush=True)
    report["engine"] = bench_engine(args.iterations, args.repeats, jit=not args.no_jit)
    print(f"  {report['engine']['instr_per_sec']:.0f} instr/s", flush=True)
    if args.no_jit:
        report["jit"] = None
        print("jit section skipped (--no-jit)", flush=True)
    else:
        print("benchmarking jit tier (interp vs compiled) ...", flush=True)
        try:
            # The tier amortises compile cost over run length; bench it at
            # a steady-state size even when --quick shrinks everything else.
            report["jit"] = bench_jit(
                max(args.iterations, 400), args.repeats, max(args.iterations, 400)
            )
            print(
                f"  executor {report['jit']['interp_instr_per_sec']:.0f} -> "
                f"{report['jit']['jit_instr_per_sec']:.0f} instr/s "
                f"({report['jit']['executor_speedup']:.2f}x, "
                f"identical={report['jit']['identical']}); engine "
                f"{report['jit']['engine_interp_instr_per_sec']:.0f} -> "
                f"{report['jit']['engine_jit_instr_per_sec']:.0f} instr/s "
                f"({report['jit']['engine_speedup']:.2f}x, "
                f"identical={report['jit']['engine_identical']})",
                flush=True,
            )
        except TypeError:  # revision without the compiled superblock tier
            report["jit"] = None
            print("  (jit tier not available in this revision)", flush=True)
    print("benchmarking tracing overhead ...", flush=True)
    try:
        report["tracing"] = bench_tracing_overhead(
            args.iterations, args.repeats, jit=not args.no_jit
        )
        print(
            f"  disabled {report['tracing']['disabled_instr_per_sec']:.0f} "
            f"instr/s, enabled {report['tracing']['enabled_instr_per_sec']:.0f} "
            f"instr/s ({report['tracing']['enabled_overhead_pct']:+.1f}%)",
            flush=True,
        )
    except TypeError:  # revision without the telemetry subsystem
        report["tracing"] = None
        print("  (telemetry not available in this revision)", flush=True)
    print(f"benchmarking suite (serial vs --jobs {args.jobs}) ...", flush=True)
    report["suite"] = bench_suite(args.iterations, names, args.jobs)
    suite = report["suite"]
    print(f"  serial {suite['serial_s']:.2f}s", flush=True)
    if suite.get("parallel_s"):
        print(
            f"  --jobs {suite['jobs']} {suite['parallel_s']:.2f}s "
            f"(speedup {suite['speedup']:.2f}x, "
            f"identical={suite['identical']})",
            flush=True,
        )

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
