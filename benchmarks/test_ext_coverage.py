"""Extension bench: section IV-E coverage analysis, quantified.

Validates the prose claims: checked-undervolted execution keeps a
silent-corruption rate orders of magnitude below the margined baseline
at every operating voltage, and undervolting the checkers too costs
reliability linearly — which is why the paper declines to.
"""

import pytest

from repro.experiments import ext_coverage


@pytest.fixture(scope="module")
def coverage():
    return ext_coverage.run()


def test_ext_coverage_analysis(once):
    result = once(lambda: ext_coverage.run())
    assert result.points


def test_ext_coverage_paradox_always_wins(once, coverage):
    points = once(lambda: coverage.points)
    for point in points:
        assert point.sdc_rate_paradox < point.sdc_rate_margined
        assert point.advantage > 1e3


def test_ext_coverage_advantage_shrinks_with_voltage(once, coverage):
    """Deeper undervolt -> more main errors -> smaller (still huge) margin."""
    advantages = once(lambda: [p.advantage for p in coverage.points])
    assert advantages == sorted(advantages, reverse=True)


def test_ext_coverage_checker_undervolt_costs_linearly(once, coverage):
    pairs = once(lambda: coverage.checker_tradeoff)
    (rate_a, sdc_a), (rate_b, sdc_b) = pairs[1], pairs[2]
    assert sdc_b / sdc_a == pytest.approx(rate_b / rate_a, rel=0.01)


def test_ext_coverage_print_table(once, coverage):
    print()
    print(once(coverage.table))
