"""Figure 12: checker-core wake rates with aggressive gating.

Paper shape: ParaDox's lowest-free-ID allocation concentrates checking on
low core IDs so high IDs can be power gated; some workloads touch all 16
at peak, but no workload keeps more than 8 busy on average.
"""

import pytest

from repro.experiments import fig12
from repro.workloads import build_spec_workload


@pytest.fixture(scope="module")
def fig12_result(spec_suite):
    return fig12.from_runs(spec_suite)


def test_fig12_wake_rate_collection(once):
    from repro.core import ParaDoxSystem

    workload = build_spec_workload("gobmk", iterations=6)
    result = once(lambda: ParaDoxSystem().run(workload))
    assert len(result.checker_wake_rates) == 16


def test_fig12_no_workload_averages_more_than_eight(once, spec_suite):
    """The paper's headline: aggregate usage <= 8 cores for every workload,
    suggesting the pool could be halved/shared."""
    result = once(lambda: fig12.from_runs(spec_suite))
    for row in result.rows:
        assert row.average_wake <= 8.0, (row.workload, row.average_wake)


def test_fig12_wake_concentrated_on_low_logical_ids(once, fig12_result):
    """With lowest-free-ID allocation, sorted wake rates must be heavily
    skewed: the busiest core dominates the fourth-busiest."""
    rows = once(lambda: fig12_result.rows)
    for row in rows:
        rates = sorted(row.wake_rates, reverse=True)
        if rates[0] > 0.05:
            assert rates[0] >= rates[3], row.workload


def test_fig12_peak_within_pool(once, fig12_result):
    rows = once(lambda: fig12_result.rows)
    for row in rows:
        assert 1 <= row.peak_concurrency <= 16


def test_fig12_gating_headroom_exists(once, fig12_result):
    """At least half the pool is idle on average across the suite."""
    mean_awake = once(
        lambda: sum(row.average_wake for row in fig12_result.rows)
        / len(fig12_result.rows)
    )
    assert mean_awake <= 8.0


def test_fig12_print_table(once, fig12_result):
    print()
    print(once(fig12_result.table))
