"""Figure 13: power, slowdown and EDP on the undervolted ParaDox system.

Paper headline: ~22% mean power reduction, ~4.5% typical slowdown, ~15%
mean EDP reduction; checker power <= 5%; astar among the worst EDP due to
conflict misses; ParaMedic EDP ~1.27x ParaDox's.
"""

import pytest

from repro.experiments import fig13
from repro.power import energy_row


@pytest.fixture(scope="module")
def fig13_result(spec_suite):
    return fig13.from_runs(spec_suite)


def test_fig13_row_computation(once, spec_suite):
    name = spec_suite.names()[0]
    row = once(
        lambda: energy_row(name, spec_suite.paradox[name], spec_suite.baseline[name])
    )
    assert row.power > 0


def test_fig13_power_reduction_near_22_percent(once, spec_suite):
    result = once(lambda: fig13.from_runs(spec_suite))
    assert 15.0 < result.summary.power_reduction_percent < 30.0


def test_fig13_slowdown_modest(once, fig13_result):
    slowdown = once(lambda: fig13_result.summary.slowdown_percent)
    assert 0.0 <= slowdown < 20.0


def test_fig13_edp_reduction_double_digit(once, fig13_result):
    reduction = once(lambda: fig13_result.summary.edp_reduction_percent)
    assert reduction > 5.0


def test_fig13_checker_power_under_five_percent(once, fig13_result):
    rows = once(lambda: fig13_result.rows)
    for row in rows:
        assert row.checker_power <= 0.05, row.workload


def test_fig13_astar_among_worst_edp(once, fig13_result):
    """astar's conflict-missing buffered stores hurt its EDP most."""
    ranked = once(
        lambda: sorted(fig13_result.rows, key=lambda r: r.edp, reverse=True)
    )
    worst_five = {row.workload for row in ranked[:5]}
    assert "astar" in worst_five


def test_fig13_paramedic_edp_worse_than_paradox(once, fig13_result):
    ratio = once(lambda: fig13_result.paramedic_edp_vs_paradox)
    assert ratio > 1.05


def test_fig13_every_workload_saves_power(once, fig13_result):
    rows = once(lambda: fig13_result.rows)
    for row in rows:
        assert row.power < 1.0, row.workload


def test_fig13_print_table(once, fig13_result):
    print()
    print(once(fig13_result.table))
