"""Shared state for the figure benchmarks.

Figures 10, 12 and 13 sweep the same nineteen SPEC proxies, so their
suite of simulations runs once per session and is shared.  Benchmark
sizes are reduced relative to the experiment-module defaults so the whole
bench suite completes in minutes; pass ``--full-figures`` for the larger
defaults.
"""

from __future__ import annotations

import pytest

from repro.experiments.spec_runs import run_spec_suite


def pytest_addoption(parser):
    parser.addoption(
        "--full-figures",
        action="store_true",
        default=False,
        help="run figure benchmarks at full experiment sizes",
    )


@pytest.fixture(scope="session")
def figure_scale(request):
    """1.0 = reduced bench size; larger with --full-figures."""
    return 3.0 if request.config.getoption("--full-figures") else 1.0


@pytest.fixture(scope="session")
def spec_suite(figure_scale):
    """One shared run of the 19-workload suite on all four systems."""
    iterations = int(20 * figure_scale)
    return run_spec_suite(iterations=iterations)


@pytest.fixture
def once(benchmark):
    """Time a callable exactly once under pytest-benchmark.

    The figure benchmarks are simulations, not microbenchmarks: running
    them for many warm rounds would be meaningless, so every test times a
    single deterministic execution.
    """

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
