"""Extension bench: shared checker pools (figure 12's closing claim).

"[Checker area] could be reduced by half through sharing checker cores
between multiple main cores, without affecting performance" — validated
trace-driven on a demanding workload pairing.
"""

import pytest

from repro.experiments import ext_sharing


@pytest.fixture(scope="module")
def sharing(figure_scale):
    return ext_sharing.run(iterations=int(12 * figure_scale))


def test_ext_sharing_study(once, figure_scale):
    result = once(lambda: ext_sharing.run(iterations=int(8 * figure_scale)))
    assert result.reports


def test_ext_sharing_sixteen_shared_suffice(once, sharing):
    """Two main cores on one 16-checker pool: (near-)zero blocking."""
    report16 = once(
        lambda: next(r for r in sharing.reports if r.pool_size == 16)
    )
    assert report16.blocked_fraction <= 0.01


def test_ext_sharing_blocking_monotone(once, sharing):
    fractions = once(
        lambda: [r.blocked_fraction for r in sorted(sharing.reports, key=lambda r: -r.pool_size)]
    )
    assert fractions == sorted(fractions)


def test_ext_sharing_minimum_pool_small(once, sharing):
    assert once(lambda: sharing.minimum_pool) <= 16


def test_ext_sharing_print_table(once, sharing):
    print()
    print(once(sharing.table))
