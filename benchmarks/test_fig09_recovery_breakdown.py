"""Figure 9: recovery-cost breakdown (rollback vs wasted execution).

Paper shape: wasted execution dominates rollback; ParaDox's
line-granularity rollback is cheaper than ParaMedic's word walk (about an
order of magnitude on store-dense workloads); at high rates ParaDox's
wasted execution drops because checkpoints shrink (strongest on
compute-bound bitcount, whose checkpoints are otherwise long).
"""

import pytest

from repro.experiments import fig09
from repro.workloads import build_bitcount, build_stream

RATES = (1e-4, 1e-3)


@pytest.fixture(scope="module")
def fig9_result(figure_scale):
    workloads = [
        build_bitcount(values=int(80 * figure_scale)),
        build_stream(elements=256, passes=max(2, int(2 * figure_scale))),
    ]
    return fig09.run(workloads=workloads, rates=RATES, seeds=(11, 22, 33))


def test_fig09_harness(once, figure_scale):
    workload = build_bitcount(values=int(40 * figure_scale))
    result = once(
        lambda: fig09.run(workloads=[workload], rates=(1e-3,), seeds=(1,))
    )
    assert result.rows


def test_fig09_wasted_dominates_rollback(once, fig9_result):
    """Wasted execution dominates rollback — except stream under
    ParaMedic, where word-granularity rollback of a store-dense workload
    is comparable ("the ranges of re-execution and rollback cost overlap
    in some cases", section VI-B)."""
    rows = once(lambda: [row for row in fig9_result.rows if row.events >= 3])
    assert rows, "need recovery events to compare"
    for row in rows:
        if row.workload == "stream" and row.system == "ParaMedic":
            assert row.mean_wasted_ns > row.mean_rollback_ns * 0.5
        else:
            assert row.mean_wasted_ns > row.mean_rollback_ns * 3


def test_fig09_paradox_rollback_cheaper_on_stream(once, fig9_result):
    """Stream is store-dense: line-granularity rollback must clearly win."""
    pm, pd = once(
        lambda: (
            fig9_result.point("stream", "ParaMedic", 1e-3),
            fig9_result.point("stream", "ParaDox", 1e-3),
        )
    )
    if pm.events >= 3 and pd.events >= 3:
        assert pd.mean_rollback_ns < pm.mean_rollback_ns / 2


def test_fig09_paradox_rollback_no_worse_on_bitcount(once, fig9_result):
    pm, pd = once(
        lambda: (
            fig9_result.point("bitcount", "ParaMedic", 1e-3),
            fig9_result.point("bitcount", "ParaDox", 1e-3),
        )
    )
    if pm.events >= 3 and pd.events >= 3:
        assert pd.mean_rollback_ns <= pm.mean_rollback_ns * 1.05


def test_fig09_paradox_wasted_drops_at_high_rates(once, fig9_result):
    """AIMD shrinks checkpoints -> less wasted work per recovery."""
    low, high = once(
        lambda: (
            fig9_result.point("bitcount", "ParaDox", 1e-4),
            fig9_result.point("bitcount", "ParaDox", 1e-3),
        )
    )
    if low.events >= 2 and high.events >= 2:
        assert high.mean_wasted_ns < low.mean_wasted_ns


def test_fig09_print_table(once, fig9_result):
    print()
    print(once(fig9_result.table))
