"""Figure 8: bitcount slowdown vs injected error rate.

Paper shape: flat for both systems at realistic rates; ParaMedic blows up
(16x, livelock) around 2e-4 errors/operation while ParaDox holds similar
performance to roughly two orders of magnitude higher rates.
"""

import pytest

from repro.experiments import fig08
from repro.workloads import build_bitcount

RATES = (1e-7, 1e-6, 1e-5, 1e-4, 5e-4, 2e-3, 1e-2)


@pytest.fixture(scope="module")
def fig8_result(figure_scale):
    workload = build_bitcount(values=int(40 * figure_scale))
    return fig08.run(workload=workload, rates=RATES, livelock_factor=16)


def test_fig08_sweep(once, figure_scale):
    workload = build_bitcount(values=int(40 * figure_scale))
    result = once(
        lambda: fig08.run(workload=workload, rates=(1e-5, 1e-3), livelock_factor=16)
    )
    assert len(result.rows) == 2


def test_fig08_low_rates_flat(once, fig8_result):
    rows = once(lambda: fig8_result.rows[:2])  # 1e-7, 1e-6
    for row in rows:
        assert row.paramedic_slowdown < 1.25
        assert row.paradox_slowdown < 1.25


def test_fig08_paramedic_collapses_first(once, fig8_result):
    """ParaMedic must degrade earlier/steeper than ParaDox."""
    high = once(
        lambda: [row for row in fig8_result.rows if row.error_rate >= 5e-4]
    )
    assert all(row.paradox_slowdown <= row.paramedic_slowdown for row in high)
    worst_pm = max(row.paramedic_slowdown for row in high)
    worst_pd = max(row.paradox_slowdown for row in high)
    assert worst_pm > 8.0 or any(row.paramedic_livelocked for row in high)
    assert worst_pd < worst_pm / 2


def test_fig08_paradox_tolerates_higher_rates(once, fig8_result):
    """The rate at which ParaDox first exceeds 2x slowdown must be well
    above ParaMedic's (the paper reports ~two orders of magnitude)."""

    def first_rate_exceeding(series, threshold=8.0):
        for row in fig8_result.rows:
            if getattr(row, series) > threshold:
                return row.error_rate
        return float("inf")

    pm_rate, pd_rate = once(
        lambda: (
            first_rate_exceeding("paramedic_slowdown"),
            first_rate_exceeding("paradox_slowdown"),
        )
    )
    assert pd_rate >= pm_rate * 10  # paper: roughly two orders of magnitude


def test_fig08_print_table(once, fig8_result):
    print()
    print(once(fig8_result.table))
