"""Figure 11: voltage over time on ParaDox running bitcount.

Paper shape: cold-start descent from nominal; the dynamic decrease
produces fewer errors than a constant decrease at an equal or lower
average voltage; both steady-state averages sit below the highest
voltage at which an error was observed.
"""

import pytest

from repro.experiments import fig11
from repro.workloads import build_bitcount


@pytest.fixture(scope="module")
def fig11_result(figure_scale):
    workload = build_bitcount(values=int(700 * figure_scale))
    return fig11.run(workload=workload)


def test_fig11_trace_generation(once, figure_scale):
    workload = build_bitcount(values=int(200 * figure_scale))
    result = once(lambda: fig11.run(workload=workload))
    assert result.dynamic.trace


def test_fig11_voltage_descends_from_nominal(once, fig11_result):
    trace = once(lambda: fig11_result.dynamic.trace)
    assert trace[0][1] == pytest.approx(1.1)
    assert fig11_result.dynamic.min_voltage < 1.02


def test_fig11_dynamic_no_more_errors_than_constant(once, fig11_result):
    """The tide-mark slowdown exists to cut the error count."""
    dynamic, constant = once(
        lambda: (fig11_result.dynamic.errors, fig11_result.constant.errors)
    )
    assert dynamic <= constant


def test_fig11_steady_state_below_highest_error(once, fig11_result):
    """ParaDox deliberately operates beyond the point of first error."""
    traces = once(lambda: (fig11_result.dynamic, fig11_result.constant))
    for trace in traces:
        if trace.errors:
            assert trace.steady_state_mean <= trace.highest_error_voltage + 1e-9


def test_fig11_dynamic_average_competitive(once, fig11_result):
    """Dynamic decrease achieves a mean voltage no worse than constant
    decrease plus a small tolerance (paper: equal or lower)."""
    dynamic, constant = once(
        lambda: (
            fig11_result.dynamic.steady_state_mean,
            fig11_result.constant.steady_state_mean,
        )
    )
    assert dynamic <= constant + 0.03


def test_fig11_print_table(once, fig11_result):
    print()
    print(once(fig11_result.table))
