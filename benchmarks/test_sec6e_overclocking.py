"""Section VI-E: overclocking trade-off scenarios (analytic).

Paper numbers: +4.5% clock needs +0.019 V (0.872 V base, 0.45 V
threshold), costing +9% power vs the slow undervolted point but ~-15%
vs the margined baseline; +0.06 V buys +13% clock (~3.6 GHz).
"""

import pytest

from repro.experiments import sec6e


@pytest.fixture(scope="module")
def scenarios():
    return sec6e.run(slowdown=1.045)


def test_sec6e_analysis(once):
    result = once(lambda: sec6e.run())
    assert result.restore.performance == 1.0


def test_sec6e_restore_voltage_increase(once, scenarios):
    increase = once(lambda: scenarios.restore.voltage_increase)
    assert increase == pytest.approx(0.019, abs=0.002)


def test_sec6e_restore_power_vs_undervolted(once, scenarios):
    power = once(lambda: scenarios.restore.power_vs_undervolted)
    assert power == pytest.approx(1.09, abs=0.02)


def test_sec6e_restore_power_vs_margined(once, scenarios):
    power = once(lambda: scenarios.restore.power_vs_margined)
    assert power == pytest.approx(0.86, abs=0.03)


def test_sec6e_boost_reaches_3_6_ghz(once, scenarios):
    frequency = once(lambda: scenarios.boost.frequency_hz)
    assert frequency == pytest.approx(3.6e9, rel=0.03)
    assert 12.0 < scenarios.boost.frequency_increase_percent < 16.0


def test_sec6e_boost_outperforms_baseline(once, scenarios):
    performance = once(lambda: scenarios.boost.performance)
    assert performance > 1.05


def test_sec6e_print_table(once, scenarios):
    print()
    print(once(scenarios.table))
