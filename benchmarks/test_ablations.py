"""Ablations of the design choices DESIGN.md calls out.

Each of ParaDox's mechanisms is switched off independently against the
full system, quantifying what it buys:

* line- vs word-granularity rollback (section IV-D) — on store-dense
  stream, where the per-store word walk is expensive;
* adaptive vs fixed checkpoint lengths under errors (section IV-A);
* lowest-free-ID vs round-robin checker scheduling (section IV-C);
* the engine's provably-clean fast path (simulator-only optimisation —
  must not change results, only host runtime).
"""

import numpy as np
import pytest

from repro.config import table1_config
from repro.core import EngineOptions, SimulationEngine
from repro.faults import default_injector
from repro.lslog import RollbackGranularity
from repro.scheduling import SchedulingPolicy
from repro.workloads import build_bitcount, build_stream

RATE = 1e-3


def run_variant(workload, seed=5, rate=RATE, **option_overrides):
    """Run ParaDox with some options flipped.

    Options are baked in at engine construction (the pool, port and
    controllers derive from them), so the variant must be expressed as an
    :class:`EngineOptions` up front, not patched afterwards.
    """
    options = EngineOptions(
        granularity=RollbackGranularity.LINE,
        scheduling=SchedulingPolicy.LOWEST_FREE_ID,
        adaptive_checkpoints=True,
    )
    for key, value in option_overrides.items():
        setattr(options, key, value)
    config = table1_config().with_error_rate(rate, seed=seed)
    engine = SimulationEngine(
        workload.program,
        config,
        options,
        injector=default_injector(rate, seed=seed),
        memory=workload.create_memory(),
        system_name="ablation",
        rng=np.random.default_rng(seed),
    )
    return engine.run(workload.max_instructions)


@pytest.fixture(scope="module")
def bitcount_workload(figure_scale):
    return build_bitcount(values=int(60 * figure_scale))


@pytest.fixture(scope="module")
def stream_workload(figure_scale):
    return build_stream(elements=256, passes=max(2, int(2 * figure_scale)))


def test_ablation_rollback_granularity(once, stream_workload):
    line = once(lambda: run_variant(stream_workload))
    word = run_variant(stream_workload, granularity=RollbackGranularity.WORD)
    print(
        f"\n[ablation] rollback ns/recovery on stream: line "
        f"{line.mean_rollback_ns() or 0:.0f} vs word {word.mean_rollback_ns() or 0:.0f}"
    )
    if line.errors_detected >= 3 and word.errors_detected >= 3:
        assert line.mean_rollback_ns() < word.mean_rollback_ns()


def test_ablation_adaptive_checkpoints(once, bitcount_workload):
    adaptive = once(lambda: run_variant(bitcount_workload))
    fixed = run_variant(bitcount_workload, adaptive_checkpoints=False)
    print(
        f"\n[ablation] wall us under {RATE:g} errors: adaptive "
        f"{adaptive.wall_ns / 1e3:.1f} vs fixed {fixed.wall_ns / 1e3:.1f}"
    )
    assert adaptive.wall_ns < fixed.wall_ns
    assert adaptive.final_checkpoint_target < fixed.final_checkpoint_target


def test_ablation_scheduling_policy(once, bitcount_workload):
    lowest = once(lambda: run_variant(bitcount_workload))
    round_robin = run_variant(
        bitcount_workload, scheduling=SchedulingPolicy.ROUND_ROBIN
    )
    lowest_used = sum(1 for rate in lowest.checker_wake_rates if rate > 0)
    rr_used = sum(1 for rate in round_robin.checker_wake_rates if rate > 0)
    print(f"\n[ablation] checkers touched: lowest-free {lowest_used} vs RR {rr_used}")
    assert lowest_used < rr_used
    # Performance must not regress from concentrating work.
    assert lowest.wall_ns <= round_robin.wall_ns * 1.10


def test_ablation_fastpath_is_pure_optimisation(once, bitcount_workload):
    fast = once(lambda: run_variant(bitcount_workload, fastpath=True))
    slow = run_variant(bitcount_workload, fastpath=False)
    assert fast.errors_detected == slow.errors_detected
    assert fast.wall_ns == pytest.approx(slow.wall_ns)
    assert fast.program_output == slow.program_output
