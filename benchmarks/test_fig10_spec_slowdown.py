"""Figure 10: per-SPEC normalized slowdown of the three protected systems.

Paper shape: everything between 1.00 and ~1.14; detection-only <=
ParaMedic <= ParaDox-DVS on average; code-footprint workloads pay even
with detection only; conflict-prone workloads only pay once rollback
buffering is enabled.
"""

import pytest

from repro.experiments import fig10
from repro.workloads import build_spec_workload


@pytest.fixture(scope="module")
def fig10_result(spec_suite):
    return fig10.from_runs(spec_suite)


def test_fig10_single_workload_run(once):
    """Benchmark the underlying simulation cost of one protected run."""
    from repro.core import ParaMedicSystem

    workload = build_spec_workload("bzip2", iterations=8)
    result = once(lambda: ParaMedicSystem().run(workload))
    assert result.instructions > 0


def test_fig10_overheads_in_band(once, spec_suite):
    result = once(lambda: fig10.from_runs(spec_suite))
    for row in result.rows:
        assert 0.98 <= row.detection_only < 1.8, row.workload
        assert 0.98 <= row.paramedic < 1.8, row.workload
        assert 0.98 <= row.paradox_dvs < 2.0, row.workload


def test_fig10_geomeans_ordered_and_modest(once, fig10_result):
    det, pm, pd = once(fig10_result.geomeans)
    assert det <= pm * 1.02  # detection-only never meaningfully slower
    assert 1.0 <= pm < 1.25
    assert 1.0 <= pd < 1.30


def test_fig10_icache_bound_pay_at_the_checkers(once, spec_suite):
    """gobmk-class workloads burn more checker time per instruction: the
    paper attributes their overhead to "frequent misses in the checker
    cores' private instruction caches".  With 16 checkers the pool has
    throughput headroom, so the cost shows first in checker occupancy
    (and in the paper's tighter configuration, in slowdown)."""

    def busy_per_instruction(name):
        result = spec_suite.detection[name]
        return sum(result.checker_wake_rates) * result.wall_ns / result.instructions

    friendly, code_bound = once(
        lambda: (
            [busy_per_instruction(n) for n in ("bzip2", "gcc")],
            [busy_per_instruction(n) for n in ("gobmk", "h264ref", "xalancbmk")],
        )
    )
    assert min(code_bound) > max(friendly) * 0.95
    assert sum(code_bound) / 3 > sum(friendly) / 2


def test_fig10_conflict_workloads_pay_only_with_buffering(once, fig10_result):
    """astar-class overhead appears between detection-only and ParaMedic."""
    astar = once(
        lambda: next(row for row in fig10_result.rows if row.workload == "astar")
    )
    assert astar.paramedic >= astar.detection_only


def test_fig10_paradox_dvs_errors_present_but_rare(once, fig10_result):
    """The DVS runs sit in error-seeking territory: some errors may occur
    across the suite, but never a storm."""
    rows = once(lambda: fig10_result.rows)
    for row in rows:
        assert row.paradox_errors < 100, row.workload


def test_fig10_mean_voltage_undervolted(once, fig10_result):
    rows = once(lambda: fig10_result.rows)
    for row in rows:
        assert row.paradox_mean_voltage < 1.05  # well below 1.1 nominal


def test_fig10_print_table(once, fig10_result):
    print()
    print(once(fig10_result.table))
