#!/usr/bin/env python3
"""Docs checker: links resolve, CLI verbs/flags in docs actually exist.

Run from the repo root (CI's ``docs`` job, also pinned by
``tests/test_explore.py::TestDocsChecker``):

    PYTHONPATH=src python tools/check_docs.py

Two validations over ``README.md`` and every ``docs/*.md`` page,
stdlib only:

1. **Links.**  Every relative markdown link target resolves to a real
   file (anchored against the linking file's directory), and every
   ``#fragment`` — in-page or cross-page — matches a heading in the
   target file under GitHub's slug rules.
2. **CLI surface.**  Every ``repro <verb> [--flag ...]`` invocation in
   a code span or fenced block names a verb that ``repro --help``
   knows, with flags that verb actually accepts (``store``'s
   subcommands included); and every bare ``--flag`` mentioned in
   inline code exists on at least one verb.

Exit status is the number of problems found (0 = clean), each printed
as ``file:line: message``.
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import build_parser  # noqa: E402  (path bootstrap above)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
INLINE_CODE_RE = re.compile(r"`([^`]+)`")
# "repro <verb>" or "python -m repro <verb>"; a following "." means a
# module path (python -m repro.experiments.fig08), not a CLI verb.
INVOCATION_RE = re.compile(
    r"(?:python[0-9.]*\s+-m\s+repro|(?<!from )\brepro)\s+([a-z][a-z0-9_-]*)(?![.\w-])"
)
FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]*)")


def slugify(heading):
    """GitHub's markdown heading -> anchor slug."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path):
    anchors, seen = set(), {}
    in_fence = False
    for line in path.read_text().splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def cli_surface():
    """verb -> set of option strings; plus ('store', sub) entries."""
    parser = build_parser()
    surface = {}

    def options_of(p):
        flags = set()
        for action in p._actions:
            flags.update(s for s in action.option_strings if s.startswith("--"))
        return flags

    def subparsers_of(p):
        for action in p._actions:
            if isinstance(action, argparse._SubParsersAction):
                yield from action.choices.items()

    for verb, verb_parser in subparsers_of(parser):
        surface[verb] = options_of(verb_parser)
        for sub, sub_parser in subparsers_of(verb_parser):
            surface[(verb, sub)] = options_of(sub_parser)
            surface[verb] |= surface[(verb, sub)]
    return surface


def iter_code_text(lines):
    """Yield (line_number, text) for fenced-block lines and inline code."""
    in_fence = False
    for number, line in enumerate(lines, start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            yield number, line
        else:
            for match in INLINE_CODE_RE.finditer(line):
                yield number, match.group(1)


def check_file(path, surface, all_flags, problems):
    lines = path.read_text().splitlines()

    # --- links --------------------------------------------------------------
    in_fence = False
    for number, line in enumerate(lines, start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, fragment = target.partition("#")
            dest = path if not file_part else (path.parent / file_part).resolve()
            if file_part and not dest.exists():
                problems.append(f"{path}:{number}: broken link {target!r}")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in anchors_of(dest):
                    problems.append(
                        f"{path}:{number}: no anchor #{fragment} in {dest.name}"
                    )

    # --- CLI invocations ----------------------------------------------------
    # Join backslash-continued command lines inside code so a flag on a
    # continuation line is attributed to its verb.
    code = []
    for number, text in iter_code_text(lines):
        if code and code[-1][1].rstrip().endswith("\\"):
            last_number, last_text = code[-1]
            code[-1] = (last_number, last_text.rstrip()[:-1] + " " + text)
        else:
            code.append((number, text))

    for number, text in code:
        for match in INVOCATION_RE.finditer(text):
            verb = match.group(1)
            if verb not in surface:
                problems.append(
                    f"{path}:{number}: unknown repro verb {verb!r}"
                )
                continue
            allowed = surface[verb]
            # Flags between this invocation and the end of the command
            # (the next shell separator or the end of the span).
            tail = text[match.end():]
            tail = re.split(r"[|;#]| && ", tail)[0]
            for flag_match in FLAG_RE.finditer(tail):
                flag = flag_match.group(1)
                if flag not in allowed:
                    problems.append(
                        f"{path}:{number}: verb {verb!r} has no flag {flag}"
                    )

    # --- bare flags in inline code ------------------------------------------
    in_fence = False
    for number, line in enumerate(lines, start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for span in INLINE_CODE_RE.finditer(line):
            text = span.group(1)
            if INVOCATION_RE.search(text):
                continue  # already checked against its verb above
            for flag_match in FLAG_RE.finditer(text):
                flag = flag_match.group(1)
                if flag not in all_flags:
                    problems.append(
                        f"{path}:{number}: no repro verb accepts {flag}"
                    )


def main():
    surface = cli_surface()
    all_flags = set()
    for flags in surface.values():
        all_flags |= flags
    pages = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))
    problems = []
    for page in pages:
        check_file(page, surface, all_flags, problems)
    for problem in problems:
        print(problem)
    print(f"checked {len(pages)} page(s): {len(problems)} problem(s)")
    return min(len(problems), 125)


if __name__ == "__main__":
    sys.exit(main())
