"""Tracking of unchecked dirty lines in the L1 data cache.

ParaMedic/ParaDox buffer stores whose segments have not yet been checked
in the L1 data cache ("unchecked values are buffered in the L1 cache until
checks are complete", section II-B).  Such a line cannot be evicted: an
eviction attempt stalls the core until checking catches up, and in
ParaDox additionally triggers a checkpoint-length reduction (section
IV-A).

Every L1 line also carries a *timestamp* — the checkpoint sequence number
of its last write.  ParaDox reuses this timestamp for line-granularity
rollback (section IV-D, figure 6): a store whose line timestamp is older
than the current checkpoint must first copy the old line into the log;
later stores to the same line within the same checkpoint need no copy.

This module tracks both pieces of state per line, within the geometry of
the L1D (sets x ways): a *conflict* arises when a write would need to
place an unchecked dirty line in a set whose ways are all already
occupied by unchecked dirty lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import CacheConfig


@dataclass
class UncheckedStats:
    """Counters for unchecked-line buffering behaviour."""

    writes: int = 0
    line_copies: int = 0  # old-line copies taken for rollback
    conflicts: int = 0  # eviction attempts of unchecked dirty lines
    released: int = 0  # lines released by completed checks

    def reset(self) -> None:
        self.writes = self.line_copies = self.conflicts = self.released = 0


class UncheckedLineTracker:
    """Per-line unchecked/dirty state + checkpoint timestamps for one L1D."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.associativity
        self.line_shift = config.line_bytes.bit_length() - 1
        self.set_mask = self.num_sets - 1
        #: line address -> checkpoint sequence number of last write.
        self._timestamp: Dict[int, int] = {}
        #: per-set count of unchecked dirty lines.
        self._set_load: List[int] = [0] * self.num_sets
        self.stats = UncheckedStats()

    # -- address helpers ---------------------------------------------------------
    def line_of(self, address: int) -> int:
        return address >> self.line_shift << self.line_shift

    def set_index(self, address: int) -> int:
        return (address >> self.line_shift) & self.set_mask

    # -- queries --------------------------------------------------------------------
    def timestamp_of(self, address: int) -> Optional[int]:
        """Checkpoint id of the line's last write, or None if clean."""
        return self._timestamp.get(self.line_of(address))

    def unchecked_lines(self) -> int:
        return len(self._timestamp)

    def would_conflict(self, address: int) -> bool:
        """Would writing this line exceed its set's ways with unchecked lines?"""
        line = self.line_of(address)
        if line in self._timestamp:
            return False
        return self._set_load[self.set_index(address)] >= self.ways

    def needs_copy(self, address: int, checkpoint_id: int) -> bool:
        """First write to this line within checkpoint ``checkpoint_id``?

        Figure 6: if the line's timestamp is older than the executing
        checkpoint, the old line must be copied into the log.
        """
        previous = self._timestamp.get(self.line_of(address))
        return previous is None or previous < checkpoint_id

    # -- updates -----------------------------------------------------------------------
    def commit_write(self, address: int, checkpoint_id: int) -> None:
        """Record a store that has passed the conflict and capacity checks.

        Two-phase counterpart of :meth:`record_write`: callers first check
        :meth:`would_conflict` / :meth:`needs_copy` (and log capacity),
        then commit.  Raises if a conflicting write is committed.
        """
        self.stats.writes += 1
        line = self.line_of(address)
        previous = self._timestamp.get(line)
        if previous is None:
            set_index = self.set_index(address)
            if self._set_load[set_index] >= self.ways:
                raise RuntimeError(
                    f"committed write to line {line:#x} despite set conflict"
                )
            self._set_load[set_index] += 1
        if previous is None or previous < checkpoint_id:
            self.stats.line_copies += 1
        self._timestamp[line] = checkpoint_id

    def record_write(self, address: int, checkpoint_id: int) -> "WriteOutcome":
        """Record a store during ``checkpoint_id``.

        Returns a :class:`WriteOutcome` telling the caller whether an old
        copy of the line is needed for rollback (first write to the line
        in this checkpoint) and whether the write conflicts with the L1
        geometry (all ways of the set already hold unchecked lines).
        """
        self.stats.writes += 1
        line = self.line_of(address)
        previous = self._timestamp.get(line)
        conflict = False
        if previous is None:
            set_index = self.set_index(address)
            if self._set_load[set_index] >= self.ways:
                conflict = True
                self.stats.conflicts += 1
            else:
                self._set_load[set_index] += 1
        needs_copy = previous is None or previous < checkpoint_id
        if needs_copy:
            self.stats.line_copies += 1
        if previous is None and conflict:
            # The line cannot be buffered; the caller must stall until a
            # check completes, then retry.  State is unchanged.
            return WriteOutcome(needs_copy=needs_copy, conflict=True)
        self._timestamp[line] = checkpoint_id
        return WriteOutcome(needs_copy=needs_copy, conflict=False)

    def release_through(self, checkpoint_id: int) -> int:
        """Mark all lines written at or before ``checkpoint_id`` as checked.

        Called when checking of a checkpoint completes; returns the number
        of lines released.
        """
        released = [
            line for line, stamp in self._timestamp.items() if stamp <= checkpoint_id
        ]
        for line in released:
            del self._timestamp[line]
            self._set_load[(line >> self.line_shift) & self.set_mask] -= 1
        self.stats.released += len(released)
        return len(released)

    def drop_after(self, checkpoint_id: int) -> int:
        """Discard line state from checkpoints newer than ``checkpoint_id``.

        Called on rollback: the stores are undone, so the lines written by
        rolled-back checkpoints are no longer unchecked-dirty.
        """
        dropped = [
            line for line, stamp in self._timestamp.items() if stamp > checkpoint_id
        ]
        for line in dropped:
            del self._timestamp[line]
            self._set_load[(line >> self.line_shift) & self.set_mask] -= 1
        return len(dropped)

    def clear(self) -> None:
        self._timestamp.clear()
        self._set_load = [0] * self.num_sets


@dataclass(frozen=True)
class WriteOutcome:
    """Result of :meth:`UncheckedLineTracker.record_write`."""

    #: First write to this line within the current checkpoint: the old
    #: line contents must be copied into the rollback log (ParaDox) or the
    #: old word recorded (ParaMedic handles this per word regardless).
    needs_copy: bool
    #: All ways of the set already hold unchecked dirty lines; the write
    #: must wait for a check to complete (and, in ParaDox, shrink the
    #: checkpoint target).
    conflict: bool
