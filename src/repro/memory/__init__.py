"""Memory hierarchy: timing caches, SECDED ECC, unchecked-line tracking."""

from .cache import AccessResult, Cache, CacheStats, MemoryHierarchy, StridePrefetcher
from .ecc import (
    CODE_BITS,
    DATA_BITS,
    EccProtectedWord,
    EccResult,
    EccStatus,
    decode,
    encode,
    extract_data,
    flip_bits,
)
from .unchecked import UncheckedLineTracker, UncheckedStats, WriteOutcome

__all__ = [
    "AccessResult",
    "CODE_BITS",
    "Cache",
    "CacheStats",
    "DATA_BITS",
    "EccProtectedWord",
    "EccResult",
    "EccStatus",
    "MemoryHierarchy",
    "StridePrefetcher",
    "UncheckedLineTracker",
    "UncheckedStats",
    "WriteOutcome",
    "decode",
    "encode",
    "extract_data",
    "flip_bits",
]
