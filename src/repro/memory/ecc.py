"""SECDED error-correcting code for 64-bit words.

The paper assumes memory and caches are protected by SECDED ECC
("reliable systems usually cover memory using ECC bits, where we assume
SECDED protection", section IV-E), so ParaDox's redundancy only needs to
cover compute.  This module implements the classic Hamming(72,64) +
overall-parity code: 64 data bits, 7 Hamming check bits and one overall
parity bit give single-error correction and double-error detection.

Layout: the 72-bit codeword places Hamming check bit *i* at (1-based)
position ``2**i`` and data bits in the remaining positions, with the
overall parity bit appended at position 72.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

DATA_BITS = 64
HAMMING_BITS = 7  # positions 1,2,4,...,64 cover up to 71 positions
CODE_BITS = DATA_BITS + HAMMING_BITS + 1  # 72

#: 1-based codeword positions that hold data bits (not powers of two).
_DATA_POSITIONS: List[int] = [
    pos for pos in range(1, DATA_BITS + HAMMING_BITS + 1) if pos & (pos - 1)
]
assert len(_DATA_POSITIONS) == DATA_BITS
_PARITY_POSITION = CODE_BITS  # overall parity, 1-based position 72


class EccStatus(enum.Enum):
    """Outcome of a decode."""

    CLEAN = "clean"
    CORRECTED = "corrected single-bit error"
    DOUBLE_ERROR = "detected uncorrectable double-bit error"


@dataclass(frozen=True)
class EccResult:
    """Decoded data word plus what the decoder had to do."""

    data: int
    status: EccStatus
    corrected_position: int = 0  # 1-based codeword position, 0 if none


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


def encode(data: int) -> int:
    """Encode a 64-bit word into a 72-bit SECDED codeword."""
    if not 0 <= data < (1 << DATA_BITS):
        raise ValueError("data must be an unsigned 64-bit value")
    # Place data bits.
    codeword = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (data >> i) & 1:
            codeword |= 1 << (pos - 1)
    # Hamming check bits: check bit i covers positions with bit i set.
    for i in range(HAMMING_BITS):
        check_pos = 1 << i
        parity = 0
        for pos in _DATA_POSITIONS:
            if pos & check_pos and (codeword >> (pos - 1)) & 1:
                parity ^= 1
        if parity:
            codeword |= 1 << (check_pos - 1)
    # Overall parity over the first 71 bits.
    if _parity(codeword):
        codeword |= 1 << (_PARITY_POSITION - 1)
    return codeword


def decode(codeword: int) -> EccResult:
    """Decode a 72-bit codeword, correcting a single flipped bit."""
    if not 0 <= codeword < (1 << CODE_BITS):
        raise ValueError("codeword must be an unsigned 72-bit value")
    syndrome = 0
    for i in range(HAMMING_BITS):
        check_pos = 1 << i
        parity = 0
        for pos in range(1, DATA_BITS + HAMMING_BITS + 1):
            if pos & check_pos and (codeword >> (pos - 1)) & 1:
                parity ^= 1
        if parity:
            syndrome |= check_pos
    overall = _parity(codeword)

    if syndrome == 0 and overall == 0:
        return EccResult(extract_data(codeword), EccStatus.CLEAN)
    if overall == 1:
        # Odd number of flipped bits: correct the single error.  A
        # syndrome of zero means the overall parity bit itself flipped.
        corrected = codeword
        position = syndrome if syndrome else _PARITY_POSITION
        corrected ^= 1 << (position - 1)
        return EccResult(extract_data(corrected), EccStatus.CORRECTED, position)
    # Even number of errors with a non-zero syndrome: uncorrectable.
    return EccResult(extract_data(codeword), EccStatus.DOUBLE_ERROR)


def extract_data(codeword: int) -> int:
    """Strip check bits, returning the 64 data bits."""
    data = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (codeword >> (pos - 1)) & 1:
            data |= 1 << i
    return data


def flip_bits(codeword: int, positions: Tuple[int, ...]) -> int:
    """Return ``codeword`` with the given 1-based bit positions flipped."""
    for pos in positions:
        if not 1 <= pos <= CODE_BITS:
            raise ValueError(f"bit position {pos} outside 1..{CODE_BITS}")
        codeword ^= 1 << (pos - 1)
    return codeword


class EccProtectedWord:
    """A single 64-bit storage cell with SECDED protection.

    A convenience wrapper used by tests and by the coverage example to
    demonstrate that memory-side upsets are absorbed by ECC while compute
    errors need ParaDox's redundant execution.
    """

    def __init__(self, data: int = 0) -> None:
        self._codeword = encode(data)

    def write(self, data: int) -> None:
        self._codeword = encode(data)

    def read(self) -> EccResult:
        result = decode(self._codeword)
        if result.status is EccStatus.CORRECTED:
            # Scrub on read.
            self._codeword = encode(result.data)
        return result

    def upset(self, *positions: int) -> None:
        """Inject bit flips at the given 1-based codeword positions."""
        self._codeword = flip_bits(self._codeword, tuple(positions))
