"""Set-associative cache timing model with LRU replacement.

These caches are *timing-only*: data always lives in the architectural
:class:`~repro.isa.memory_image.MemoryImage` (the functional executor is
exact), while the caches track which lines are resident to charge
realistic hit/miss latencies.  This mirrors the paper's gem5 usage, where
the interesting behaviour — checkpoint sizing, log pressure, checker
occupancy — derives from the *timing* of the memory system.

A :class:`StridePrefetcher` can be attached (the Table I L2 has one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0
        self.prefetches = self.prefetch_hits = 0


class Cache:
    """One level of set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.associativity
        self.line_shift = config.line_bytes.bit_length() - 1
        self.set_mask = self.num_sets - 1
        if self.num_sets & self.set_mask:
            raise ValueError(f"{name}: number of sets must be a power of two")
        # Per set: list of line addresses in LRU order (front = MRU).
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._prefetched: set = set()
        self.stats = CacheStats()

    # -- address helpers -----------------------------------------------------
    def line_of(self, address: int) -> int:
        return address >> self.line_shift << self.line_shift

    def set_index(self, address: int) -> int:
        return (address >> self.line_shift) & self.set_mask

    # -- operations --------------------------------------------------------------
    def lookup(self, address: int) -> bool:
        """Probe without changing state; true if the line is resident."""
        return self.line_of(address) in self._sets[self.set_index(address)]

    def access(self, address: int) -> Tuple[bool, Optional[int]]:
        """Access ``address``; returns ``(hit, evicted_line_or_None)``.

        On a miss, the line is filled and the LRU line of the set may be
        evicted.
        """
        line = self.line_of(address)
        cache_set = self._sets[self.set_index(address)]
        if line in cache_set:
            self.stats.hits += 1
            if line in self._prefetched:
                self._prefetched.discard(line)
                self.stats.prefetch_hits += 1
            if cache_set[0] != line:
                cache_set.remove(line)
                cache_set.insert(0, line)
            return True, None
        self.stats.misses += 1
        evicted = self._fill(cache_set, line)
        return False, evicted

    def fill(self, address: int, prefetch: bool = False) -> Optional[int]:
        """Insert a line without counting an access (fills, prefetches)."""
        line = self.line_of(address)
        cache_set = self._sets[self.set_index(address)]
        if line in cache_set:
            return None
        if prefetch:
            self.stats.prefetches += 1
            self._prefetched.add(line)
        return self._fill(cache_set, line)

    def _fill(self, cache_set: List[int], line: int) -> Optional[int]:
        evicted = None
        if len(cache_set) >= self.ways:
            evicted = cache_set.pop()
            self._prefetched.discard(evicted)
            self.stats.evictions += 1
        cache_set.insert(0, line)
        return evicted

    def invalidate(self, address: int) -> bool:
        """Drop the line containing ``address``; true if it was resident."""
        line = self.line_of(address)
        cache_set = self._sets[self.set_index(address)]
        if line in cache_set:
            cache_set.remove(line)
            self._prefetched.discard(line)
            return True
        return False

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self._prefetched.clear()

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


class StridePrefetcher:
    """PC-indexed stride prefetcher (the Table I L2 prefetcher).

    Tracks the last address and stride per load PC; two consecutive
    accesses with the same stride arm it, after which it prefetches
    ``degree`` lines ahead.
    """

    def __init__(self, table_entries: int = 64, degree: int = 1) -> None:
        self.table_entries = table_entries
        self.degree = degree
        # pc -> (last_address, stride, confident)
        self._table: Dict[int, Tuple[int, int, bool]] = {}

    def observe(self, pc: int, address: int) -> List[int]:
        """Record an access; return addresses to prefetch (may be empty)."""
        prefetches: List[int] = []
        slot = pc % self.table_entries
        entry = self._table.get(slot)
        if entry is not None:
            last, stride, confident = entry
            new_stride = address - last
            if new_stride != 0 and new_stride == stride:
                prefetches = [
                    address + new_stride * (i + 1) for i in range(self.degree)
                ]
                self._table[slot] = (address, new_stride, True)
            else:
                self._table[slot] = (address, new_stride, False)
        else:
            self._table[slot] = (address, 0, False)
        return prefetches


@dataclass
class AccessResult:
    """Outcome of one data access through the hierarchy."""

    latency_cycles: int
    l1_hit: bool
    l2_hit: bool
    dram: bool


class MemoryHierarchy:
    """L1I + L1D + shared L2 + DRAM latency model (Table I, "Memory")."""

    def __init__(self, config: "SystemConfigLike") -> None:
        mem = config.memory
        self.config = mem
        self.l1i = Cache(mem.l1i, "l1i")
        self.l1d = Cache(mem.l1d, "l1d")
        self.l2 = Cache(mem.l2, "l2")
        self.dram_latency = mem.dram_latency_cycles
        self.prefetcher = (
            StridePrefetcher() if mem.l2.prefetcher == "stride" else None
        )
        self.dram_accesses = 0

    # -- data side -------------------------------------------------------------
    def data_access(self, address: int, pc: int = 0) -> AccessResult:
        """Charge a data-side access; returns latencies and hit levels."""
        l1_hit, _ = self.l1d.access(address)
        if l1_hit:
            return AccessResult(self.config.l1d.hit_latency_cycles, True, True, False)
        l2_hit, _ = self.l2.access(address)
        latency = self.config.l1d.hit_latency_cycles + self.config.l2.hit_latency_cycles
        dram = False
        if not l2_hit:
            latency += self.dram_latency
            self.dram_accesses += 1
            dram = True
        if self.prefetcher is not None:
            for prefetch_address in self.prefetcher.observe(pc, address):
                if 0 <= prefetch_address and not self.l2.lookup(prefetch_address):
                    self.l2.fill(prefetch_address, prefetch=True)
        return AccessResult(latency, False, l2_hit, dram)

    # -- instruction side ----------------------------------------------------------
    def fetch_access(self, address: int) -> int:
        """Charge an instruction fetch; returns latency in cycles."""
        l1_hit, _ = self.l1i.access(address)
        if l1_hit:
            return self.config.l1i.hit_latency_cycles
        l2_hit, _ = self.l2.access(address)
        latency = self.config.l1i.hit_latency_cycles + self.config.l2.hit_latency_cycles
        if not l2_hit:
            latency += self.dram_latency
            self.dram_accesses += 1
        return latency

    def reset_stats(self) -> None:
        self.l1i.stats.reset()
        self.l1d.stats.reset()
        self.l2.stats.reset()
        self.dram_accesses = 0


# Typing helper: anything with a ``memory`` attribute of MemoryConfig shape.
class SystemConfigLike:  # pragma: no cover - structural typing aid
    memory: object
