"""The heterogeneous fault-tolerance simulation engine.

Orchestrates one main core plus its pool of checker cores over a single
workload, reproducing the ParaMedic/ParaDox execution model:

1. The main core executes instructions functionally (exact architectural
   semantics) while the out-of-order timing model assigns commit cycles,
   and every load/store is recorded into the currently filling log
   segment.
2. A segment closes when it reaches the AIMD target length, fills its
   log SRAM, hits an unchecked-line eviction conflict, or the program
   ends.  Closing takes a register checkpoint (16 commit-blocked cycles)
   and dispatches the segment to a checker core chosen by the scheduling
   policy — stalling the main core if all checkers are busy.
3. Checker cores re-execute their segment against the log.  The fault
   injector corrupts checker state/log data (or main-core state when so
   targeted).  A divergence surfaces through one of the detection
   channels at a known point of checker execution.
4. On detection the main core stops, every store back to the faulty
   segment's start is reverted from the log (word- or line-granularity),
   architectural state is restored, and execution re-runs.  Checkpoint
   length, and optionally supply voltage and frequency, adapt.

Wall-clock time is continuous nanoseconds.  The main core's cycle count
maps to wall time through the *current* frequency, which the DVFS
controller may change at checkpoint boundaries; checker cores always run
at their own fixed clock.

The engine is deliberately single-main-core, like the paper's evaluation
("we do not test here on multicore workloads"), but models the L1
buffering of unchecked stores that multicore correctness requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..checkpoint import CheckpointLengthController, LengthEvent
from ..config import SystemConfig
from ..cores.branch_predictor import TournamentPredictor
from ..cores.checker_core import CheckResult, CheckerCore
from ..cores.main_core import MainCoreTiming
from ..dvfs import VoltageController
from ..faults.injector import FaultInjector
from ..faults.voltage_model import VoltageErrorModel
from ..isa import Executor, HaltTrap, MemoryImage, Program, SimTrap
from ..isa.instructions import EXTERNAL_SYSCALLS, Opcode
from ..isa.state import ArchState
from ..jit import SuperblockJit
from ..lslog.detection import DetectionChannel
from ..lslog.ports import MainMemoryPort, UncheckedConflictStall
from ..lslog.rollback import rollback_memory
from ..lslog.segment import (
    LogSegment,
    RollbackGranularity,
    SegmentCloseReason,
    SegmentFull,
)
from ..memory.cache import MemoryHierarchy
from ..memory.unchecked import UncheckedLineTracker
from ..resilience.guard import (
    ForwardProgressFailure,
    ForwardProgressGuard,
    ResilienceConfig,
)
from ..resilience.health import CheckerHealthTracker
from ..scheduling import CheckerPool, DispatchRecord, SchedulingPolicy
from ..stats import RecoveryEvent, RunOutcome, RunResult, StallBreakdown, StallBucket
from ..stats.timeline import EventKind, Timeline
from ..telemetry import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..oracle.invariants import ParanoidChecker


class LivelockError(RuntimeError):
    """The run exceeded its total execution budget (recovery livelock)."""


@dataclass
class PendingCheck:
    """A dispatched segment whose check has not yet committed."""

    segment: LogSegment
    record: DispatchRecord
    result: CheckResult
    #: Wall time the checker finishes (or detects).
    end_ns: float


@dataclass
class EngineOptions:
    """Behavioural switches distinguishing the four systems."""

    granularity: RollbackGranularity = RollbackGranularity.LINE
    scheduling: SchedulingPolicy = SchedulingPolicy.LOWEST_FREE_ID
    adaptive_checkpoints: bool = True
    #: Enable checker cores at all (False = unprotected baseline).
    checking: bool = True
    #: Enable the dynamic voltage controller (ParaDox DVS mode).
    dvs: bool = False
    #: With dvs, the fault rate follows the voltage through this model.
    voltage_model: Optional[VoltageErrorModel] = None
    #: Skip functional replay of segments in which no fault can fire.
    fastpath: bool = True
    #: Abort with LivelockError when total executed instructions exceed
    #: this multiple of the useful budget.
    livelock_factor: float = 64.0
    #: Use the constant voltage-decrease comparator of figure 11.
    dynamic_voltage_decrease: bool = True
    #: Record a :class:`repro.stats.timeline.Timeline` of segment/checker
    #: lifecycle events (debugging and documentation aid).
    record_timeline: bool = False
    #: Record a structured :class:`repro.telemetry.Tracer` event stream
    #: plus a metrics registry, returned on ``RunResult.trace`` /
    #: ``RunResult.metrics`` and exportable as JSONL or Perfetto JSON.
    #: Disabled (the default) costs nothing: no tracer object exists and
    #: every emission site is one ``is not None`` test at segment
    #: granularity.
    tracing: bool = False
    #: Enable the resilience layer: forward-progress escalation instead
    #: of livelock aborts, plus checker health tracking and quarantine.
    #: None preserves the legacy detect-and-rollback-or-die behaviour.
    resilience: Optional[ResilienceConfig] = None
    #: Re-derive and assert engine bookkeeping invariants (segment seq
    #: monotonicity, tracker/segment agreement, quarantine consistency,
    #: DVFS bounds) at segment granularity, raising
    #: :class:`repro.oracle.invariants.EngineInvariantError` on the
    #: first violation.  Disabled (the default) costs nothing: no
    #: checker object exists and every hook site is one ``is not None``
    #: test at segment granularity, exactly like ``tracing``.
    paranoid: bool = False
    #: Drive main-core execution through the compiled superblock tier
    #: (:mod:`repro.jit`) wherever the fill loop's per-instruction
    #: obligations allow, falling back to the interpreter at block
    #: exits, traps, segment boundaries and external syscalls.  Timing,
    #: stall accounting and telemetry are bit-identical either way (the
    #: differential oracle gates this); disable to force pure
    #: interpretation.  Ignored — the tier is never built — when a
    #: fault injector targets the main core, because injection points
    #: are per-instruction hooks that must see every retired
    #: instruction.  Checker cores never use the tier: their replay is
    #: the independent cross-check.
    jit: bool = True


class SimulationEngine:
    """Run one workload on one configuration of the architecture."""

    def __init__(
        self,
        program: Program,
        config: SystemConfig,
        options: EngineOptions,
        injector: Optional[FaultInjector] = None,
        memory: Optional[MemoryImage] = None,
        system_name: str = "system",
        rng: Optional[np.random.Generator] = None,
        pool: Optional[CheckerPool] = None,
        main_id: int = 0,
    ) -> None:
        self.program = program
        #: Which main core this engine models (0 for a private pool; the
        #: multicore harness numbers the producers of a shared pool).
        self.main_id = main_id
        self.config = config
        self.options = options
        self.injector = injector
        self.system_name = system_name
        self.memory = memory if memory is not None else MemoryImage()
        self.rng = rng if rng is not None else np.random.default_rng(config.fault.seed)

        # Main core.
        self.state = ArchState()
        self.hierarchy = MemoryHierarchy(config)
        self.predictor = TournamentPredictor(config.branch_predictor)
        self.timing = MainCoreTiming(
            config.main_core, self.hierarchy, self.predictor, program=program
        )
        self.tracker = UncheckedLineTracker(config.memory.l1d)
        self.port = MainMemoryPort(self.memory, self.tracker, options.granularity)
        self.executor = Executor(program, self.state, self.port)
        #: Compiled superblock tier for the main core; built at run()
        #: time (the emission mode depends on the execution path taken)
        #: and None when disabled or under main-core fault injection.
        self.jit: Optional[SuperblockJit] = None

        # Checker pool, optionally health-tracked (resilience layer).
        self.health: Optional[CheckerHealthTracker] = None
        if options.checking and pool is not None:
            # Injected (shared) pool: the multicore harness owns core
            # construction and the anti-ageing rotation draw; each
            # engine keeps a private health view of the shared cores.
            if options.resilience is not None and options.resilience.quarantine_enabled:
                self.health = CheckerHealthTracker(
                    len(pool.cores),
                    quarantine_vindications=options.resilience.quarantine_vindications,
                )
            pool.health = self.health
            self.pool: Optional[CheckerPool] = pool
        elif options.checking:
            cores = [
                CheckerCore(i, config.checker, program)
                for i in range(config.checker.count)
            ]
            boot_offset = int(self.rng.integers(config.checker.count))
            if options.resilience is not None and options.resilience.quarantine_enabled:
                self.health = CheckerHealthTracker(
                    config.checker.count,
                    quarantine_vindications=options.resilience.quarantine_vindications,
                )
            self.pool = CheckerPool(
                cores,
                options.scheduling,
                boot_offset=boot_offset,
                health=self.health,
            )
        else:
            self.pool = None

        # Controllers.
        self.length_controller = CheckpointLengthController(
            config.checkpoint, adaptive=options.adaptive_checkpoints
        )
        self.dvfs: Optional[VoltageController] = None
        if options.dvs:
            self.dvfs = VoltageController(
                config.dvfs,
                config.main_core.frequency_hz,
                dynamic_decrease=options.dynamic_voltage_decrease,
            )

        # Forward-progress guard (resilience layer).
        self.guard: Optional[ForwardProgressGuard] = None
        if options.resilience is not None and options.checking:
            self.guard = ForwardProgressGuard(
                options.resilience,
                self.length_controller,
                dvfs=self.dvfs,
                injector=self.injector,
            )
            if self.health is not None:
                health = self.health
                self.guard.quarantined_provider = lambda: health.quarantined

        # Time anchors: wall(cycles) = base_wall + (cycles - base_cycles) * cycle_ns.
        self._frequency_hz = config.main_core.frequency_hz
        self._cycle_ns = 1e9 / self._frequency_hz
        self._base_cycles = 0.0
        self._base_wall_ns = 0.0

        # Segment bookkeeping.
        self._next_seq = 1
        self._segment: Optional[LogSegment] = None
        self._segment_start_wall: Dict[int, float] = {}
        self._pending: List[PendingCheck] = []
        #: How many entries of ``_pending`` carry a detection.  Kept in
        #: sync at dispatch and squash so the per-instruction detection
        #: poll in the fill loop is a counter test, not a list scan.
        self._pending_detected = 0
        self._last_commit_ns = 0.0
        self._checkpoint_lengths: List[int] = []
        #: (checkpoint instret, checker id) of the last detection, pending
        #: attribution: the retry is steered to different hardware and its
        #: result vindicates or absolves the original checker.
        self._retry_suspect: Optional["tuple[int, int]"] = None

        # Statistics.
        self.stalls = StallBreakdown()
        self.recoveries: List[RecoveryEvent] = []
        self.close_reasons: Dict[SegmentCloseReason, int] = {}
        self._executed_total = 0
        self._segments_closed = 0
        self._trap_retries = 0
        #: True while the next (external) instruction has been cleared to
        #: execute: every older check has committed clean.
        self._external_verified = False
        #: (wall_ns, text) for every externally visible write performed.
        self.external_flushes: List["tuple[float, str]"] = []
        #: Executed instructions per unit class, wasted re-runs included.
        self._unit_mix: Dict[str, int] = {}
        #: Optional event log (EngineOptions.record_timeline).
        self.timeline: Optional[Timeline] = (
            Timeline() if options.record_timeline else None
        )
        #: Optional structured telemetry (EngineOptions.tracing): one
        #: tracer per engine, shared by every instrumented subcomponent.
        self.tracer: Optional[Tracer] = None
        if options.tracing:
            self.tracer = Tracer(
                system=system_name,
                workload=program.name,
                seed=config.fault.seed,
            )
            self.length_controller.tracer = self.tracer
            if self.pool is not None:
                self.pool.tracer = self.tracer
            if self.dvfs is not None:
                self.dvfs.tracer = self.tracer
            if self.injector is not None:
                self.injector.tracer = self.tracer
            if self.guard is not None:
                self.guard.tracer = self.tracer
            if self.health is not None:
                self.health.tracer = self.tracer
        #: Optional invariant checker (EngineOptions.paranoid): absent
        #: by default, so every hook site is one ``is not None`` test at
        #: segment granularity — the tracing discipline.  Imported
        #: lazily to keep the oracle package out of production imports.
        self.paranoid: Optional["ParanoidChecker"] = None
        if options.paranoid:
            from ..oracle.invariants import ParanoidChecker

            self.paranoid = ParanoidChecker()
        #: PCs of externally visible syscalls, precomputed so the fill
        #: loop's per-instruction "is the next instruction external?"
        #: test is one set-membership probe.
        self._external_pcs = frozenset(
            pc
            for pc, instruction in enumerate(program.instructions)
            if instruction.opcode is Opcode.SYSCALL
            and instruction.imm in EXTERNAL_SYSCALLS
        )

    # ------------------------------------------------------------------ time --
    @property
    def wall_ns(self) -> float:
        return self._base_wall_ns + (self.timing.now - self._base_cycles) * self._cycle_ns

    def _ns_to_cycles(self, ns: float) -> float:
        return ns / self._cycle_ns

    def _set_frequency(self, frequency_hz: float) -> None:
        if frequency_hz == self._frequency_hz:
            return
        # Re-anchor so past time is preserved, future cycles use new period.
        self._base_wall_ns = self.wall_ns
        self._base_cycles = self.timing.now
        self._frequency_hz = frequency_hz
        self._cycle_ns = 1e9 / frequency_hz

    def _stall_to_wall(self, target_ns: float, bucket: StallBucket) -> None:
        """Stall the main core until wall time ``target_ns``.

        ``bucket`` is a :class:`StallBucket`, not a string: every stall
        lands in a named field of :attr:`stalls` (so ``total_ns`` is
        total by construction), and an unknown bucket raises instead of
        silently dropping time.
        """
        now = self.wall_ns
        if target_ns <= now:
            return
        cycles = self._ns_to_cycles(target_ns - now)
        self.timing.stall_until(self.timing.now + cycles)
        self.stalls.add(bucket, target_ns - now)

    # ------------------------------------------------------------- segments --
    def _open_segment(self, start_state: ArchState) -> None:
        granularity = self.options.granularity
        seq = self._next_seq
        self._next_seq += 1
        prev_id = self.pool.last_core_id if self.pool is not None else None
        self._segment = LogSegment(
            seq=seq,
            granularity=granularity,
            capacity_bytes=self.config.checker.log_bytes_per_core,
            start_state=start_state,
            prev_checker_id=prev_id,
            main_id=self.main_id,
        )
        self._segment.text_footprint_bytes = self.program.text_bytes
        self.port.segment = self._segment
        if self.jit is not None:
            # Segment-boundary invalidation: compiled blocks record into
            # the segment the tier knows about; a stale recorder would
            # account instructions to a closed checkpoint.
            self.jit.note_segment(self._segment)
        self._segment_start_wall[seq] = self.wall_ns
        if self.timeline is not None:
            self.timeline.record(self.wall_ns, EventKind.SEGMENT_OPEN, seq)
        if self.tracer is not None:
            self.tracer.now_ns = self.wall_ns
            self.tracer.emit("engine", "segment_open", segment=seq)

    def _close_segment(self, reason: SegmentCloseReason) -> None:
        segment = self._segment
        assert segment is not None
        segment.close(self.state.snapshot(), reason)
        if self.timeline is not None:
            self.timeline.record(
                self.wall_ns, EventKind.SEGMENT_CLOSE, segment.seq, detail=reason.value
            )
        if self.tracer is not None:
            self.tracer.now_ns = self.wall_ns
            self.tracer.emit(
                "engine",
                "segment_close",
                segment=segment.seq,
                value=float(segment.instruction_count),
                detail=reason.value,
            )
        self.close_reasons[reason] = self.close_reasons.get(reason, 0) + 1
        self._segments_closed += 1
        self._trap_retries = 0  # a closed segment is forward progress
        self._checkpoint_lengths.append(segment.instruction_count)

        # Register checkpoint: commit blocked for 16 cycles.
        block = self.config.main_core.register_checkpoint_cycles
        self.timing.block_commit(block)
        self.stalls.checkpoint_ns += block * self._cycle_ns

        # DVFS advances at every checkpoint boundary (error case is
        # handled inside _recover).
        self._dvfs_checkpoint(error=False)

        if self.pool is not None:
            self._dispatch(segment)

        event = (
            LengthEvent.EVICTION
            if reason is SegmentCloseReason.EVICTION_CONFLICT
            else LengthEvent.CLEAN
        )
        self.length_controller.observe(segment.instruction_count, event)

        if self.paranoid is not None:
            self.paranoid.on_close(self, segment)

        # Next segment continues from this checkpoint.
        self._open_segment(segment.end_state)

    def _dvfs_checkpoint(self, error: bool) -> None:
        if self.dvfs is None:
            return
        self.dvfs.on_checkpoint(error, self.wall_ns)
        self._sync_dvfs_outputs()

    def _sync_dvfs_outputs(self) -> None:
        """Propagate the controller's voltage to frequency and fault rate."""
        if self.dvfs is None:
            return
        self._set_frequency(self.dvfs.frequency_hz)
        if self.injector is not None:
            if self.options.voltage_model is not None:
                rate = self.options.voltage_model.rate(self.dvfs.voltage)
                self.injector.set_rate(rate)
            # Map-based SRAM models follow the voltage directly: a
            # supply change re-thresholds their bit-cell maps.
            self.injector.set_voltage(self.dvfs.voltage)
        if self.jit is not None:
            # Voltage-event invalidation: bound superblocks are dropped
            # on an actual supply move and lazily re-bound.
            self.jit.note_voltage(self.dvfs.voltage)

    # -------------------------------------------------------------- checking --
    def _dispatch(self, segment: LogSegment) -> None:
        pool = self.pool
        assert pool is not None
        # A retry of a rolled-back checkpoint is steered away from the
        # checker that reported the detection: its verdict on different
        # hardware attributes the fault (checker-local vs followed-the-work).
        suspect = self._retry_suspect
        retrying = (
            suspect is not None
            and self.health is not None
            and segment.start_state.instret == suspect[0]
        )
        avoid = {suspect[1]} if retrying else None
        core, start_ns = pool.select(self.wall_ns, avoid=avoid)
        if start_ns > self.wall_ns:
            self._stall_to_wall(start_ns, StallBucket.CHECKER_WAIT)
        start_ns = max(start_ns, self.wall_ns)
        segment.checker_id = core.core_id

        result = self._check(core, segment)
        if self.health is not None:
            if result.detected:
                self.health.record_detection(core.core_id)
            else:
                self.health.record_clean(core.core_id)
            if retrying:
                self._retry_suspect = None
                suspect_core = suspect[1]
                if core.core_id != suspect_core:
                    if result.detected:
                        # The retry failed on different hardware too: the
                        # fault followed the work, not the checker.
                        self.health.record_absolution(suspect_core)
                    else:
                        self.health.record_vindication(suspect_core, start_ns)
        duration_ns = core.cycles_to_ns(result.checker_cycles)
        record = pool.dispatch(core, segment.seq, start_ns, duration_ns)
        self._pending.append(
            PendingCheck(segment, record, result, start_ns + duration_ns)
        )
        if result.detected:
            self._pending_detected += 1
        if self.timeline is not None:
            self.timeline.record(
                start_ns,
                EventKind.DISPATCH,
                segment.seq,
                core=core.core_id,
                detail=f"{start_ns:.1f}..{start_ns + duration_ns:.1f}",
            )
        if self.tracer is not None:
            self.tracer.emit(
                "engine",
                "dispatch",
                time_ns=start_ns,
                segment=segment.seq,
                core=core.core_id,
                value=duration_ns,
            )

    def _check(self, core: CheckerCore, segment: LogSegment) -> CheckResult:
        injector = self.injector
        checker_targeted = injector is not None and injector.target == "checker"
        main_targeted = injector is not None and injector.target == "main"
        if injector is not None:
            injector.begin_check(core.core_id, segment)
        try:
            if not main_targeted and self.options.fastpath:
                if injector is None or not injector.fires_within_segment(segment):
                    if injector is not None:
                        injector.skip_segment(segment)
                    return CheckResult(
                        None, segment.instruction_count, core.analytic_cycles(segment)
                    )
            if injector is not None:
                injector.note_replay()
            hook = injector if checker_targeted else None
            return core.check_segment(segment, hook=hook)
        finally:
            if injector is not None:
                injector.begin_check(None)

    # -------------------------------------------------- commits & detections --
    def _next_detection(self) -> Optional[PendingCheck]:
        if not self._pending_detected:
            return None
        candidates = [p for p in self._pending if p.result.detected]
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.end_ns)

    def _process_commits(self, up_to_ns: float) -> None:
        """Commit clean checks, oldest first, whose results land by ``up_to_ns``.

        A check commits only once all older checks have committed (the
        waiting state of figure 2); commit releases its unchecked lines.
        A pending *detection* blocks commits of everything younger.
        """
        committed = False
        while self._pending:
            head = self._pending[0]
            if head.result.detected:
                break
            effective = max(head.end_ns, self._last_commit_ns)
            if effective > up_to_ns:
                break
            self._last_commit_ns = effective
            self.tracker.release_through(head.segment.seq)
            self._pending.pop(0)
            self._segment_start_wall.pop(head.segment.seq, None)
            committed = True
            if self.guard is not None:
                self.guard.on_commit(head.segment.end_state.instret)
            if self.timeline is not None:
                self.timeline.record(effective, EventKind.COMMIT, head.segment.seq)
            if self.tracer is not None:
                self.tracer.emit(
                    "engine", "commit", time_ns=effective, segment=head.segment.seq
                )
        if committed and self.paranoid is not None:
            self.paranoid.on_commit(self)

    def _handle_detection(self, pending: PendingCheck) -> None:
        """Roll back to the start of the faulty segment and resume."""
        faulty = pending.segment
        now = max(self.wall_ns, pending.end_ns)
        # Commit any older clean checks that finished before detection.
        self._process_commits(now)

        # The faulty segment may no longer be the oldest pending; roll back
        # everything from it (inclusive) to the newest, plus the filler.
        to_squash = [p for p in self._pending if p.segment.seq >= faulty.seq]
        keep = [p for p in self._pending if p.segment.seq < faulty.seq]
        segments_newest_first: List[LogSegment] = []
        filler = self._segment
        if filler is not None and (filler.instruction_count or filler.store_count):
            segments_newest_first.append(filler)
        segments_newest_first.extend(
            sorted((p.segment for p in to_squash), key=lambda s: s.seq, reverse=True)
        )

        rollback = rollback_memory(self.memory, segments_newest_first)
        rollback_ns = rollback.cycles * self._cycle_ns

        # Abort in-flight checks of squashed segments.
        for squashed in to_squash:
            if self.pool is not None:
                self.pool.abort(squashed.record, now)
        self._pending = keep
        self._pending_detected = sum(1 for p in keep if p.result.detected)

        # Restore architectural and tracker state.
        useful_before = self.state.instret
        self.state.restore(faulty.start_state)
        self.tracker.drop_after(faulty.seq - 1)
        self.timing.discard_inflight()

        # Account time: detection point, then the rollback walk.
        wasted_ns = now - self._segment_start_wall.get(faulty.seq, now)
        self._stall_to_wall(now + rollback_ns, StallBucket.ROLLBACK)

        self.recoveries.append(
            RecoveryEvent(
                segment_seq=faulty.seq,
                channel=pending.result.detection.channel,
                detect_ns=now,
                wasted_execution_ns=max(wasted_ns, 0.0),
                rollback_ns=rollback_ns,
                rollback_entries=rollback.entries_restored,
                segments_rolled_back=rollback.segments_walked,
            )
        )
        if self.timeline is not None:
            self.timeline.record(
                now,
                EventKind.DETECTION,
                faulty.seq,
                core=pending.record.core_id,
                detail=pending.result.detection.channel.value,
            )
            self.timeline.record(
                now + rollback_ns,
                EventKind.ROLLBACK,
                faulty.seq,
                detail=f"{rollback.entries_restored} entries, "
                f"{rollback.segments_walked} segments",
            )
        if self.tracer is not None:
            self.tracer.now_ns = now
            self.tracer.emit(
                "engine",
                "detect",
                time_ns=now,
                segment=faulty.seq,
                core=pending.record.core_id,
                detail=pending.result.detection.channel.value,
            )
            self.tracer.emit(
                "engine",
                "rollback",
                time_ns=now + rollback_ns,
                segment=faulty.seq,
                value=rollback_ns,
                detail=f"{rollback.entries_restored} entries, "
                f"{rollback.segments_walked} segments",
            )
            self.tracer.metrics.observe("engine.rollback_ns", rollback_ns)
            self.tracer.metrics.observe(
                "engine.wasted_ns", max(wasted_ns, 0.0)
            )
        for seq in list(self._segment_start_wall):
            if seq >= faulty.seq:
                del self._segment_start_wall[seq]

        # Adapt: checkpoint length shrinks, voltage rises.
        self.length_controller.observe(faulty.instruction_count, LengthEvent.ERROR)
        self._dvfs_checkpoint(error=True)

        # Resilience: steer the retry to different hardware, and let the
        # forward-progress guard escalate if this checkpoint keeps
        # rolling back (it raises ForwardProgressFailure when the storm
        # survives the safe voltage).
        if self.health is not None:
            self._retry_suspect = (
                faulty.start_state.instret,
                pending.record.core_id,
            )
        if self.guard is not None:
            try:
                self.guard.on_rollback(
                    faulty.start_state.instret,
                    self.wall_ns,
                    checker_id=pending.record.core_id,
                    channel=pending.result.detection.channel.value,
                )
            finally:
                # Escalation may have moved the voltage target; keep the
                # clock and the fault rate coupled to it either way.
                self._sync_dvfs_outputs()

        # Resume filling from the restored state.
        self._external_verified = False
        self._open_segment(faulty.start_state.snapshot())
        if self.paranoid is not None:
            self.paranoid.on_rollback(self, faulty.seq - 1)
        del useful_before

    def _handle_main_trap(self, trap: SimTrap) -> None:
        """The main core itself trapped — suspect a transient fault.

        With main-core injection enabled a bit flip can send the main core
        to a wild address or PC.  Hardware running ParaDox treats this
        like any other error: drain outstanding checks (an older segment's
        checker may pinpoint the corruption and trigger a full rollback),
        and otherwise revert the current segment locally and re-run it.
        A trap that recurs without any possible fault is a genuine program
        bug and is re-raised.
        """
        if not self.options.checking:
            raise RuntimeError(
                f"unprotected main core trapped at pc {self.state.pc}: {trap!r}"
            ) from trap
        # Prefer a pending detection: it rolls back further and clears more.
        while self._pending:
            detection = self._next_detection()
            head = self._pending[0]
            head_effective = max(head.end_ns, self._last_commit_ns)
            if detection is not None and detection.end_ns <= head_effective:
                self._stall_to_wall(detection.end_ns, StallBucket.CHECKER_WAIT)
                self._handle_detection(detection)
                self._trap_retries = 0
                return
            self._stall_to_wall(head_effective, StallBucket.CHECKER_WAIT)
            self._process_commits(head_effective)
        # No outstanding checks: the corruption is local to this segment.
        self._trap_retries += 1
        if self.guard is None and self._trap_retries > 8:
            # Legacy behaviour: without the resilience layer a recurring
            # trap is assumed to be a deterministic program bug.  The
            # forward-progress guard instead escalates (shrink, voltage)
            # and surfaces a typed ForwardProgressFailure if it persists.
            raise RuntimeError(
                f"main core trapped repeatedly at pc {self.state.pc} with no "
                f"recovery possible (deterministic bug?): {trap!r}"
            ) from trap
        filler = self._segment
        if filler is None:
            # The trap landed between a segment close and the next open
            # (no filling segment): nothing was logged, so there is
            # nothing to roll back.  Record a zero-cost recovery and
            # restart filling from the current architectural state.
            now = self.wall_ns
            self.recoveries.append(
                RecoveryEvent(
                    segment_seq=self._next_seq,
                    channel=DetectionChannel.MAIN_TRAP,
                    detect_ns=now,
                    wasted_execution_ns=0.0,
                    rollback_ns=0.0,
                    rollback_entries=0,
                    segments_rolled_back=0,
                )
            )
            self._dvfs_checkpoint(error=True)
            if self.guard is not None:
                try:
                    self.guard.on_rollback(
                        self.state.instret,
                        self.wall_ns,
                        channel=DetectionChannel.MAIN_TRAP.value,
                    )
                finally:
                    self._sync_dvfs_outputs()
            self._external_verified = False
            self._open_segment(self.state.snapshot())
            return
        rollback = rollback_memory(self.memory, [filler] if filler.store_count else [])
        rollback_ns = rollback.cycles * self._cycle_ns
        now = self.wall_ns
        wasted_ns = now - self._segment_start_wall.get(filler.seq, now)
        self.state.restore(filler.start_state)
        self.tracker.drop_after(filler.seq - 1)
        self.timing.discard_inflight()
        self._stall_to_wall(now + rollback_ns, StallBucket.ROLLBACK)
        self.recoveries.append(
            RecoveryEvent(
                segment_seq=filler.seq,
                channel=DetectionChannel.MAIN_TRAP,
                detect_ns=now,
                wasted_execution_ns=max(wasted_ns, 0.0),
                rollback_ns=rollback_ns,
                rollback_entries=rollback.entries_restored,
                segments_rolled_back=rollback.segments_walked,
            )
        )
        self.length_controller.observe(filler.instruction_count, LengthEvent.ERROR)
        self._dvfs_checkpoint(error=True)
        if self.guard is not None:
            try:
                self.guard.on_rollback(
                    filler.start_state.instret,
                    self.wall_ns,
                    channel=DetectionChannel.MAIN_TRAP.value,
                )
            finally:
                self._sync_dvfs_outputs()
        self._external_verified = False
        self._open_segment(filler.start_state.snapshot())
        if self.paranoid is not None:
            self.paranoid.on_rollback(self, filler.seq - 1)

    # ------------------------------------------------------------------- run --
    def run(self, max_instructions: int = 1_000_000) -> RunResult:
        """Simulate until the program halts or the useful budget is reached."""
        options = self.options
        if not options.checking:
            return self._run_unprotected(max_instructions)
        livelock_budget = int(max_instructions * options.livelock_factor)
        if options.jit and (self.injector is None or self.injector.target != "main"):
            # Protected path: blocks record into the live segment and
            # commit to the timing model, exactly like the fill loop.
            self.jit = SuperblockJit(
                self.program,
                self.state,
                self.port,
                commit=self.timing.commit,
                unit_mix=self._unit_mix,
                record=True,
            )
        self._open_segment(self.state.snapshot())

        outcome = RunOutcome.COMPLETED
        failure = None
        main_done_ns = 0.0
        try:
            while True:
                self._fill_loop(max_instructions, livelock_budget)
                # Program finished (or budget reached): close the last segment.
                segment = self._segment
                if segment is not None and segment.instruction_count > 0:
                    self._close_segment(SegmentCloseReason.PROGRAM_END)
                # The application is complete here; outstanding checks
                # drain in the background and only extend the run if one
                # of them detects an error.
                main_done_ns = self.wall_ns
                if not self._drain():
                    break
                # A detection during drain un-halted the state; keep running.
        except LivelockError:
            outcome = RunOutcome.LIVELOCK
            main_done_ns = self.wall_ns
        except ForwardProgressFailure as fpf:
            outcome = RunOutcome.FORWARD_PROGRESS_FAILURE
            failure = fpf.diagnostics
            main_done_ns = self.wall_ns

        wall = main_done_ns or self.wall_ns
        pool = self.pool
        result = RunResult(
            system=self.system_name,
            workload=self.program.name,
            wall_ns=wall,
            instructions=self.state.instret,
            instructions_executed=self._executed_total,
            segments=self._segments_closed,
            recoveries=self.recoveries,
            stalls=self.stalls,
            close_reasons=dict(self.close_reasons),
            checker_wake_rates=pool.wake_rates(wall) if pool else [],
            checker_peak_concurrency=pool.peak_concurrency() if pool else 0,
            voltage_trace=list(self.dvfs.stats.trace) if self.dvfs else [],
            mean_voltage=(
                self.dvfs.stats.mean_voltage()
                if self.dvfs
                else self.config.dvfs.nominal_voltage
            ),
            highest_error_voltage=(
                self.dvfs.stats.highest_error_voltage if self.dvfs else 0.0
            ),
            faults_injected=self.injector.stats.total if self.injector else 0,
            program_output=list(self.state.output),
            mean_checkpoint_length=(
                sum(self._checkpoint_lengths) / len(self._checkpoint_lengths)
                if self._checkpoint_lengths
                else 0.0
            ),
            final_checkpoint_target=self.length_controller.target,
            outcome=outcome,
            failure=failure,
            quarantine_events=list(self.health.events) if self.health else [],
            escalations=list(self.guard.events) if self.guard else [],
            livelocked=outcome is RunOutcome.LIVELOCK,
            external_flushes=list(self.external_flushes),
            unit_mix=dict(self._unit_mix),
            dispatch_trace=(
                [
                    (record.start_ns, record.end_ns - record.start_ns)
                    for record in pool.dispatches
                    if record.end_ns > record.start_ns
                ]
                if pool
                else []
            ),
        )
        self._finalize_telemetry(result)
        return result

    def _finalize_telemetry(self, result: RunResult) -> None:
        """Fold run-level statistics into the metrics registry and attach
        the serialized trace + metrics to the result.

        Serialization happens here (not at export time) so the artifacts
        survive pickling through the parallel fan-out's result pipe.
        """
        tracer = self.tracer
        if tracer is None:
            return
        metrics = tracer.metrics
        metrics.inc("engine.instructions", float(result.instructions))
        metrics.inc(
            "engine.instructions_executed", float(result.instructions_executed)
        )
        metrics.inc("engine.segments", float(result.segments))
        metrics.inc("engine.detections", float(len(result.recoveries)))
        metrics.inc("engine.faults_injected", float(result.faults_injected))
        metrics.gauge("engine.wall_ns", result.wall_ns)
        metrics.gauge("engine.ipc_aggregate", result.ipc_aggregate)
        metrics.gauge(
            "engine.mean_checkpoint_length", result.mean_checkpoint_length
        )
        metrics.gauge(
            "checkpoint.final_target", float(result.final_checkpoint_target)
        )
        metrics.gauge("dvfs.mean_voltage", result.mean_voltage)
        stalls = result.stalls
        metrics.gauge("stalls.checker_wait_ns", stalls.checker_wait_ns)
        metrics.gauge("stalls.conflict_ns", stalls.conflict_ns)
        metrics.gauge("stalls.checkpoint_ns", stalls.checkpoint_ns)
        metrics.gauge("stalls.rollback_ns", stalls.rollback_ns)
        metrics.gauge("stalls.drain_ns", stalls.drain_ns)
        metrics.gauge("stalls.total_ns", stalls.total_ns)
        if result.checker_wake_rates:
            metrics.set_per_checker(
                "scheduling.wake_rates", result.checker_wake_rates
            )
        if self.jit is not None:
            for name, value in self.jit.stats.to_dict().items():
                # blocks_compiled reflects the warmth of the process-wide
                # shared code cache (a worker that already golden-ran the
                # same program compiles nothing), so it cannot be part of
                # the run's deterministic telemetry contract.  The other
                # counters are functions of the run alone and must stay
                # bit-identical across execution widths.
                if name == "blocks_compiled":
                    continue
                metrics.gauge(f"jit.{name}", float(value))
        metrics.inc(f"engine.outcome.{result.outcome.value}")
        result.metrics = metrics.to_dict()
        result.trace = tracer.to_dicts()

    def _run_unprotected(self, max_instructions: int) -> RunResult:
        """Baseline: the main core alone, no checkers, no checkpoints."""
        state = self.state
        # Bypass the logging port entirely.
        self.executor.port = self.memory
        options = self.options
        jit = None
        if options.jit and (self.injector is None or self.injector.target != "main"):
            # Built after the port rebind above so blocks bind the raw
            # memory image, like the interpreted steps they replace.
            # No segments here, so commit-only emission (no recorder).
            jit = SuperblockJit(
                self.program,
                self.state,
                self.memory,
                commit=self.timing.commit,
                unit_mix=self._unit_mix,
            )
            self.jit = jit
        # Hot loop: bind the per-instruction callees once.
        step = self.executor.step
        commit = self.timing.commit
        unit_mix = self._unit_mix
        jit_active_get = jit._active.get if jit is not None else None
        executed = 0
        while not state.halted and state.instret < max_instructions:
            if jit_active_get is not None:
                entry = jit_active_get(state.pc)
                if entry is None:
                    entry = jit.runner(state.pc)
                if (
                    entry is not None
                    and state.instret + entry.length <= max_instructions
                ):
                    entry.run()
                    executed += entry.length
                    stats = jit.stats
                    stats.dispatches += 1
                    stats.instructions += entry.length
                    continue
            info = step()
            executed += 1
            commit(info)
            unit_name = info.instruction.unit.value
            unit_mix[unit_name] = unit_mix.get(unit_name, 0) + 1
        self._executed_total += executed
        result = RunResult(
            system=self.system_name,
            workload=self.program.name,
            wall_ns=self.wall_ns,
            instructions=state.instret,
            instructions_executed=self._executed_total,
            segments=0,
            program_output=list(state.output),
            mean_voltage=self.config.dvfs.nominal_voltage,
            unit_mix=dict(self._unit_mix),
        )
        self._finalize_telemetry(result)
        return result

    def _fill_loop(self, max_instructions: int, livelock_budget: int) -> None:
        """Execute main-core instructions until halt or budget."""
        state = self.state
        segment_target = self.length_controller.target
        # Hot loop: bind per-instruction callees and constants once.
        # (self.executor and self.timing are never rebound while the
        # protected path runs; self._unit_mix is mutated, not replaced.)
        step = self.executor.step
        commit = self.timing.commit
        unit_mix = self._unit_mix
        external_pcs = self._external_pcs
        injector = self.injector
        main_injection = injector is not None and injector.target == "main"
        jit = self.jit
        jit_active_get = jit._active.get if jit is not None else None
        while not state.halted and state.instret < max_instructions:
            if self._executed_total >= livelock_budget:
                if self.guard is not None:
                    # Resilient mode: a persistent defect at the safe
                    # voltage is a typed forward-progress failure even
                    # when the storm crawled past fail_after's streak.
                    self.guard.on_budget_exhausted(state.instret, self.wall_ns)
                raise LivelockError(
                    f"{self._executed_total} instructions executed for only "
                    f"{state.instret} useful — recovery livelock"
                )
            if not self._external_verified and state.pc in external_pcs:
                # External state escapes the rollback domain: close the
                # current segment and block until every outstanding check
                # has committed clean before letting the write proceed.
                if self._segment.instruction_count > 0:
                    self._close_segment(SegmentCloseReason.EXTERNAL)
                if self._drain_blocking():
                    segment_target = self.length_controller.target
                    continue  # a detection rolled us back; retry
                self._external_verified = True
            if jit_active_get is not None and not self._external_verified:
                # Compiled dispatch.  A block runs only when every
                # per-instruction obligation of the interpreted path is
                # provably a no-op across its whole span: no pending
                # detection can mature (_pending_detected only changes
                # inside _dispatch/_squash, never mid-block), no
                # external syscall sits inside a block (SYSCALL is not
                # compilable), no main-core injector exists (tier is
                # not built then), and the segment target, instruction
                # budget and livelock budget all have room for the full
                # block.  Anything short of that falls through to the
                # interpreter below.
                entry = jit_active_get(state.pc)
                if entry is None:
                    entry = jit.runner(state.pc)
                if (
                    entry is not None
                    and not self._pending_detected
                    and self._segment.instruction_count + entry.length
                    <= segment_target
                    and state.instret + entry.length <= max_instructions
                    and self._executed_total + entry.length <= livelock_budget
                ):
                    before = state.instret
                    try:
                        entry.run(jit._rec)
                    except SegmentFull:
                        self._executed_total += state.instret - before
                        self._close_segment(SegmentCloseReason.LOG_CAPACITY)
                        segment_target = self.length_controller.target
                        continue
                    except UncheckedConflictStall as stall:
                        self._executed_total += state.instret - before
                        self._handle_conflict(stall.address)
                        segment_target = self.length_controller.target
                        continue
                    except SimTrap as trap:
                        self._executed_total += state.instret - before
                        self._handle_main_trap(trap)
                        segment_target = self.length_controller.target
                        continue
                    self._executed_total += entry.length
                    stats = jit.stats
                    stats.dispatches += 1
                    stats.instructions += entry.length
                    if self._segment.instruction_count >= segment_target:
                        self._close_segment(SegmentCloseReason.TARGET_LENGTH)
                        segment_target = self.length_controller.target
                    continue
            try:
                info = step()
            except SegmentFull:
                self._close_segment(SegmentCloseReason.LOG_CAPACITY)
                segment_target = self.length_controller.target
                continue
            except UncheckedConflictStall as stall:
                self._handle_conflict(stall.address)
                segment_target = self.length_controller.target
                continue
            except HaltTrap:  # pragma: no cover - defensive
                break
            except SimTrap as trap:
                self._handle_main_trap(trap)
                segment_target = self.length_controller.target
                continue

            self._executed_total += 1
            commit(info)
            unit = info.instruction.unit
            unit_name = unit.value
            unit_mix[unit_name] = unit_mix.get(unit_name, 0) + 1
            segment = self._segment
            segment.record_instruction(unit, writes_register=info.dest is not None)
            if self._external_verified:
                # The external write just executed, *buffered*.  It is
                # released to the outside world only once its own segment
                # checks clean; a detection instead rolls back to before
                # the write, which was never released — no duplication.
                self._external_verified = False
                pending_text = state.output[-1][1] if state.output else ""
                self._close_segment(SegmentCloseReason.EXTERNAL)
                if self._drain_blocking():
                    segment_target = self.length_controller.target
                    continue
                self.external_flushes.append((self.wall_ns, pending_text))
                if self.timeline is not None:
                    self.timeline.record(
                        self.wall_ns, EventKind.EXTERNAL_FLUSH, detail=pending_text
                    )
                if self.tracer is not None:
                    self.tracer.emit(
                        "engine",
                        "external_flush",
                        time_ns=self.wall_ns,
                        detail=pending_text,
                    )
                segment_target = self.length_controller.target
                continue
            if main_injection:
                injector.after_instruction(state, info, segment.instruction_count)

            # Detections interrupt execution as soon as the main core's
            # wall clock passes the detection point.
            if self._pending_detected:
                detection = self._next_detection()
                if detection is not None and detection.end_ns <= self.wall_ns:
                    self._handle_detection(detection)
                    segment_target = self.length_controller.target
                    continue

            if state.halted:
                break
            if segment.instruction_count >= segment_target:
                self._close_segment(SegmentCloseReason.TARGET_LENGTH)
                segment_target = self.length_controller.target

    def _handle_conflict(self, address: int) -> None:
        """An unchecked-line conflict: drain checkers until the write fits."""
        segment = self._segment
        if segment.instruction_count > 0:
            self._close_segment(SegmentCloseReason.EVICTION_CONFLICT)
        # Wait for commits (in order) until the set has a free way.
        while self.tracker.would_conflict(address):
            detection = self._next_detection()
            if self._pending:
                head = self._pending[0]
                head_effective = max(head.end_ns, self._last_commit_ns)
            else:
                head_effective = None
            if detection is not None and (
                head_effective is None or detection.end_ns <= head_effective
            ):
                self._stall_to_wall(detection.end_ns, StallBucket.CONFLICT)
                self._handle_detection(detection)
                return  # state rolled back; the conflicting store may not recur
            if head_effective is None:
                raise RuntimeError(
                    f"unresolvable unchecked-line conflict at {address:#x}"
                )
            self._stall_to_wall(head_effective, StallBucket.CONFLICT)
            self._process_commits(head_effective)

    def _next_is_external(self) -> bool:
        """Is the next instruction a syscall that updates external state?"""
        return self.state.pc in self._external_pcs

    def _drain_blocking(self) -> bool:
        """Stall the main core until all checks commit; True on rollback.

        Unlike the end-of-run :meth:`_drain`, the main core here is *not*
        finished — it is blocked on an external operation — so waiting
        for clean commits costs real wall time (checker-wait stalls).
        """
        while self._pending:
            detection = self._next_detection()
            head = self._pending[0]
            head_effective = max(head.end_ns, self._last_commit_ns)
            if detection is not None and detection.end_ns <= head_effective:
                self._stall_to_wall(detection.end_ns, StallBucket.CHECKER_WAIT)
                self._handle_detection(detection)
                return True
            self._stall_to_wall(head_effective, StallBucket.CHECKER_WAIT)
            self._process_commits(head_effective)
        return False

    def _drain(self) -> bool:
        """Resolve all outstanding checks; True if a rollback re-opened work.

        Clean commits do not stall the (already finished) main core: the
        application completed at ``main_done_ns`` and checking merely
        lags.  Only a detection re-engages the main core, extending the
        run with recovery and re-execution.
        """
        while self._pending:
            detection = self._next_detection()
            head = self._pending[0]
            head_effective = max(head.end_ns, self._last_commit_ns)
            if detection is not None and detection.end_ns <= head_effective:
                self._stall_to_wall(detection.end_ns, StallBucket.DRAIN)
                self._handle_detection(detection)
                return True
            self._last_commit_ns = head_effective
            self.tracker.release_through(head.segment.seq)
            self._pending.pop(0)
            self._segment_start_wall.pop(head.segment.seq, None)
            if self.guard is not None:
                self.guard.on_commit(head.segment.end_state.instret)
            if self.timeline is not None:
                self.timeline.record(
                    head_effective, EventKind.COMMIT, head.segment.seq
                )
            if self.tracer is not None:
                self.tracer.emit(
                    "engine",
                    "commit",
                    time_ns=head_effective,
                    segment=head.segment.seq,
                )
        if self.paranoid is not None:
            self.paranoid.on_commit(self)
        return False
