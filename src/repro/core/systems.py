"""The four system design points evaluated in the paper.

* :class:`BaselineSystem` — an unprotected commodity core with standard
  voltage margins.  Every figure normalises against it (or against
  error-free ParaMedic, built from :class:`ParaMedicSystem`).
* :class:`DetectionOnlySystem` — Ainsworth & Jones' parallel error
  *detection* [8]: checker cores and logs, but no rollback storage and no
  unchecked-store buffering (figure 10's first bar).
* :class:`ParaMedicSystem` — full error *correction* [10]: word-granular
  rollback data, L1 buffering of unchecked stores, round-robin checker
  allocation, checkpoints grown to the 5,000-instruction cap.
* :class:`ParaDoxSystem` — this paper: AIMD checkpoint lengths with the
  clamp-to-observed rule, line-granularity rollback, lowest-free-ID
  checker scheduling with power gating, and (optionally) the dynamic
  voltage/frequency controller bound to the exponential error model.

Each ``run`` builds a fresh engine so systems are reusable and runs are
independent and deterministic given their seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

import numpy as np

from ..config import SystemConfig, table1_config
from ..faults.injector import FaultInjector, default_injector
from ..faults.voltage_model import VoltageErrorModel
from ..isa import MemoryImage, Program
from ..lslog.segment import RollbackGranularity
from ..resilience.guard import ResilienceConfig
from ..scheduling import SchedulingPolicy
from ..stats import RunResult
from .engine import EngineOptions, SimulationEngine


class WorkloadLike(Protocol):
    """Anything that can be simulated: a program plus its initial memory."""

    name: str
    program: Program

    def create_memory(self) -> MemoryImage:
        """Fresh initial memory image for one run."""
        ...

    @property
    def max_instructions(self) -> int:
        """Default useful-instruction budget."""
        ...


@dataclass
class System:
    """Common factory machinery; concrete systems pin the options."""

    config: SystemConfig = field(default_factory=table1_config)
    name: str = "system"
    #: Record a structured telemetry trace + metrics for every run built
    #: by this system (see :mod:`repro.telemetry`).  Off by default: the
    #: disabled path costs nothing.
    tracing: bool = False
    #: Assert engine bookkeeping invariants at segment granularity for
    #: every run built by this system (see
    #: :mod:`repro.oracle.invariants`).  Off by default, same zero-cost
    #: discipline as ``tracing``.
    paranoid: bool = False
    #: Run the main core through the compiled superblock tier
    #: (:mod:`repro.jit`).  On by default — results are bit-identical
    #: to interpretation and the differential oracle gates that; set
    #: False (CLI ``--no-jit``) to force the pure interpreter.
    jit: bool = True

    def _options(self) -> EngineOptions:
        raise NotImplementedError

    def _injector(self, seed: int) -> Optional[FaultInjector]:
        rate = self.config.fault.error_rate
        if rate <= 0:
            return None
        return default_injector(rate, seed=seed, target=self.config.fault.target)

    def engine(
        self,
        workload: WorkloadLike,
        seed: Optional[int] = None,
        injector: Optional[FaultInjector] = None,
        pool=None,
        main_id: int = 0,
    ) -> SimulationEngine:
        """Build a ready-to-run engine for ``workload``.

        ``pool``/``main_id`` inject a shared checker pool view when the
        engine is one producer of a multi-main-core system (see
        :mod:`repro.core.multicore`); left at their defaults the engine
        builds its own private pool.
        """
        seed = self.config.fault.seed if seed is None else seed
        if injector is None:
            injector = self._injector(seed)
        options = self._options()
        if self.tracing:
            options.tracing = True
        if self.paranoid:
            options.paranoid = True
        if not self.jit:
            options.jit = False
        return SimulationEngine(
            workload.program,
            self.config,
            options,
            injector=injector,
            memory=workload.create_memory(),
            system_name=self.name,
            rng=np.random.default_rng(seed),
            pool=pool,
            main_id=main_id,
        )

    def run(
        self,
        workload: WorkloadLike,
        max_instructions: Optional[int] = None,
        seed: Optional[int] = None,
        injector: Optional[FaultInjector] = None,
    ) -> RunResult:
        """Simulate ``workload`` to completion (or its instruction budget)."""
        engine = self.engine(workload, seed=seed, injector=injector)
        budget = max_instructions if max_instructions is not None else workload.max_instructions
        return engine.run(budget)


@dataclass
class BaselineSystem(System):
    """Unprotected, margined commodity core: no checkers at all."""

    name: str = "baseline"

    def _options(self) -> EngineOptions:
        return EngineOptions(checking=False)

    def _injector(self, seed: int) -> Optional[FaultInjector]:
        return None  # a margined baseline is assumed error-free


@dataclass
class DetectionOnlySystem(System):
    """Heterogeneous parallel error detection [8] (no correction)."""

    name: str = "detection-only"

    def _options(self) -> EngineOptions:
        return EngineOptions(
            granularity=RollbackGranularity.NONE,
            scheduling=SchedulingPolicy.ROUND_ROBIN,
            adaptive_checkpoints=False,
        )

    def _injector(self, seed: int) -> Optional[FaultInjector]:
        return None  # detection-only cannot recover; evaluated error-free


@dataclass
class ParaMedicSystem(System):
    """ParaMedic [10]: full correction, tuned for scarce errors."""

    name: str = "paramedic"

    def _options(self) -> EngineOptions:
        return EngineOptions(
            granularity=RollbackGranularity.WORD,
            scheduling=SchedulingPolicy.ROUND_ROBIN,
            adaptive_checkpoints=False,
        )


@dataclass
class ParaDoxSystem(System):
    """ParaDox: error-seeking fault tolerance (this paper)."""

    name: str = "paradox"
    #: Enable the dynamic voltage/frequency controller (section IV-B).
    dvs: bool = False
    #: Voltage-to-error-rate coupling used when ``dvs`` is on.
    voltage_model: Optional[VoltageErrorModel] = None
    #: Figure 11's comparator: constant- instead of dynamic-decrease.
    dynamic_voltage_decrease: bool = True
    #: Enable the resilience layer (forward-progress guard + checker
    #: quarantine) with default thresholds.
    resilient: bool = False
    #: Explicit resilience thresholds; implies ``resilient``.
    resilience: Optional[ResilienceConfig] = None

    def _options(self) -> EngineOptions:
        model = self.voltage_model
        if self.dvs and model is None:
            model = VoltageErrorModel.itanium_9560()
        resilience = self.resilience
        if resilience is None and self.resilient:
            resilience = ResilienceConfig()
        return EngineOptions(
            granularity=RollbackGranularity.LINE,
            scheduling=SchedulingPolicy.LOWEST_FREE_ID,
            adaptive_checkpoints=True,
            dvs=self.dvs,
            voltage_model=model,
            dynamic_voltage_decrease=self.dynamic_voltage_decrease,
            resilience=resilience,
        )

    def _injector(self, seed: int) -> Optional[FaultInjector]:
        if self.dvs:
            # Rate follows voltage; start from the model's nominal rate.
            model = self.voltage_model or VoltageErrorModel.itanium_9560()
            injector = default_injector(
                model.rate(self.config.dvfs.safe_voltage),
                seed=seed,
                target=self.config.fault.target,
            )
            return injector
        return super()._injector(seed)
