"""Closed-form overhead model (the figure 4 anatomy, analytically).

Figure 4 decomposes one error's cost: execution proceeds from the start
of the faulty segment until the (lagging) checker reaches the faulty
instruction, all of which is wasted and re-run, plus the rollback walk.
This module turns that picture into formulas, used two ways:

* as an independent oracle the test suite checks the simulator against
  (shape agreement within a factor, not calibration);
* to answer "what checkpoint length minimises overhead at error rate p?"
  — the question ParaDox's AIMD controller answers adaptively, solved
  here in closed form for the steady state.

Model, per segment of length ``n`` instructions:

* fill time      ``n * t_fill``      (main-core seconds per instruction)
* check time     ``n * t_check``     (checker seconds per instruction)
* detection lag  ``L(n) ~= n * t_fill + w + i * t_check`` for an error at
  instruction ``i`` (uniform in [1, n] -> expectation n * t_check / 2),
  where ``w`` is the dispatch wait (0 with free checkers)
* per-error waste  ``W(n) ~= n * t_fill + n * t_check / 2`` plus rollback
* errors per segment ``~ p_eff * n`` (small-probability regime)

Expected overhead per useful instruction:

    V(n, p) = c_ckpt / n + p * (t_fill + t_check / 2) * n * r(n, p)

where ``c_ckpt`` is the fixed checkpoint cost and ``r`` accounts for
re-run attempts failing again (geometric): ``r = 1 / (1 - p n (...))``
diverging as ``p * n`` approaches the livelock region — exactly
ParaMedic's figure 8 cliff.  Minimising over ``n`` gives the classic
square-root checkpoint-interval law (Young/Daly for this architecture).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import SystemConfig, table1_config


@dataclass(frozen=True)
class OverheadParameters:
    """Calibration constants extracted from a system configuration."""

    #: Main-core seconds per instruction (1 / (IPC * f)).
    t_fill: float
    #: Checker seconds per instruction (1 / (IPC_checker * f_checker)).
    t_check: float
    #: Fixed checkpoint cost in seconds (16-cycle commit block).
    c_checkpoint: float

    @classmethod
    def from_config(
        cls,
        config: SystemConfig = None,
        main_ipc: float = 2.0,
        checker_ipc: float = 0.9,
    ) -> "OverheadParameters":
        config = config or table1_config()
        return cls(
            t_fill=1.0 / (main_ipc * config.main_core.frequency_hz),
            t_check=1.0 / (checker_ipc * config.checker.frequency_hz),
            c_checkpoint=(
                config.main_core.register_checkpoint_cycles
                / config.main_core.frequency_hz
            ),
        )


def expected_waste_per_error(n: int, params: OverheadParameters) -> float:
    """Mean wasted-execution seconds for one error in an ``n``-long segment.

    Fill of the segment plus half the check (uniform error position),
    figure 4's "Re-run" span in expectation.
    """
    if n <= 0:
        raise ValueError("segment length must be positive")
    return n * params.t_fill + 0.5 * n * params.t_check


def rerun_inflation(n: int, p: float) -> float:
    """Expected attempts per segment when each retry can fail again.

    A segment of ``n`` instructions survives checking with probability
    ``(1 - p)^n``; attempts are geometric.  Returns infinity in the
    livelock regime (success probability ~ 0).
    """
    if not 0 <= p <= 1:
        raise ValueError("p must be a probability")
    survive = (1.0 - p) ** n
    if survive <= 0.0:
        return math.inf
    return 1.0 / survive


def overhead_per_instruction(n: int, p: float, params: OverheadParameters) -> float:
    """Expected extra seconds per useful instruction at segment length n.

    Checkpoint cost amortised over the segment, plus error recovery:
    expected failures per successful attempt times the waste each costs,
    amortised the same way.
    """
    attempts = rerun_inflation(n, p)
    if math.isinf(attempts):
        return math.inf
    failures = attempts - 1.0
    waste = expected_waste_per_error(n, params)
    return params.c_checkpoint / n + failures * waste / n


def optimal_segment_length(
    p: float,
    params: OverheadParameters,
    n_min: int = 10,
    n_max: int = 5000,
) -> int:
    """Segment length minimising :func:`overhead_per_instruction`.

    For small ``p`` this follows the Young/Daly square-root law
    ``n* ~ sqrt(c_ckpt / (p * (t_fill + t_check / 2)))``, capped by the
    architecture's bounds — the operating point ParaDox's AIMD controller
    hunts for dynamically.
    """
    if p <= 0:
        return n_max
    best_n, best_v = n_min, math.inf
    n = n_min
    while n <= n_max:
        value = overhead_per_instruction(n, p, params)
        if value < best_v:
            best_n, best_v = n, value
        n = max(n + 1, int(n * 1.1))
    return best_n


def young_daly_length(p: float, params: OverheadParameters) -> float:
    """The closed-form square-root approximation of the optimum."""
    if p <= 0:
        raise ValueError("p must be positive")
    per_inst_waste = params.t_fill + 0.5 * params.t_check
    return math.sqrt(params.c_checkpoint / (p * per_inst_waste))


def predicted_slowdown(
    n: int, p: float, params: OverheadParameters
) -> float:
    """Wall-time inflation factor vs error-free execution at length n."""
    base = params.t_fill
    extra = overhead_per_instruction(n, p, params)
    if math.isinf(extra):
        return math.inf
    return (base + extra) / base


def livelock_rate(n: int, survival_floor: float = 0.02) -> float:
    """Error rate above which an ``n``-long segment rarely survives.

    ``(1-p)^n < survival_floor``  =>  ``p > 1 - survival_floor^(1/n)``.
    ParaMedic with its 5,000-instruction checkpoints crosses this around
    p ~ 8e-4; ParaDox shrinks ``n`` to stay below it.
    """
    if n <= 0:
        raise ValueError("segment length must be positive")
    return 1.0 - survival_floor ** (1.0 / n)
