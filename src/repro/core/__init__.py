"""The primary contribution: ParaDox (and its comparison systems).

This package assembles every substrate — ISA, cores, memory hierarchy,
load-store log, checkpointing, scheduling, fault injection and DVFS —
into runnable systems.
"""

from .analysis import (
    OverheadParameters,
    expected_waste_per_error,
    livelock_rate,
    optimal_segment_length,
    overhead_per_instruction,
    predicted_slowdown,
    rerun_inflation,
    young_daly_length,
)
from ..resilience.guard import (
    ForwardProgressDiagnostics,
    ForwardProgressFailure,
    ResilienceConfig,
)
from .engine import EngineOptions, LivelockError, PendingCheck, SimulationEngine
from .multicore import CoreSpec, MulticoreEngine, MulticoreResult, run_multicore
from .systems import (
    BaselineSystem,
    DetectionOnlySystem,
    ParaDoxSystem,
    ParaMedicSystem,
    System,
    WorkloadLike,
)

__all__ = [
    "BaselineSystem",
    "CoreSpec",
    "MulticoreEngine",
    "MulticoreResult",
    "run_multicore",
    "DetectionOnlySystem",
    "EngineOptions",
    "ForwardProgressDiagnostics",
    "ForwardProgressFailure",
    "LivelockError",
    "OverheadParameters",
    "ResilienceConfig",
    "ParaDoxSystem",
    "ParaMedicSystem",
    "PendingCheck",
    "SimulationEngine",
    "System",
    "WorkloadLike",
    "expected_waste_per_error",
    "livelock_rate",
    "optimal_segment_length",
    "overhead_per_instruction",
    "predicted_slowdown",
    "rerun_inflation",
    "young_daly_length",
]
