"""Multi-main-core ParaDox: M producers sharing one checker pool.

The single-core engine is untouched — each main core is one
:class:`~repro.core.engine.SimulationEngine` running its own program,
log segments, checkpoints, DVFS controller, and fault injector.  What
changes is the checker pool: all engines schedule through per-main
:class:`~repro.scheduling.shared.SharedPoolView` facades over one
:class:`~repro.scheduling.shared.SharedCheckerPool`, so a core waiting
on a checker another core occupies shows up as a checker-wait stall in
its own timeline.

Execution is a conservative discrete-event co-simulation: one OS thread
per engine, with every pool interaction gated through the shared pool's
turnstile so interactions execute in globally sorted simulated-time
order regardless of OS scheduling.  Results are therefore deterministic
— the same specs and seed produce bit-identical
:class:`MulticoreResult`\\ s on every run.

Asymmetric scenarios fall out of the per-core spec: each
:class:`CoreSpec` may carry its own :class:`~repro.core.systems.System`
(and hence its own voltage configuration, error model, and injector),
so a near-threshold core can share the pool with a nominal-voltage one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..parallel import derive_seed
from ..scheduling.shared import (
    DEFAULT_POOL_POLICY,
    PoolPolicy,
    SharedCheckerPool,
)
from ..stats import RunResult
from ..stats.fairness import FairnessReport
from .systems import ParaDoxSystem, System, WorkloadLike


@dataclass
class CoreSpec:
    """One main core of a multi-main system."""

    workload: WorkloadLike
    #: System design point for this core; defaults to the harness-wide
    #: default (a plain ParaDox core).  Per-core systems give asymmetric
    #: scenarios: different voltage configs, error models, injectors.
    system: Optional[System] = None
    #: Fault seed; derived from the harness seed and main id when None.
    seed: Optional[int] = None
    #: Explicit injector; built by the core's system when None.
    injector: Optional[Any] = None
    #: Useful-instruction budget; the workload's default when None.
    max_instructions: Optional[int] = None


@dataclass
class MulticoreResult:
    """Outcome of one multi-main-core run."""

    results: List[RunResult]
    fairness: FairnessReport
    policy: PoolPolicy
    pool_size: int
    boot_offset: int
    #: Wall time of the slowest main core.
    wall_ns: float
    #: Multicore-source telemetry events (compact dicts), present only
    #: when the harness was traced.
    trace: Optional[List[Dict]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical summary (deterministic, JSON-serializable)."""
        return {
            "policy": self.policy.value,
            "pool_size": self.pool_size,
            "boot_offset": self.boot_offset,
            "wall_ns": self.wall_ns,
            "fairness": self.fairness.to_dict(),
            "cores": [
                {
                    "main_id": i,
                    "workload": r.workload,
                    "system": r.system,
                    "outcome": r.outcome.value,
                    "wall_ns": r.wall_ns,
                    "instructions": r.instructions,
                    "segments": r.segments,
                    "checker_wait_ns": r.stalls.checker_wait_ns,
                    "recoveries": len(r.recoveries),
                }
                for i, r in enumerate(self.results)
            ],
        }

    def summary(self) -> str:
        lines = [
            f"policy={self.policy.value} pool={self.pool_size} "
            f"boot_offset={self.boot_offset} wall={self.wall_ns:.0f}ns "
            f"wait_gini={self.fairness.wait_gini:.3f}"
        ]
        for i, r in enumerate(self.results):
            share = self.fairness.dispatch_share[i]
            lines.append(
                f"  main{i} {r.workload:>12s}: wall={r.wall_ns:.0f}ns "
                f"wait={r.stalls.checker_wait_ns:.0f}ns "
                f"dispatch_share={share:.3f}"
            )
        return "\n".join(lines)


def run_shared_engines(
    engines: Sequence[Any],
    pool: SharedCheckerPool,
    budgets: Sequence[int],
) -> List[RunResult]:
    """Run pre-built engines to completion on one shared pool.

    One OS thread per engine; the pool's turnstile serializes every
    shared-pool interaction into global simulated-time order, so the
    outcome is deterministic.  The first engine error (by main id) is
    re-raised on the calling thread.
    """
    n = len(engines)
    results: List[Optional[RunResult]] = [None] * n
    errors: List[Optional[BaseException]] = [None] * n
    turnstile = pool.turnstile

    def worker(main_id: int) -> None:
        try:
            results[main_id] = engines[main_id].run(budgets[main_id])
        except BaseException as exc:  # re-raised on the caller thread
            errors[main_id] = exc
        finally:
            # Permanently retire this main from arbitration so the
            # others never wait on a finished (or dead) producer.
            turnstile.finish(main_id)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"main-{i}", daemon=True)
        for i in range(n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for exc in errors:
        if exc is not None:
            raise exc
    finished = [r for r in results if r is not None]
    assert len(finished) == n
    return finished


class MulticoreEngine:
    """Build and run M engines against one shared checker pool."""

    def __init__(
        self,
        specs: Sequence[CoreSpec],
        policy: PoolPolicy = DEFAULT_POOL_POLICY,
        pool_size: Optional[int] = None,
        seed: int = 0,
        boot_offset: Optional[int] = None,
        default_system: Optional[System] = None,
        tracing: bool = False,
    ) -> None:
        if not specs:
            raise ValueError("a multicore engine needs at least one main core")
        self.specs = list(specs)
        self.policy = policy
        self.seed = seed
        self.tracing = tracing
        self._default_system = default_system
        systems = [
            spec.system
            if spec.system is not None
            else (default_system if default_system is not None else ParaDoxSystem())
            for spec in self.specs
        ]
        self.systems: List[System] = systems
        size = pool_size if pool_size is not None else systems[0].config.checker.count
        if boot_offset is None:
            # The anti-ageing rotation is a harness-level draw: the pool
            # is one physical structure, not M private ones.
            rng = np.random.default_rng(derive_seed(seed, "mc-boot"))
            boot_offset = int(rng.integers(size))
        self.pool = SharedCheckerPool(
            len(self.specs), size, policy=policy, boot_offset=boot_offset
        )
        self.engines = []
        for main_id, (spec, system) in enumerate(zip(self.specs, systems)):
            run_seed = (
                spec.seed
                if spec.seed is not None
                else derive_seed(seed, "mc", main_id)
            )
            view = self.pool.view(
                main_id, system.config.checker, spec.workload.program
            )
            engine = system.engine(
                spec.workload,
                seed=run_seed,
                injector=spec.injector,
                pool=view,
                main_id=main_id,
            )
            if engine.pool is not view:
                raise ValueError(
                    f"system {system.name!r} does not check (checking=False); "
                    "every main core of a shared pool must dispatch segments"
                )
            self.engines.append(engine)

    def run(self) -> MulticoreResult:
        """Run every main core to completion; deterministic."""
        budgets = [
            spec.max_instructions
            if spec.max_instructions is not None
            else spec.workload.max_instructions
            for spec in self.specs
        ]
        finished = run_shared_engines(self.engines, self.pool, budgets)
        wall_ns = max(r.wall_ns for r in finished)
        fairness = FairnessReport.from_pool(self.pool, wall_ns)
        trace = (
            fairness_trace_events(
                finished, fairness, wall_ns, seed=self.seed, policy=self.policy
            )
            if self.tracing
            else None
        )
        return MulticoreResult(
            results=finished,
            fairness=fairness,
            policy=self.policy,
            pool_size=len(self.pool),
            boot_offset=self.pool.boot_offset,
            wall_ns=wall_ns,
            trace=trace,
        )



def fairness_trace_events(
    results: Sequence[RunResult],
    fairness: FairnessReport,
    wall_ns: float,
    seed: int = 0,
    policy: PoolPolicy = DEFAULT_POOL_POLICY,
) -> List[Dict]:
    """Multicore-source telemetry events for the JSONL exporters."""
    from ..telemetry import Tracer

    tracer = Tracer(
        system="multicore",
        workload="+".join(r.workload for r in results),
        seed=seed,
        policy=policy.value,
    )
    for main_id, result in enumerate(results):
        tracer.emit(
            "multicore",
            "core_done",
            time_ns=result.wall_ns,
            core=main_id,
            value=result.wall_ns,
            detail=result.workload,
        )
    for main_id in range(len(results)):
        tracer.emit(
            "multicore",
            "dispatch_share",
            time_ns=wall_ns,
            core=main_id,
            value=fairness.dispatch_share[main_id],
        )
        tracer.emit(
            "multicore",
            "busy_share",
            time_ns=wall_ns,
            core=main_id,
            value=fairness.busy_share[main_id],
        )
        tracer.emit(
            "multicore",
            "wait_ns",
            time_ns=wall_ns,
            core=main_id,
            value=fairness.wait_ns[main_id],
        )
    tracer.emit("multicore", "wait_gini", time_ns=wall_ns, value=fairness.wait_gini)
    return [event.to_dict() for event in tracer.events]


def run_multicore(
    workloads: Sequence[WorkloadLike],
    system: Optional[System] = None,
    policy: PoolPolicy = DEFAULT_POOL_POLICY,
    pool_size: Optional[int] = None,
    seed: int = 0,
    max_instructions: Optional[int] = None,
    tracing: bool = False,
) -> MulticoreResult:
    """Convenience wrapper: one workload per main core, one shared system."""
    specs = [
        CoreSpec(workload=w, max_instructions=max_instructions) for w in workloads
    ]
    harness = MulticoreEngine(
        specs,
        policy=policy,
        pool_size=pool_size,
        seed=seed,
        default_system=system,
        tracing=tracing,
    )
    return harness.run()
