"""Checkpoint-length adaptation (section IV-A).

ParaMedic assumes errors are rare and lets checkpoints grow large; its
length policy here is additive growth to the 5,000-instruction cap (at
which "checkpointing cost is negligible") with no reaction to errors.

ParaDox reacts: AIMD over the *target instruction window* —

* additive increase of 10 per error-free checkpoint ("to allow a steady
  increase under a phase change"),
* halving on an observed error,
* and, because halving alone reacts too slowly to phase changes, the new
  target after any reduction (error *or* an unchecked-line eviction
  attempt) is ``min(target / 2, observed length of the previous
  checkpoint)`` — the observed length may already be small due to log
  capacity, an early error, or an eviction attempt.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..config import CheckpointConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry import Tracer


class LengthEvent(enum.Enum):
    """What ended / was observed at a checkpoint boundary."""

    CLEAN = "clean"  # checkpoint closed, no error attributed
    ERROR = "error"  # an error was detected in a checkpoint
    EVICTION = "eviction"  # an unchecked-line eviction attempt occurred


@dataclass
class LengthControllerStats:
    increases: int = 0
    decreases: int = 0
    at_cap: int = 0


class CheckpointLengthController:
    """AIMD target-length controller shared by both designs.

    ``adaptive=False`` reproduces ParaMedic (grow only); ``adaptive=True``
    is ParaDox, including the clamp-to-observed rule when the config
    enables it.
    """

    def __init__(self, config: CheckpointConfig, adaptive: bool = True) -> None:
        self.config = config
        self.adaptive = adaptive
        self._target = float(config.initial_instructions)
        self._last_observed: int = config.initial_instructions
        self.stats = LengthControllerStats()
        #: Telemetry bus (set by the engine when tracing is enabled).
        self.tracer: Optional["Tracer"] = None

    @property
    def target(self) -> int:
        """Current target checkpoint length in instructions."""
        return int(self._target)

    def observe(self, observed_length: int, event: LengthEvent) -> int:
        """Record a closed checkpoint; returns the new target."""
        config = self.config
        if event is LengthEvent.CLEAN or not self.adaptive:
            self._target = min(
                self._target + config.additive_increase, float(config.max_instructions)
            )
            if self._target >= config.max_instructions:
                self.stats.at_cap += 1
            self.stats.increases += 1
        else:
            reduced = self._target * config.multiplicative_decrease
            if config.clamp_to_observed and observed_length > 0:
                reduced = min(reduced, float(observed_length))
            self._target = max(reduced, float(config.min_instructions))
            self.stats.decreases += 1
        if observed_length > 0:
            self._last_observed = observed_length
        if self.tracer is not None:
            self.tracer.emit(
                "checkpoint", "target", value=float(self.target), detail=event.value
            )
            self.tracer.metrics.observe("checkpoint.observed_length", observed_length)
        return self.target

    def force_minimum(self) -> int:
        """Forward-progress escalation: collapse the target to the floor.

        A rollback storm pinned at one checkpoint means every extra
        instruction in the window is wasted re-execution; the guard
        shrinks the window to the minimum in one step rather than waiting
        for repeated halvings to get there.
        """
        if self._target > float(self.config.min_instructions):
            self._target = float(self.config.min_instructions)
            self.stats.decreases += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "checkpoint",
                    "target",
                    value=float(self.target),
                    detail="force_minimum",
                )
        return self.target
