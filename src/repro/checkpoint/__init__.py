"""Checkpoint-length adaptation (AIMD, section IV-A)."""

from .controller import CheckpointLengthController, LengthControllerStats, LengthEvent

__all__ = ["CheckpointLengthController", "LengthControllerStats", "LengthEvent"]
