"""SPEC CPU2006 proxy workloads.

One synthetic profile per SPEC workload in figures 10, 12 and 13,
calibrated against the paper's own per-workload characterisation
(section VI-C/D/E):

* gobmk, povray, h264ref, omnetpp, xalancbmk "suffer from frequent misses
  in the checker cores' private instruction caches" — large code
  footprints (> 8 KiB of text).
* milc and cactusADM "suffer some overhead as a result of the
  checkpointing process" — store-heavy streaming that fills the log and
  closes checkpoints frequently.
* bwaves, sjeng and astar "only suffer significant overheads once
  ParaMedic and ParaDox's rollback buffering techniques come into play,
  due to a combination of conflict misses affecting the amount of state
  that can be buffered in the L1, and lack of storage space in the
  partitioned load-store logs for old cache-line data" — store streams
  biased into one L1 set, poor locality.
* bwaves, mcf and GemsFDTD "overcome the induced errors and have higher
  performance than ParaMedic, due to the locality from line-granularity
  rollback".
* gobmk, sjeng and h264ref "make use of all 16 checker cores in times of
  peak demand"; no workload averages more than eight.
* astar's conflict misses give it the worst EDP in figure 13.

The proxies are *behavioural* stand-ins, not SPEC semantics; they exist
so the figure harnesses can sweep the same 19-point x-axis with the same
qualitative spread.  DESIGN.md records this substitution.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Workload
from .synthetic import WorkloadProfile, build_synthetic

#: x-axis order of figures 10, 12 and 13.
SPEC_ORDER: List[str] = [
    "bzip2",
    "bwaves",
    "gcc",
    "mcf",
    "milc",
    "cactusADM",
    "leslie3d",
    "namd",
    "gobmk",
    "povray",
    "calculix",
    "sjeng",
    "GemsFDTD",
    "h264ref",
    "tonto",
    "lbm",
    "omnetpp",
    "astar",
    "xalancbmk",
]


def _p(name: str, **kwargs) -> WorkloadProfile:
    return WorkloadProfile(name=name, **kwargs)


#: The calibration table.  ``code_blocks * block_ops * ~2.4 * 4`` bytes
#: approximates the text footprint; 8 KiB of L0 I-cache holds ~850 slots.
SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        _p(
            "bzip2",
            alu=7, mul=0.4, load=2.2, store=1.2, random_branch=0.10,
            working_set_kib=256, sequential_fraction=0.75,
            code_blocks=6, block_ops=36, category="int",
            description="integer compression: mixed ALU with moderate stores",
        ),
        _p(
            "bwaves",
            alu=3, fp_alu=4, fp_mul=2.5, load=3.0, store=1.6,
            random_branch=0.02, working_set_kib=2048,
            sequential_fraction=0.88, conflict_store_fraction=0.008,
            code_blocks=6, block_ops=40, category="fp",
            description="FP streaming with set-conflicting store bursts",
        ),
        _p(
            "gcc",
            alu=7, mul=0.5, load=2.5, store=1.4, random_branch=0.14,
            working_set_kib=512, sequential_fraction=0.6,
            code_blocks=10, block_ops=36, category="int",
            description="pointer-rich integer code, moderate footprint",
        ),
        _p(
            "mcf",
            alu=4, load=4.0, store=0.8, random_branch=0.12,
            working_set_kib=4096, sequential_fraction=0.12,
            code_blocks=4, block_ops=32, category="int",
            description="pointer chasing over a huge working set (DRAM-bound)",
        ),
        _p(
            "milc",
            alu=2.5, fp_alu=3.5, fp_mul=3.0, load=2.8, store=2.4,
            random_branch=0.02, working_set_kib=1024,
            sequential_fraction=0.85,
            code_blocks=5, block_ops=36, category="fp",
            description="lattice QCD proxy: store-heavy, checkpoint-bound",
        ),
        _p(
            "cactusADM",
            alu=2.5, fp_alu=4.0, fp_mul=2.5, load=2.6, store=2.6,
            random_branch=0.02, working_set_kib=1024,
            sequential_fraction=0.9,
            code_blocks=5, block_ops=40, category="fp",
            description="stencil proxy: store-heavy, checkpoint-bound",
        ),
        _p(
            "leslie3d",
            alu=3, fp_alu=4, fp_mul=2, load=2.6, store=1.4,
            random_branch=0.03, working_set_kib=1024,
            sequential_fraction=0.85,
            code_blocks=6, block_ops=36, category="fp",
            description="FP streaming, moderate stores",
        ),
        _p(
            "namd",
            alu=3, fp_alu=5, fp_mul=3, fp_div=0.15, load=2.0, store=0.8,
            random_branch=0.03, working_set_kib=128,
            sequential_fraction=0.7,
            code_blocks=6, block_ops=36, category="fp",
            description="molecular dynamics proxy: compute-bound FP",
        ),
        _p(
            "gobmk",
            alu=6, mul=0.5, div=0.1, load=2.4, store=1.0, random_branch=0.20,
            working_set_kib=256, sequential_fraction=0.5,
            code_blocks=26, block_ops=44, category="int",
            description="game tree proxy: big code footprint, branchy",
        ),
        _p(
            "povray",
            alu=3, fp_alu=4, fp_mul=2.5, fp_div=0.2, load=2.2, store=0.9,
            random_branch=0.10, working_set_kib=128,
            sequential_fraction=0.55,
            code_blocks=26, block_ops=44, category="fp",
            description="ray tracing proxy: big code footprint, FP divides",
        ),
        _p(
            "calculix",
            alu=3.5, fp_alu=4, fp_mul=2, load=2.4, store=1.2,
            random_branch=0.05, working_set_kib=512,
            sequential_fraction=0.75,
            code_blocks=8, block_ops=36, category="fp",
            description="FEM proxy: mixed FP/int",
        ),
        _p(
            "sjeng",
            alu=6.5, mul=0.4, div=0.08, load=2.4, store=1.2, random_branch=0.18,
            working_set_kib=512, sequential_fraction=0.4,
            conflict_store_fraction=0.03,
            code_blocks=16, block_ops=40, category="int",
            description="chess proxy: branchy, conflict-prone stores",
        ),
        _p(
            "GemsFDTD",
            alu=2.5, fp_alu=4.5, fp_mul=2.5, load=3.0, store=1.8,
            random_branch=0.02, working_set_kib=2048,
            sequential_fraction=0.9,
            code_blocks=6, block_ops=40, category="fp",
            description="FDTD proxy: FP streaming, high locality",
        ),
        _p(
            "h264ref",
            alu=6, mul=1.2, load=2.6, store=1.4, random_branch=0.12,
            working_set_kib=256, sequential_fraction=0.7,
            code_blocks=22, block_ops=44, category="int",
            description="video encoder proxy: big code footprint, MAC-heavy",
        ),
        _p(
            "tonto",
            alu=3, fp_alu=4, fp_mul=2.5, load=2.2, store=1.0,
            random_branch=0.04, working_set_kib=256,
            sequential_fraction=0.7,
            code_blocks=8, block_ops=36, category="fp",
            description="quantum chemistry proxy",
        ),
        _p(
            "lbm",
            alu=2, fp_alu=4, fp_mul=2.5, load=3.0, store=2.4,
            random_branch=0.01, working_set_kib=2048,
            sequential_fraction=0.95,
            code_blocks=4, block_ops=40, category="fp",
            description="lattice Boltzmann proxy: pure streaming, store-heavy",
        ),
        _p(
            "omnetpp",
            alu=6, mul=0.4, load=2.8, store=1.2, random_branch=0.15,
            working_set_kib=1024, sequential_fraction=0.3,
            code_blocks=18, block_ops=42, category="int",
            description="discrete-event proxy: big footprint, random access",
        ),
        _p(
            "astar",
            alu=5, load=3.2, store=1.6, random_branch=0.14,
            working_set_kib=1024, sequential_fraction=0.25,
            conflict_store_fraction=0.03,
            code_blocks=6, block_ops=36, category="int",
            description="path-finding proxy: conflict-missing buffered stores",
        ),
        _p(
            "xalancbmk",
            alu=6.5, mul=0.3, load=2.8, store=1.1, random_branch=0.16,
            working_set_kib=512, sequential_fraction=0.45,
            code_blocks=24, block_ops=42, category="int",
            description="XSLT proxy: biggest code footprint, branchy",
        ),
    ]
}

assert list(SPEC_PROFILES) == SPEC_ORDER, "profile table must match figure order"


def build_spec_workload(
    name: str, iterations: int = 20, seed: int = 1
) -> Workload:
    """Build the proxy for one SPEC workload by name."""
    try:
        profile = SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC workload {name!r}; choose from {SPEC_ORDER}"
        ) from None
    return build_synthetic(profile, iterations=iterations, seed=seed)


def build_spec_suite(iterations: int = 20, seed: int = 1) -> "list[Workload]":
    """All nineteen proxies in figure order."""
    return [build_spec_workload(name, iterations, seed) for name in SPEC_ORDER]
