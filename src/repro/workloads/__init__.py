"""Workloads: bitcount, STREAM, and SPEC CPU2006 proxies."""

from .base import GoldenResult, Workload, golden_run
from .bitcount import build_bitcount, expected_popcount_total
from .kernels import (
    build_crc32,
    build_matmul,
    build_quicksort,
    crc32_reference,
    matmul_reference,
    quicksort_reference,
)
from .spec import SPEC_ORDER, SPEC_PROFILES, build_spec_suite, build_spec_workload
from .stream import build_stream, expected_stream
from .synthetic import WorkloadProfile, build_synthetic

__all__ = [
    "GoldenResult",
    "SPEC_ORDER",
    "SPEC_PROFILES",
    "Workload",
    "WorkloadProfile",
    "build_bitcount",
    "build_crc32",
    "build_matmul",
    "build_quicksort",
    "build_spec_suite",
    "build_spec_workload",
    "build_stream",
    "build_synthetic",
    "crc32_reference",
    "expected_popcount_total",
    "expected_stream",
    "golden_run",
    "matmul_reference",
    "quicksort_reference",
]
