"""Workload abstraction.

A :class:`Workload` couples a program with its initial memory image and a
default useful-instruction budget.  ``create_memory()`` returns a *fresh*
image per run, so repeated simulations are independent.

:func:`golden_run` executes a workload functionally (no timing, no
checking, no faults) and returns the reference final state — the oracle
for every correctness test: whatever the fault schedule, a ParaMedic or
ParaDox run must end in exactly this state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..isa import ArchState, Executor, MemoryImage, Program


@dataclass
class Workload:
    """A runnable benchmark: program + initial data + budget."""

    name: str
    program: Program
    #: Initial memory contents, word address -> 64-bit value.
    initial_words: Dict[int, int] = field(default_factory=dict)
    #: Default cap on useful (committed) instructions per run.
    max_instructions: int = 1_000_000
    #: "compute", "memory", or "mixed" — documentation only.
    category: str = "mixed"
    #: Free-form description shown by the experiment harnesses.
    description: str = ""

    def create_memory(self) -> MemoryImage:
        memory = MemoryImage()
        memory.preload(self.initial_words)
        return memory


@dataclass
class GoldenResult:
    """Reference outcome of a functional run."""

    state: ArchState
    memory: MemoryImage
    instructions: int
    output: List[Tuple[int, str]]


def golden_run(
    workload: Workload, max_instructions: int = 0, jit: bool = False
) -> GoldenResult:
    """Run ``workload`` functionally to completion; the correctness oracle.

    ``jit=True`` runs through the compiled superblock tier instead of
    pure interpretation.  The default stays interpreted: golden runs are
    the reference the tier is checked *against*, so they must not share
    its execution path unless the caller explicitly opts in (benchmarks
    and the equivalence tests do).
    """
    budget = max_instructions or workload.max_instructions
    memory = workload.create_memory()
    state = ArchState()
    executor = Executor(workload.program, state, memory)
    if jit:
        executor.attach_jit()
    retired = executor.run(budget)
    return GoldenResult(state, memory, retired, list(state.output))
