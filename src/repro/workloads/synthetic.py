"""Parameterised synthetic workload generator.

SPEC CPU2006 cannot ship with an offline reproduction, so each SPEC
workload in the evaluation is represented by a *proxy*: a generated
program whose instruction mix, working-set size, memory-access pattern,
branch predictability and code footprint are tuned to the behaviour the
paper itself reports for that workload (see :mod:`repro.workloads.spec`
for the per-workload calibration table).  The proxies exercise exactly
the same simulator code paths — segment filling, log capacity, checker
I-cache pressure, unchecked-line conflicts — that drive figures 10-13.

A profile generates a program of this shape::

    init registers
    main_loop:
        call block_0; call block_1; ...; call block_{B-1}
        decrement iteration counter, loop
    store checksums, print, halt
    block_i: <block_ops weighted-random operations> ret

The number of distinct blocks times their size sets the text footprint
(checker I-cache behaviour); the per-slot operation weights set the mix;
loads/stores walk the working set sequentially, pseudo-randomly (an LCG
in registers), or — for store-conflict workloads — at a stride that maps
every store to the same L1 set, forcing unchecked-line conflicts.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..isa import ProgramBuilder, Syscall
from .base import Workload

DATA_BASE = 0x100000
RESULT_BASE = 0x8000

#: Scratch register pools used inside generated blocks.
INT_SCRATCH = (1, 2, 3, 4, 5, 6, 7)
FP_SCRATCH = (1, 2, 3, 4, 5, 6, 7)

# Dedicated registers (never scratch):
R_LCG = 8  # pseudo-random state
R_ITER = 9  # main-loop counter
R_SEQ = 23  # sequential offset
R_CONFLICT = 24  # conflict-stride offset
R_BASE = 20  # data base address
R_MASK = 21  # working-set byte mask
R_ADDR = 25  # computed address
R_CHECK = 13  # integer checksum accumulator

LCG_MUL = 6364136223846793005
LCG_ADD = 1442695040888963407


@dataclass(frozen=True)
class WorkloadProfile:
    """Tunable characteristics of one synthetic workload."""

    name: str
    #: Relative operation weights within a block.
    alu: float = 6.0
    mul: float = 0.5
    div: float = 0.0
    fp_alu: float = 0.0
    fp_mul: float = 0.0
    fp_div: float = 0.0
    load: float = 2.0
    store: float = 1.0
    #: Probability that a generated slot is a data-dependent (random)
    #: conditional branch over the next couple of ops.
    random_branch: float = 0.05
    #: Working set (must be a power of two KiB).
    working_set_kib: int = 256
    #: Fraction of accesses that walk sequentially (rest use the LCG).
    sequential_fraction: float = 0.7
    #: When set, stores additionally cycle at this byte stride, mapping
    #: into one L1 set (conflict-miss behaviour of astar/bwaves/sjeng).
    conflict_store_fraction: float = 0.0
    #: Distinct block subroutines (text footprint driver).
    code_blocks: int = 8
    #: Operation slots per block.
    block_ops: int = 32
    category: str = "mixed"
    description: str = ""

    def weights(self) -> Dict[str, float]:
        return {
            "alu": self.alu,
            "mul": self.mul,
            "div": self.div,
            "fp_alu": self.fp_alu,
            "fp_mul": self.fp_mul,
            "fp_div": self.fp_div,
            "load": self.load,
            "store": self.store,
        }


@dataclass
class _BlockEmitter:
    """Emits one weighted-random operation slot at a time."""

    builder: ProgramBuilder
    profile: WorkloadProfile
    rng: random.Random
    label_prefix: str
    _label_counter: int = 0
    emitted: int = field(default=0)

    def _fresh_label(self) -> str:
        self._label_counter += 1
        return f".{self.label_prefix}_{self._label_counter}"

    def _pick2(self, pool) -> "tuple[int, int]":
        return self.rng.choice(pool), self.rng.choice(pool)

    def emit_address(self, for_store: bool) -> None:
        """Leave a valid working-set address in R_ADDR."""
        b = self.builder
        p = self.profile
        if for_store and self.rng.random() < p.conflict_store_fraction:
            # Stride through one cache set: 8 KiB stride = 128 sets x 64 B.
            b.addi(R_CONFLICT, R_CONFLICT, 8192)
            b.and_(R_CONFLICT, R_CONFLICT, R_MASK)
            b.add(R_ADDR, R_BASE, R_CONFLICT)
            return
        if self.rng.random() < p.sequential_fraction:
            b.addi(R_SEQ, R_SEQ, 8)
            b.and_(R_SEQ, R_SEQ, R_MASK)
            b.add(R_ADDR, R_BASE, R_SEQ)
        else:
            b.movi(R_ADDR, LCG_MUL)
            b.mul(R_LCG, R_LCG, R_ADDR)
            b.addi(R_LCG, R_LCG, LCG_ADD & 0x7FFFFFFF)
            b.lsri(R_ADDR, R_LCG, 17)
            b.lsli(R_ADDR, R_ADDR, 3)
            b.and_(R_ADDR, R_ADDR, R_MASK)
            b.add(R_ADDR, R_BASE, R_ADDR)

    def emit_slot(self) -> None:
        b = self.builder
        p = self.profile
        if self.rng.random() < p.random_branch:
            # Data-dependent branch: parity of a scratch register.
            src = self.rng.choice(INT_SCRATCH)
            skip = self._fresh_label()
            b.andi(R_ADDR, src, 1)
            b.cbnz(R_ADDR, skip)
            d, s = self._pick2(INT_SCRATCH)
            b.eor(d, d, s)
            b.label(skip)
            self.emitted += 1
            return
        kinds, weights = zip(*p.weights().items())
        kind = self.rng.choices(kinds, weights=weights)[0]
        if kind == "alu":
            d, s = self._pick2(INT_SCRATCH)
            op = self.rng.choice(("add", "sub", "eor", "orr"))
            getattr(b, {"add": "add", "sub": "sub", "eor": "eor", "orr": "orr"}[op])(
                d, d, s
            )
        elif kind == "mul":
            d, s = self._pick2(INT_SCRATCH)
            b.mul(d, d, s)
        elif kind == "div":
            d, s = self._pick2(INT_SCRATCH)
            b.orri(s, s, 1)  # force a non-zero divisor
            b.div(d, d, s)
        elif kind == "fp_alu":
            d, s = self._pick2(FP_SCRATCH)
            if self.rng.random() < 0.5:
                b.fadd(d, d, s)
            else:
                b.fsub(d, d, s)
        elif kind == "fp_mul":
            d, s = self._pick2(FP_SCRATCH)
            b.fmul(d, d, s)
        elif kind == "fp_div":
            d, s = self._pick2(FP_SCRATCH)
            b.fdiv(d, d, s)
        elif kind == "load":
            self.emit_address(for_store=False)
            if p.fp_alu + p.fp_mul + p.fp_div > 0 and self.rng.random() < 0.5:
                b.fldr(self.rng.choice(FP_SCRATCH), R_ADDR, 0)
            else:
                b.ldr(self.rng.choice(INT_SCRATCH), R_ADDR, 0)
        elif kind == "store":
            self.emit_address(for_store=True)
            src = self.rng.choice(INT_SCRATCH)
            b.add(R_CHECK, R_CHECK, src)
            b.str_(src, R_ADDR, 0)
        self.emitted += 1


def build_synthetic(
    profile: WorkloadProfile,
    iterations: int = 20,
    seed: int = 1,
) -> Workload:
    """Generate a :class:`Workload` from ``profile``."""
    ws_bytes = profile.working_set_kib * 1024
    if ws_bytes & (ws_bytes - 1):
        raise ValueError("working_set_kib must be a power of two")
    # zlib.crc32, not hash(): str hashing is randomised per process and
    # would make generated programs differ between runs.
    name_hash = zlib.crc32(profile.name.encode()) & 0xFFFF
    gen = random.Random((seed << 16) ^ name_hash)
    b = ProgramBuilder(profile.name)

    # -- init ------------------------------------------------------------------
    b.movi(R_BASE, DATA_BASE)
    b.movi(R_MASK, ws_bytes - 1)
    b.movi(R_LCG, seed * 2654435761 + 1)
    b.movi(R_SEQ, 0)
    b.movi(R_CONFLICT, 0)
    b.movi(R_CHECK, 0)
    b.movi(R_ITER, iterations)
    for reg in INT_SCRATCH:
        b.movi(reg, gen.randrange(1, 1 << 31))
    for reg in FP_SCRATCH:
        b.fmovi(reg, gen.uniform(0.5, 2.0))

    # -- main loop ----------------------------------------------------------------
    b.label("main_loop")
    for block in range(profile.code_blocks):
        b.call(f"block_{block}")
    b.subi(R_ITER, R_ITER, 1)
    b.cbnz(R_ITER, "main_loop")

    # -- epilogue ---------------------------------------------------------------------
    b.movi(R_ADDR, RESULT_BASE)
    b.str_(R_CHECK, R_ADDR, 0)
    b.mov(1, R_CHECK)
    b.syscall(Syscall.PRINT_INT)
    b.halt()

    # -- blocks ----------------------------------------------------------------------------
    for block in range(profile.code_blocks):
        b.label(f"block_{block}")
        emitter = _BlockEmitter(b, profile, gen, label_prefix=f"b{block}")
        while emitter.emitted < profile.block_ops:
            emitter.emit_slot()
        b.ret()

    program = b.build()

    # -- initial data -------------------------------------------------------------------------
    data_rng = np.random.default_rng(seed + 977)
    words = min(ws_bytes // 8, 1 << 16)  # cap the eagerly initialised region
    initial: Dict[int, int] = {
        DATA_BASE + i * 8: int(v)
        for i, v in enumerate(
            data_rng.integers(0, 2**63, size=words, dtype=np.int64)
        )
    }

    # Generous per-iteration estimate for the default budget: a slot can
    # expand to ~8 instructions (LCG address computation), plus call glue.
    # Programs halt on their own; budget slack is never executed.
    per_iteration = profile.code_blocks * (profile.block_ops * 5 + 8) + 8
    budget = per_iteration * iterations + 128
    return Workload(
        name=profile.name,
        program=program,
        initial_words=initial,
        max_instructions=budget,
        category=profile.category,
        description=profile.description or f"synthetic proxy ({profile.category})",
    )
