"""The bitcount workload (MiBench [30]).

The paper's design-space explorations use "compute-bound bitcount" as the
worst case for overly large checkpoints: long dependent ALU chains with
very few memory operations, so segments reach the 5,000-instruction cap
long before the log fills, and an error late in a segment wastes a lot of
execution.

Like the MiBench original, several bit-counting strategies run over the
same input array and their totals are accumulated:

* iterated shift-and-mask ("1 bit at a time"),
* Kernighan's ``n &= n - 1`` trick (data-dependent iteration count),
* parallel SWAR reduction (constant instruction count).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import ProgramBuilder, Syscall
from .base import Workload

#: Where the input array lives.
DATA_BASE = 0x10000
#: Where the three per-method totals are stored.
RESULT_BASE = 0x8000
#: Per-element counts array (like MiBench's per-iteration results).
COUNTS_BASE = 0xA000


def build_bitcount(values: int = 64, seed: int = 7) -> Workload:
    """Construct bitcount over ``values`` pseudo-random 64-bit words."""
    rng = np.random.default_rng(seed)
    data = [int(x) for x in rng.integers(0, 2**63, size=values, dtype=np.int64)]

    b = ProgramBuilder("bitcount")
    # Register plan:
    #   x10 element index     x11 element count   x12 current value
    #   x13 shift-method total  x14 kernighan total  x15 swar total
    #   x1..x5 scratch
    b.movi(10, 0)
    b.movi(11, values)
    b.movi(13, 0)
    b.movi(14, 0)
    b.movi(15, 0)
    b.movi(16, DATA_BASE)

    b.label("outer")
    b.lsli(1, 10, 3)  # byte offset
    b.add(1, 16, 1)
    b.ldr(12, 1, 0)  # x12 = data[i]

    # Method 1: shift and mask, 64 fixed iterations.
    b.mov(2, 12)
    b.movi(3, 0)  # per-element count
    b.movi(4, 64)  # loop counter
    b.label("shift_loop")
    b.andi(5, 2, 1)
    b.add(3, 3, 5)
    b.lsri(2, 2, 1)
    b.subi(4, 4, 1)
    b.cbnz(4, "shift_loop")
    b.add(13, 13, 3)

    # Method 2: Kernighan — iterations depend on popcount (data-dependent
    # branches: the branchy, hard-to-predict part of the workload).
    b.mov(2, 12)
    b.movi(3, 0)
    b.label("kern_loop")
    b.cbz(2, "kern_done")
    b.subi(5, 2, 1)
    b.and_(2, 2, 5)
    b.addi(3, 3, 1)
    b.b("kern_loop")
    b.label("kern_done")
    b.add(14, 14, 3)
    # Store the per-element count (MiBench records per-iteration results).
    b.movi(5, COUNTS_BASE)
    b.lsli(4, 10, 3)
    b.add(5, 5, 4)
    b.str_(3, 5, 0)

    # Method 3: SWAR parallel reduction (long dependent ALU chain).
    b.mov(2, 12)
    b.movi(5, 0x5555555555555555)
    b.lsri(3, 2, 1)
    b.and_(3, 3, 5)
    b.sub(2, 2, 3)
    b.movi(5, 0x3333333333333333)
    b.and_(3, 2, 5)
    b.lsri(2, 2, 2)
    b.and_(2, 2, 5)
    b.add(2, 2, 3)
    b.movi(5, 0x0F0F0F0F0F0F0F0F)
    b.lsri(3, 2, 4)
    b.add(2, 2, 3)
    b.and_(2, 2, 5)
    b.movi(5, 0x0101010101010101)
    b.mul(2, 2, 5)
    b.lsri(2, 2, 56)
    b.add(15, 15, 2)

    b.addi(10, 10, 1)
    b.cmp(10, 11)
    b.blt("outer")

    # Store the three totals and print the cross-check sum.
    b.movi(1, RESULT_BASE)
    b.str_(13, 1, 0)
    b.str_(14, 1, 8)
    b.str_(15, 1, 16)
    b.add(1, 13, 14)
    b.add(1, 1, 15)
    b.syscall(Syscall.PRINT_INT)
    b.halt()

    initial: Dict[int, int] = {
        DATA_BASE + i * 8: value for i, value in enumerate(data)
    }
    # ~500 instructions per element across the three methods (the fixed
    # 64-iteration shift loop dominates), plus prologue/epilogue.
    budget = 520 * values + 1000
    return Workload(
        name="bitcount",
        program=b.build(),
        initial_words=initial,
        max_instructions=budget,
        category="compute",
        description=(
            f"MiBench bitcount over {values} words; compute-bound, "
            "few memory ops, data-dependent branches"
        ),
    )


def expected_popcount_total(workload: Workload) -> int:
    """Reference total popcount of the input array (for tests)."""
    return sum(bin(v).count("1") for v in workload.initial_words.values())
