"""Additional self-checking kernels.

Beyond the paper's bitcount/stream/SPEC-proxy set, three classic kernels
with independently verifiable results, used by tests and examples to
exercise corners the others miss:

* :func:`build_matmul` — dense double-precision matrix multiply:
  FP-multiply-add dominated, blocked access patterns, long dependency
  chains through the accumulator.
* :func:`build_quicksort` — in-place integer quicksort: data-dependent
  branches everywhere, recursion through an explicit stack in memory,
  heavy pointer arithmetic (a torture test for rollback, since nearly
  every store overwrites live data).
* :func:`build_crc32` — bitwise CRC-32 over a buffer: serial
  shift/xor/conditional chains, one long dependency string.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..isa import ProgramBuilder, Syscall, float_to_bits
from .base import Workload

MATRIX_A = 0x30000
MATRIX_B = 0x50000
MATRIX_C = 0x70000
SORT_BASE = 0x90000
SORT_STACK = 0xB0000
CRC_BASE = 0xD0000


def build_matmul(n: int = 12, seed: int = 21) -> Workload:
    """C = A x B over n x n doubles (row-major)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    b_mat = rng.uniform(-1.0, 1.0, size=(n, n))

    b = ProgramBuilder("matmul")
    # x10=i x11=j x12=k x13=n; x1..x5 scratch; f1..f3 scratch
    b.movi(13, n)
    b.movi(20, MATRIX_A)
    b.movi(21, MATRIX_B)
    b.movi(22, MATRIX_C)
    b.movi(10, 0)
    b.label("i_loop")
    b.movi(11, 0)
    b.label("j_loop")
    b.fmovi(1, 0.0)  # accumulator
    b.movi(12, 0)
    b.label("k_loop")
    # f2 = A[i][k]
    b.mul(1, 10, 13)
    b.add(1, 1, 12)
    b.lsli(1, 1, 3)
    b.add(1, 20, 1)
    b.fldr(2, 1, 0)
    # f3 = B[k][j]
    b.mul(2, 12, 13)
    b.add(2, 2, 11)
    b.lsli(2, 2, 3)
    b.add(2, 21, 2)
    b.fldr(3, 2, 0)
    b.fmul(2, 2, 3)
    b.fadd(1, 1, 2)
    b.addi(12, 12, 1)
    b.cmp(12, 13)
    b.blt("k_loop")
    # C[i][j] = accumulator
    b.mul(1, 10, 13)
    b.add(1, 1, 11)
    b.lsli(1, 1, 3)
    b.add(1, 22, 1)
    b.fstr(1, 1, 0)
    b.addi(11, 11, 1)
    b.cmp(11, 13)
    b.blt("j_loop")
    b.addi(10, 10, 1)
    b.cmp(10, 13)
    b.blt("i_loop")
    # Print C[0][0].
    b.movi(2, MATRIX_C)
    b.fldr(1, 2, 0)
    b.syscall(Syscall.PRINT_FLOAT)
    b.halt()

    initial: Dict[int, int] = {}
    for i in range(n):
        for j in range(n):
            initial[MATRIX_A + (i * n + j) * 8] = float_to_bits(float(a[i, j]))
            initial[MATRIX_B + (i * n + j) * 8] = float_to_bits(float(b_mat[i, j]))
    budget = 24 * n * n * n + 64 * n * n + 1000
    return Workload(
        name="matmul",
        program=b.build(),
        initial_words=initial,
        max_instructions=budget,
        category="compute",
        description=f"dense {n}x{n} double matrix multiply",
    )


def matmul_reference(n: int = 12, seed: int = 21) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    b = rng.uniform(-1.0, 1.0, size=(n, n))
    return a @ b


def build_quicksort(elements: int = 64, seed: int = 23) -> Workload:
    """In-place iterative quicksort (Lomuto) over 64-bit integers."""
    rng = np.random.default_rng(seed)
    data: List[int] = [int(x) for x in rng.integers(0, 1 << 40, size=elements)]

    b = ProgramBuilder("quicksort")
    # Explicit work stack of (lo, hi) pairs at SORT_STACK; x15 = stack ptr.
    # x10=lo x11=hi x12=i x13=j x1..x6 scratch; x20=array base
    b.movi(20, SORT_BASE)
    b.movi(15, SORT_STACK)
    # push (0, elements-1)
    b.movi(1, 0)
    b.str_(1, 15, 0)
    b.movi(1, elements - 1)
    b.str_(1, 15, 8)
    b.addi(15, 15, 16)

    b.label("pop")
    b.movi(1, SORT_STACK)
    b.cmp(15, 1)
    b.ble("done")
    b.subi(15, 15, 16)
    b.ldr(10, 15, 0)  # lo
    b.ldr(11, 15, 8)  # hi
    b.cmp(10, 11)
    b.bge("pop")

    # Lomuto partition with pivot = arr[hi].
    b.lsli(1, 11, 3)
    b.add(1, 20, 1)
    b.ldr(6, 1, 0)  # pivot value in x6
    b.mov(12, 10)  # i = lo (store index)
    b.mov(13, 10)  # j = lo (scan index)
    b.label("scan")
    b.cmp(13, 11)
    b.bge("place_pivot")
    b.lsli(1, 13, 3)
    b.add(1, 20, 1)
    b.ldr(2, 1, 0)  # arr[j]
    b.cmp(2, 6)
    b.bge("no_swap")
    # swap arr[i], arr[j]
    b.lsli(3, 12, 3)
    b.add(3, 20, 3)
    b.ldr(4, 3, 0)
    b.str_(2, 3, 0)
    b.str_(4, 1, 0)
    b.addi(12, 12, 1)
    b.label("no_swap")
    b.addi(13, 13, 1)
    b.b("scan")

    b.label("place_pivot")
    # swap arr[i], arr[hi]
    b.lsli(1, 12, 3)
    b.add(1, 20, 1)
    b.ldr(2, 1, 0)
    b.lsli(3, 11, 3)
    b.add(3, 20, 3)
    b.ldr(4, 3, 0)
    b.str_(4, 1, 0)
    b.str_(2, 3, 0)
    # push (lo, i-1) and (i+1, hi)
    b.subi(1, 12, 1)
    b.str_(10, 15, 0)
    b.str_(1, 15, 8)
    b.addi(15, 15, 16)
    b.addi(1, 12, 1)
    b.str_(1, 15, 0)
    b.str_(11, 15, 8)
    b.addi(15, 15, 16)
    b.b("pop")

    b.label("done")
    b.movi(1, SORT_BASE)
    b.ldr(1, 1, 0)  # smallest element
    b.syscall(Syscall.PRINT_INT)
    b.halt()

    initial = {SORT_BASE + i * 8: value for i, value in enumerate(data)}
    budget = 80 * elements * max(elements.bit_length(), 1) + 40 * elements + 2000
    return Workload(
        name="quicksort",
        program=b.build(),
        initial_words=initial,
        max_instructions=budget,
        category="int",
        description=f"iterative quicksort of {elements} integers",
    )


def quicksort_reference(elements: int = 64, seed: int = 23) -> List[int]:
    rng = np.random.default_rng(seed)
    return sorted(int(x) for x in rng.integers(0, 1 << 40, size=elements))


CRC32_POLY = 0xEDB88320


def build_crc32(length_words: int = 32, seed: int = 29) -> Workload:
    """Bitwise (table-free) CRC-32 over ``length_words`` 64-bit words."""
    rng = np.random.default_rng(seed)
    data = [int(x) for x in rng.integers(0, 1 << 63, size=length_words)]

    b = ProgramBuilder("crc32")
    # x1=crc x2=word x3=bit counter x4=word index x5/x6 scratch
    b.movi(1, 0xFFFFFFFF)
    b.movi(4, 0)
    b.movi(10, length_words)
    b.movi(20, CRC_BASE)
    b.movi(21, CRC32_POLY)
    b.label("word_loop")
    b.lsli(5, 4, 3)
    b.add(5, 20, 5)
    b.ldr(2, 5, 0)
    b.movi(3, 64)
    b.label("bit_loop")
    b.eor(5, 1, 2)
    b.andi(5, 5, 1)
    b.lsri(1, 1, 1)
    b.cbz(5, "no_poly")
    b.eor(1, 1, 21)
    b.label("no_poly")
    b.lsri(2, 2, 1)
    b.subi(3, 3, 1)
    b.cbnz(3, "bit_loop")
    b.addi(4, 4, 1)
    b.cmp(4, 10)
    b.blt("word_loop")
    b.movi(5, 0xFFFFFFFF)
    b.eor(1, 1, 5)
    b.syscall(Syscall.PRINT_INT)
    b.halt()

    initial = {CRC_BASE + i * 8: value for i, value in enumerate(data)}
    budget = 600 * length_words + 1000
    return Workload(
        name="crc32",
        program=b.build(),
        initial_words=initial,
        max_instructions=budget,
        category="compute",
        description=f"bitwise CRC-32 over {length_words} words",
    )


def crc32_reference(length_words: int = 32, seed: int = 29) -> int:
    """Reference CRC computed independently in Python."""
    rng = np.random.default_rng(seed)
    data = [int(x) for x in rng.integers(0, 1 << 63, size=length_words)]
    crc = 0xFFFFFFFF
    for word in data:
        for bit in range(64):
            feed = (crc ^ (word >> bit)) & 1
            crc >>= 1
            if feed:
                crc ^= CRC32_POLY
    return crc ^ 0xFFFFFFFF
