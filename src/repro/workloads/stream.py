"""The STREAM workload (HPC Challenge [44]).

The paper's memory-bound extreme: long vector kernels whose loads and
stores fill the load-store log quickly, so checkpoints are short and
capacity-limited regardless of the AIMD target ("stream, which, due to
being memory-bound, fills the load-store log quickly, and so has smaller
checkpoints in general", section VI-B).

All four canonical kernels run once per pass:

* COPY:   c[i] = a[i]
* SCALE:  b[i] = s * c[i]
* ADD:    c[i] = a[i] + b[i]
* TRIAD:  a[i] = b[i] + s * c[i]
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import ProgramBuilder, Syscall, float_to_bits
from .base import Workload

A_BASE = 0x20000
B_BASE = 0x40000
C_BASE = 0x60000
SCALAR = 3.0


def build_stream(elements: int = 256, passes: int = 1, seed: int = 11) -> Workload:
    """Construct STREAM over ``elements`` doubles, ``passes`` repetitions."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(1.0, 2.0, size=elements)

    b = ProgramBuilder("stream")
    # x10 index, x11 count, x20/x21/x22 array bases, x9 pass counter
    # f0 scalar, f1..f3 scratch
    b.movi(11, elements)
    b.movi(20, A_BASE)
    b.movi(21, B_BASE)
    b.movi(22, C_BASE)
    b.fmovi(0, SCALAR)
    b.movi(9, passes)

    b.label("pass_loop")

    def vector_loop(tag: str, body) -> None:
        b.movi(10, 0)
        b.label(f"{tag}_loop")
        b.lsli(1, 10, 3)
        body()
        b.addi(10, 10, 1)
        b.cmp(10, 11)
        b.blt(f"{tag}_loop")

    def copy_body() -> None:  # c[i] = a[i]
        b.add(2, 20, 1)
        b.fldr(1, 2, 0)
        b.add(2, 22, 1)
        b.fstr(1, 2, 0)

    def scale_body() -> None:  # b[i] = s * c[i]
        b.add(2, 22, 1)
        b.fldr(1, 2, 0)
        b.fmul(1, 0, 1)
        b.add(2, 21, 1)
        b.fstr(1, 2, 0)

    def add_body() -> None:  # c[i] = a[i] + b[i]
        b.add(2, 20, 1)
        b.fldr(1, 2, 0)
        b.add(2, 21, 1)
        b.fldr(2, 2, 0)
        b.fadd(1, 1, 2)
        b.add(2, 22, 1)
        b.fstr(1, 2, 0)

    def triad_body() -> None:  # a[i] = b[i] + s * c[i]
        b.add(2, 22, 1)
        b.fldr(1, 2, 0)
        b.fmul(1, 0, 1)
        b.add(2, 21, 1)
        b.fldr(2, 2, 0)
        b.fadd(1, 1, 2)
        b.add(2, 20, 1)
        b.fstr(1, 2, 0)

    vector_loop("copy", copy_body)
    vector_loop("scale", scale_body)
    vector_loop("add", add_body)
    vector_loop("triad", triad_body)

    b.subi(9, 9, 1)
    b.cbnz(9, "pass_loop")

    # Checksum a[0] to the output stream.
    b.movi(2, A_BASE)
    b.fldr(1, 2, 0)
    b.syscall(Syscall.PRINT_FLOAT)
    b.halt()

    initial: Dict[int, int] = {
        A_BASE + i * 8: float_to_bits(float(v)) for i, v in enumerate(a)
    }
    # ~40 instructions per element per pass across the four kernels.
    budget = max(80 * elements * passes, 20_000)
    return Workload(
        name="stream",
        program=b.build(),
        initial_words=initial,
        max_instructions=budget,
        category="memory",
        description=(
            f"STREAM copy/scale/add/triad over {elements} doubles x "
            f"{passes} passes; memory-bound, log-capacity-limited checkpoints"
        ),
    )


def expected_stream(elements: int = 256, passes: int = 1, seed: int = 11):
    """Reference final arrays computed with numpy (for tests)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(1.0, 2.0, size=elements)
    b = np.zeros(elements)
    c = np.zeros(elements)
    for _ in range(passes):
        c = a.copy()
        b = SCALAR * c
        c = a + b
        a = b + SCALAR * c
    return a, b, c
