"""Atomic artifact writes.

Every JSON/text artifact the CLI and the campaign layer emit goes
through :func:`atomic_write_text`: the content is written to a
temporary file in the destination directory and moved into place with
``os.replace``, which is atomic on POSIX and Windows.  An interrupt
(SIGKILL, power loss, a watchdog tearing the process down) therefore
never leaves a truncated or half-serialised artifact at the published
path — readers see either the previous complete file or the new one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional


def atomic_write_text(path: str, content: str) -> None:
    """Write ``content`` to ``path`` atomically (temp file + replace)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Leave no droppings: the published path is untouched either way.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str, payload: Any, *, indent: Optional[int] = 2
) -> None:
    """Serialise ``payload`` and atomically publish it at ``path``.

    Serialisation happens *before* the temp file is created, so a
    payload that fails to serialise leaves no file behind at all.
    """
    content = json.dumps(payload, indent=indent) + "\n"
    atomic_write_text(path, content)
