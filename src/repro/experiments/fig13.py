"""Figure 13: power, slowdown and EDP on an undervolted ParaDox system.

Combines the per-workload undervolting points (X-Gene 3 substitute
table), the simulated ParaDox-DVS slowdown and the gated checker-pool
power into the three normalised series the paper plots.  Published
headline numbers: 22% mean power reduction, ~4.5% typical slowdown, 15%
mean EDP reduction; astar's conflict misses make it the EDP loser; and
ParaMedic (which cannot undervolt) lands at ~1.08x baseline EDP, ~1.27x
worse than ParaDox.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..power import EnergyRow, EnergySummary, energy_row, paramedic_edp_ratio, summarise
from .common import format_table
from .spec_runs import SpecSuiteRuns, run_spec_suite


@dataclass
class Fig13Result:
    rows: List[EnergyRow]
    summary: EnergySummary
    paramedic_edp_vs_paradox: float

    def table(self) -> str:
        body = [
            (
                r.workload,
                f"{r.power:.3f}",
                f"{r.slowdown:.3f}",
                f"{r.edp:.3f}",
                f"{r.undervolt_voltage:.3f}",
                f"{r.checker_power:.3f}",
            )
            for r in self.rows
        ]
        body.append(
            (
                "gmean",
                f"{self.summary.mean_power:.3f}",
                f"{self.summary.mean_slowdown:.3f}",
                f"{self.summary.mean_edp:.3f}",
                "",
                "",
            )
        )
        lines = [
            format_table(
                ["workload", "power", "slowdown", "EDP", "V_uv", "checker P"],
                body,
                title="Figure 13: power / slowdown / EDP vs margined baseline",
            ),
            "",
            f"power reduction: {self.summary.power_reduction_percent:.1f}%  "
            f"slowdown: {self.summary.slowdown_percent:.1f}%  "
            f"EDP reduction: {self.summary.edp_reduction_percent:.1f}%",
            f"ParaMedic EDP vs ParaDox: {self.paramedic_edp_vs_paradox:.2f}x",
        ]
        return "\n".join(lines)


def from_runs(runs: SpecSuiteRuns) -> Fig13Result:
    rows: List[EnergyRow] = []
    paramedic_slowdowns: List[float] = []
    for name in runs.names():
        base = runs.baseline[name]
        rows.append(energy_row(name, runs.paradox[name], base))
        if name in runs.paramedic:
            paramedic_slowdowns.append(runs.paramedic[name].slowdown_vs(base))
    summary = summarise(rows)
    if paramedic_slowdowns:
        mean_pm = 1.0
        for s in paramedic_slowdowns:
            mean_pm *= s
        mean_pm **= 1.0 / len(paramedic_slowdowns)
    else:
        mean_pm = 1.08
    return Fig13Result(
        rows=rows,
        summary=summary,
        paramedic_edp_vs_paradox=paramedic_edp_ratio(mean_pm, summary.mean_edp),
    )


def run(
    iterations: int = 30,
    names: Optional[Sequence[str]] = None,
    seed: int = 12345,
    jobs: int = 1,
) -> Fig13Result:
    runs = run_spec_suite(
        iterations=iterations,
        names=names,
        seed=seed,
        systems=("baseline", "paramedic", "paradox"),
        jobs=jobs,
    )
    return from_runs(runs)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
