"""Shared SPEC-suite simulation runs for figures 10, 12 and 13.

All three figures sweep the same nineteen SPEC CPU2006 proxies; this
module runs each proxy on the systems they need and caches the results in
a :class:`SpecSuiteRuns` so the figure harnesses (and benchmarks) don't
re-simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core import BaselineSystem, DetectionOnlySystem, ParaDoxSystem, ParaMedicSystem
from ..stats import RunResult
from ..workloads import SPEC_ORDER, Workload, build_spec_workload
from .common import steady_state_dvfs_config


@dataclass
class SpecSuiteRuns:
    """Per-workload results for every system the figures compare."""

    iterations: int
    workloads: Dict[str, Workload] = field(default_factory=dict)
    baseline: Dict[str, RunResult] = field(default_factory=dict)
    detection: Dict[str, RunResult] = field(default_factory=dict)
    paramedic: Dict[str, RunResult] = field(default_factory=dict)
    paradox: Dict[str, RunResult] = field(default_factory=dict)

    def names(self) -> List[str]:
        return [name for name in SPEC_ORDER if name in self.baseline]


def run_spec_suite(
    iterations: int = 30,
    names: Optional[Sequence[str]] = None,
    seed: int = 12345,
    systems: Sequence[str] = ("baseline", "detection", "paramedic", "paradox"),
) -> SpecSuiteRuns:
    """Simulate the SPEC proxies on the requested systems.

    ``paradox`` here is the figure-10/13 configuration: dynamic voltage
    scaling warm-started near its steady state, so induced errors are
    present but rare (see :func:`common.steady_state_dvfs_config`).
    """
    names = list(names) if names is not None else list(SPEC_ORDER)
    runs = SpecSuiteRuns(iterations=iterations)
    dvs_config = steady_state_dvfs_config()
    for name in names:
        workload = build_spec_workload(name, iterations=iterations, seed=seed)
        runs.workloads[name] = workload
        if "baseline" in systems:
            runs.baseline[name] = BaselineSystem().run(workload, seed=seed)
        if "detection" in systems:
            runs.detection[name] = DetectionOnlySystem().run(workload, seed=seed)
        if "paramedic" in systems:
            runs.paramedic[name] = ParaMedicSystem().run(workload, seed=seed)
        if "paradox" in systems:
            runs.paradox[name] = ParaDoxSystem(config=dvs_config, dvs=True).run(
                workload, seed=seed
            )
    return runs
