"""Shared SPEC-suite simulation runs for figures 10, 12 and 13.

All three figures sweep the same nineteen SPEC CPU2006 proxies; this
module runs each proxy on the systems they need and caches the results in
a :class:`SpecSuiteRuns` so the figure harnesses (and benchmarks) don't
re-simulate.

Execution is sharded into independent :class:`SuiteTask`\\ s — one
``(workload, system, seed)`` simulation each — which either run inline
(``jobs=1``, the serial reference path) or fan out across worker
processes through :mod:`repro.parallel`.  A task carries every input its
run needs, so results are bit-identical at any ``jobs`` width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parallel import derive_seed, parallel_map
from ..stats import RunResult
from ..workloads import SPEC_ORDER, Workload, build_spec_workload
from .common import steady_state_dvfs_config

#: Systems a suite run may simulate, in figure order.
SUITE_SYSTEMS = ("baseline", "detection", "paramedic", "paradox")

#: Per-process memo of built workloads: the same (name, iterations, seed)
#: program is simulated on up to four systems, and building it is a
#: non-trivial share of short runs.  Workloads are treated as immutable
#: by every consumer (``create_memory`` copies), so sharing is safe.
_WORKLOAD_CACHE: Dict[Tuple[str, int, int], Workload] = {}


def _cached_workload(name: str, iterations: int, seed: int) -> Workload:
    key = (name, iterations, seed)
    workload = _WORKLOAD_CACHE.get(key)
    if workload is None:
        if len(_WORKLOAD_CACHE) >= 64:
            _WORKLOAD_CACHE.clear()
        workload = build_spec_workload(name, iterations=iterations, seed=seed)
        _WORKLOAD_CACHE[key] = workload
    return workload


@dataclass(frozen=True)
class SuiteTask:
    """One independent ``(workload, system, seed)`` simulation."""

    workload: str
    system: str
    iterations: int
    #: Seed the workload generator uses (shared across systems so every
    #: system simulates the *same* program and data).
    build_seed: int
    #: Seed for the run's fault/scheduling randomness.
    run_seed: int
    #: Record telemetry (trace + metrics) for this run; the artifacts
    #: come back on ``RunResult.trace`` / ``RunResult.metrics`` and so
    #: survive the worker pipe unchanged.
    tracing: bool = False
    #: Assert engine bookkeeping invariants at segment granularity
    #: during this run (see :mod:`repro.oracle.invariants`).
    paranoid: bool = False
    #: Execute the main core through the compiled superblock tier
    #: (bit-identical; ``--no-jit`` forces pure interpretation).
    jit: bool = True


@dataclass
class SpecSuiteRuns:
    """Per-workload results for every system the figures compare."""

    iterations: int
    workloads: Dict[str, Workload] = field(default_factory=dict)
    baseline: Dict[str, RunResult] = field(default_factory=dict)
    detection: Dict[str, RunResult] = field(default_factory=dict)
    paramedic: Dict[str, RunResult] = field(default_factory=dict)
    paradox: Dict[str, RunResult] = field(default_factory=dict)

    def names(self) -> List[str]:
        return [name for name in SPEC_ORDER if name in self.baseline]

    def by_system(self, system: str) -> Dict[str, RunResult]:
        return getattr(self, system)

    def all_results(self) -> List[Tuple[str, str, RunResult]]:
        """Every ``(system, workload, result)`` in deterministic order."""
        out: List[Tuple[str, str, RunResult]] = []
        for system in ("baseline", "detection", "paramedic", "paradox"):
            for workload, result in sorted(self.by_system(system).items()):
                out.append((system, workload, result))
        return out

    def merged_metrics(self) -> Dict:
        """One metrics report aggregating every traced run in the suite.

        Runs executed without tracing contribute nothing (they are
        counted in the report's ``skipped_runs``).
        """
        from ..telemetry import merge_metrics

        return merge_metrics([r.metrics for _, _, r in self.all_results()])


def build_suite_tasks(
    names: Sequence[str],
    systems: Sequence[str],
    iterations: int,
    seed: int,
    spread_seeds: bool = False,
    tracing: bool = False,
    paranoid: bool = False,
    jit: bool = True,
) -> List[SuiteTask]:
    """Expand the suite grid into independent tasks.

    With ``spread_seeds`` each run's randomness is derived per
    ``(workload, system)`` through :func:`repro.parallel.derive_seed`;
    otherwise every run shares the base seed, the historical behaviour
    of the figure harnesses.
    """
    unknown = [system for system in systems if system not in SUITE_SYSTEMS]
    if unknown:
        raise ValueError(f"unknown systems {unknown}; choose from {SUITE_SYSTEMS}")
    return [
        SuiteTask(
            workload=name,
            system=system,
            iterations=iterations,
            build_seed=seed,
            run_seed=(
                derive_seed(seed, name, system) if spread_seeds else seed
            ),
            tracing=tracing,
            paranoid=paranoid,
            jit=jit,
        )
        for name in names
        for system in SUITE_SYSTEMS
        if system in systems
    ]


def execute_suite_task(task: SuiteTask) -> RunResult:
    """Run one suite task; the unit of work for both serial and parallel.

    Builds the workload and the system from the task's fields alone, so
    a worker process reproduces exactly what the serial path computes.
    """
    from ..core import (
        BaselineSystem,
        DetectionOnlySystem,
        ParaDoxSystem,
        ParaMedicSystem,
    )

    workload = _cached_workload(task.workload, task.iterations, task.build_seed)
    tracing = task.tracing
    paranoid = task.paranoid
    jit = task.jit
    if task.system == "baseline":
        return BaselineSystem(tracing=tracing, paranoid=paranoid, jit=jit).run(
            workload, seed=task.run_seed
        )
    if task.system == "detection":
        return DetectionOnlySystem(tracing=tracing, paranoid=paranoid, jit=jit).run(
            workload, seed=task.run_seed
        )
    if task.system == "paramedic":
        return ParaMedicSystem(tracing=tracing, paranoid=paranoid, jit=jit).run(
            workload, seed=task.run_seed
        )
    if task.system == "paradox":
        return ParaDoxSystem(
            config=steady_state_dvfs_config(),
            dvs=True,
            tracing=tracing,
            paranoid=paranoid,
            jit=jit,
        ).run(workload, seed=task.run_seed)
    raise ValueError(f"unknown system {task.system!r}")


def run_spec_suite(
    iterations: int = 30,
    names: Optional[Sequence[str]] = None,
    seed: int = 12345,
    systems: Sequence[str] = SUITE_SYSTEMS,
    jobs: int = 1,
    spread_seeds: bool = False,
    tracing: bool = False,
    paranoid: bool = False,
    jit: bool = True,
) -> SpecSuiteRuns:
    """Simulate the SPEC proxies on the requested systems.

    ``paradox`` here is the figure-10/13 configuration: dynamic voltage
    scaling warm-started near its steady state, so induced errors are
    present but rare (see :func:`common.steady_state_dvfs_config`).

    ``jobs`` selects the execution width: ``1`` runs every task inline
    (the serial reference), ``N > 1`` shards tasks over ``N`` worker
    processes, and ``0`` auto-sizes to the machine.  Results are
    bit-identical for any value.
    """
    names = list(names) if names is not None else list(SPEC_ORDER)
    runs = SpecSuiteRuns(iterations=iterations)
    tasks = build_suite_tasks(
        names, systems, iterations, seed, spread_seeds, tracing=tracing,
        paranoid=paranoid, jit=jit,
    )
    results = parallel_map(execute_suite_task, tasks, jobs=jobs)
    for name in names:
        runs.workloads[name] = _cached_workload(name, iterations, seed)
    for task, result in zip(tasks, results):
        runs.by_system(task.system)[task.workload] = result
    return runs
