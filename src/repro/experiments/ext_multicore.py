"""Extension: multi-main-core ParaDox with a live shared checker pool.

Where :mod:`ext_sharing` replays *recorded* dispatch traces against
hypothetical pools, this harness runs M main cores **live** against one
shared pool (:mod:`repro.core.multicore`), so contention feeds back into
each core's timeline: a core that waits on a checker another core
occupies slows down, closes later checkpoints, and dispatches later —
the coupling the trace-driven study cannot capture.

Two scenario axes from the ROADMAP:

* **Multiprogrammed SPEC mix** — a demanding pairing (gobmk peaks wide,
  lbm is store-heavy) across all three arbitration policies and two
  pool sizes, reporting per-core slowdown versus a private-pool
  single-core run of the same workload, plus the fairness metrics.
* **Asymmetric per-core voltage** — core 0 runs undervolted with the
  DVS controller chasing the margin (and eating the resulting errors);
  core 1 runs at nominal, error-free.  The question is interference:
  how much of the undervolted core's recovery storm leaks into its
  well-behaved neighbour's timeline under each policy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from ..core import MulticoreResult, ParaDoxSystem, run_multicore
from ..core.multicore import CoreSpec, MulticoreEngine
from ..scheduling import PoolPolicy
from ..workloads import build_spec_workload
from .common import format_table

#: Same demanding pairing as the trace-driven study.
DEFAULT_PAIR: Sequence[str] = ("gobmk", "lbm")


@dataclass
class MixRow:
    policy: str
    pool_size: int
    result: MulticoreResult
    #: Private-pool single-core wall times, same order as the mix.
    baselines: List[float]


@dataclass
class MulticoreStudy:
    workloads: List[str]
    mix_rows: List[MixRow]
    asym_rows: List[MixRow]

    def table(self) -> str:
        rows = []
        for entry in self.mix_rows:
            slowdowns = [
                r.wall_ns / base
                for r, base in zip(entry.result.results, entry.baselines)
            ]
            rows.append(
                (
                    entry.policy,
                    entry.pool_size,
                    " / ".join(f"{s:.3f}" for s in slowdowns),
                    " / ".join(
                        f"{r.stalls.checker_wait_ns:.0f}"
                        for r in entry.result.results
                    ),
                    " / ".join(
                        f"{s:.2f}" for s in entry.result.fairness.dispatch_share
                    ),
                    f"{entry.result.fairness.wait_gini:.3f}",
                )
            )
        mix = format_table(
            [
                "policy",
                "pool",
                "slowdown vs private",
                "checker-wait ns",
                "dispatch share",
                "wait gini",
            ],
            rows,
            title=(
                "Multiprogrammed mix on one shared pool: "
                f"{' + '.join(self.workloads)}"
            ),
        )
        rows = []
        for entry in self.asym_rows:
            slowdowns = [
                r.wall_ns / base
                for r, base in zip(entry.result.results, entry.baselines)
            ]
            rows.append(
                (
                    entry.policy,
                    entry.pool_size,
                    f"{slowdowns[0]:.3f}",
                    f"{slowdowns[1]:.3f}",
                    sum(len(r.recoveries) for r in entry.result.results),
                    f"{entry.result.fairness.wait_gini:.3f}",
                )
            )
        asym = format_table(
            [
                "policy",
                "pool",
                "undervolted slowdown",
                "nominal slowdown",
                "recoveries",
                "wait gini",
            ],
            rows,
            title=(
                "Asymmetric per-core voltage: undervolted DVS core 0 "
                "sharing the pool with a nominal core 1"
            ),
        )
        return mix + "\n\n" + asym


def run(
    names: Sequence[str] = DEFAULT_PAIR,
    iterations: int = 6,
    seed: int = 12345,
    pool_sizes: Sequence[int] = (16, 8),
    initial_margin: float = 0.12,
    error_rate: float = 1e-4,
) -> MulticoreStudy:
    workloads = [
        build_spec_workload(name, iterations=iterations, seed=seed) for name in names
    ]
    baselines = [
        ParaDoxSystem().run(workload, seed=seed).wall_ns for workload in workloads
    ]

    mix_rows: List[MixRow] = []
    for policy in PoolPolicy:
        for pool_size in pool_sizes:
            result = run_multicore(
                workloads,
                policy=policy,
                pool_size=pool_size,
                seed=seed,
            )
            mix_rows.append(MixRow(policy.value, pool_size, result, baselines))

    # Asymmetric voltage: core 0 undervolted behind the DVS controller
    # with injected errors, core 1 nominal and error-free.
    nominal = ParaDoxSystem().config
    undervolted_config = replace(
        nominal.with_error_rate(error_rate, seed=seed),
        dvfs=replace(nominal.dvfs, initial_difference=initial_margin),
    )
    asym_rows: List[MixRow] = []
    for policy in PoolPolicy:
        specs = [
            CoreSpec(
                workload=workloads[0],
                system=ParaDoxSystem(config=undervolted_config, dvs=True),
            ),
            CoreSpec(workload=workloads[1], system=ParaDoxSystem()),
        ]
        harness = MulticoreEngine(specs, policy=policy, seed=seed)
        asym_rows.append(MixRow(policy.value, len(harness.pool), harness.run(), baselines))

    return MulticoreStudy(
        workloads=list(names), mix_rows=mix_rows, asym_rows=asym_rows
    )


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
