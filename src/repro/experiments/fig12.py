"""Figure 12: checker-core wake rates under aggressive gating.

With ParaDox's lowest-free-ID scheduling, checking concentrates on the
low-numbered cores so the rest can be power gated.  The paper reports
(a) the per-core wake rate for each of the sixteen checkers per workload
and (b) the average wake rate; gobmk, sjeng and h264ref touch all sixteen
cores at peak demand, but no workload keeps more than eight busy on
average — suggesting the pool could be halved/shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .common import format_table
from .spec_runs import SpecSuiteRuns, run_spec_suite


@dataclass
class Fig12Row:
    workload: str
    #: Wake rate (fraction of wall time awake) per physical core ID.
    wake_rates: List[float]
    peak_concurrency: int

    @property
    def average_wake(self) -> float:
        """Mean cores awake, i.e. the sum of per-core wake rates."""
        return sum(self.wake_rates)

    @property
    def cores_used(self) -> int:
        return sum(1 for rate in self.wake_rates if rate > 0)


@dataclass
class Fig12Result:
    rows: List[Fig12Row]

    def table(self) -> str:
        return format_table(
            ["workload", "avg cores awake", "peak", "cores touched", "top-4 rates"],
            [
                (
                    r.workload,
                    f"{r.average_wake:.2f}",
                    r.peak_concurrency,
                    r.cores_used,
                    " ".join(
                        f"{rate:.2f}"
                        for rate in sorted(r.wake_rates, reverse=True)[:4]
                    ),
                )
                for r in self.rows
            ],
            title="Figure 12: checker wake rates with aggressive gating",
        )


def from_runs(runs: SpecSuiteRuns) -> Fig12Result:
    rows: List[Fig12Row] = []
    for name in runs.names():
        result = runs.paradox[name]
        rows.append(
            Fig12Row(
                workload=name,
                wake_rates=list(result.checker_wake_rates),
                peak_concurrency=result.checker_peak_concurrency,
            )
        )
    return Fig12Result(rows)


def run(
    iterations: int = 30,
    names: Optional[Sequence[str]] = None,
    seed: int = 12345,
    jobs: int = 1,
) -> Fig12Result:
    runs = run_spec_suite(
        iterations=iterations,
        names=names,
        seed=seed,
        systems=("baseline", "paradox"),
        jobs=jobs,
    )
    return from_runs(runs)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
