"""Section VI-E: the overclocking / voltage trade-off scenarios.

Analytic (no simulation): reproduces the two operating points the paper
derives from ``P proportional to V^2 f`` and ``f proportional to V - V_th``:

* restore-performance: +4.5% clock at +0.019 V, +9% power vs the slow
  undervolted point, roughly -15% vs the margined baseline;
* boost-performance: +0.06 V from the undervolted point buys ~+13% clock
  (~3.6 GHz) at the baseline's power.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..power import OverclockScenario, boost_performance, restore_performance
from .common import format_table


@dataclass
class Sec6EResult:
    restore: OverclockScenario
    boost: OverclockScenario

    def table(self) -> str:
        rows = []
        for s in (self.restore, self.boost):
            rows.append(
                (
                    s.name,
                    f"{s.voltage:.3f}",
                    f"+{s.voltage_increase:.3f}",
                    f"{s.frequency_hz / 1e9:.2f} GHz",
                    f"{s.frequency_increase_percent:+.1f}%",
                    f"{(s.power_vs_undervolted - 1) * 100:+.1f}%",
                    f"{(s.power_vs_margined - 1) * 100:+.1f}%",
                    f"{s.performance:.3f}",
                )
            )
        return format_table(
            [
                "scenario", "V", "dV", "clock", "df",
                "P vs undervolted", "P vs margined", "perf",
            ],
            rows,
            title="Section VI-E: overclocking trade-offs",
        )


def run(slowdown: float = 1.045) -> Sec6EResult:
    return Sec6EResult(
        restore=restore_performance(slowdown),
        boost=boost_performance(0.06, slowdown),
    )


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
