"""Figure 8: performance of bitcount under increasing error probabilities.

The paper sweeps injected error rates from 1e-7 to 1e-2 and plots the
slowdown of ParaMedic and ParaDox relative to fault-free ParaMedic.  The
published shape: both flat at realistic rates; ParaMedic's fixed long
checkpoints blow up around 2e-4 (16x, livelocking), while ParaDox's
AIMD checkpoint lengths hold similar performance at roughly two orders
of magnitude higher rates (8x only at ~1e-2).

The harness reports wall-time-per-useful-instruction slowdowns so that
livelocked (truncated) ParaMedic points remain meaningful lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import table1_config
from ..core import ParaDoxSystem, ParaMedicSystem
from ..stats import RunResult
from ..workloads import Workload, build_bitcount
from .common import format_table, per_instruction_slowdown

DEFAULT_RATES: Sequence[float] = (
    1e-7, 1e-6, 1e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2,
)


@dataclass
class Fig8Row:
    """One x-axis point of figure 8."""

    error_rate: float
    paramedic_slowdown: float
    paradox_slowdown: float
    paramedic_livelocked: bool
    paradox_livelocked: bool
    paramedic_errors: int
    paradox_errors: int


@dataclass
class Fig8Result:
    workload: str
    reference: RunResult
    rows: List[Fig8Row]

    def table(self) -> str:
        return format_table(
            ["error rate", "ParaMedic", "ParaDox", "PM errors", "PD errors"],
            [
                (
                    f"{row.error_rate:.0e}",
                    f"{row.paramedic_slowdown:.2f}x"
                    + (" (livelock)" if row.paramedic_livelocked else ""),
                    f"{row.paradox_slowdown:.2f}x"
                    + (" (livelock)" if row.paradox_livelocked else ""),
                    row.paramedic_errors,
                    row.paradox_errors,
                )
                for row in self.rows
            ],
            title=(
                f"Figure 8: {self.workload} slowdown vs error rate "
                "(relative to fault-free ParaMedic)"
            ),
        )


def run(
    workload: Optional[Workload] = None,
    rates: Sequence[float] = DEFAULT_RATES,
    max_instructions: Optional[int] = None,
    seed: int = 12345,
    livelock_factor: float = 24.0,
) -> Fig8Result:
    """Regenerate figure 8's two series."""
    if workload is None:
        workload = build_bitcount(values=60)  # ~32k useful instructions
    budget = max_instructions or workload.max_instructions

    def make_system(cls, rate: float):
        config = table1_config().with_error_rate(rate, seed=seed)
        system = cls(config=config)
        return system

    # Engines need a raised livelock tolerance knob: wire via options.
    def run_one(cls, rate: float) -> RunResult:
        system = make_system(cls, rate)
        engine = system.engine(workload, seed=seed)
        engine.options.livelock_factor = livelock_factor
        return engine.run(budget)

    reference = run_one(ParaMedicSystem, 0.0)
    rows: List[Fig8Row] = []
    for rate in rates:
        paramedic = run_one(ParaMedicSystem, rate)
        paradox = run_one(ParaDoxSystem, rate)
        rows.append(
            Fig8Row(
                error_rate=rate,
                paramedic_slowdown=per_instruction_slowdown(paramedic, reference),
                paradox_slowdown=per_instruction_slowdown(paradox, reference),
                paramedic_livelocked=paramedic.livelocked,
                paradox_livelocked=paradox.livelocked,
                paramedic_errors=paramedic.errors_detected,
                paradox_errors=paradox.errors_detected,
            )
        )
    return Fig8Result(workload.name, reference, rows)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
