"""Extension: design-space exploration around Table I.

Sweeps the two sizing decisions Table I fixes — the number of checker
cores (16) and the log SRAM per checker (6 KiB / 5,000 instructions) —
and measures the slowdown of ParaDox on a compute-bound and a
memory-bound workload.  The published design point should sit at the
knee: fewer checkers start to stall the main core, smaller logs force
shorter checkpoints on memory-bound code; growing either past Table I
buys little (the paper's figure 12 already shows half the checkers idle).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..config import table1_config
from ..core import BaselineSystem, ParaDoxSystem
from ..workloads import Workload, build_bitcount, build_stream
from .common import format_table

DEFAULT_CHECKER_COUNTS: Sequence[int] = (2, 4, 8, 16, 32)
DEFAULT_LOG_SIZES: Sequence[int] = (1536, 3072, 6144, 12288)


@dataclass
class DesignPoint:
    workload: str
    checker_count: int
    log_bytes: int
    slowdown: float
    mean_checkpoint_length: float
    checker_wait_us: float


@dataclass
class DesignSpaceResult:
    checker_sweep: List[DesignPoint]
    log_sweep: List[DesignPoint]

    def table(self) -> str:
        def rows(points: List[DesignPoint]):
            return [
                (
                    p.workload,
                    p.checker_count,
                    p.log_bytes,
                    f"{p.slowdown:.3f}",
                    f"{p.mean_checkpoint_length:.0f}",
                    f"{p.checker_wait_us:.2f}",
                )
                for p in points
            ]

        header = ["workload", "checkers", "log B", "slowdown", "ckpt len", "wait us"]
        return (
            format_table(header, rows(self.checker_sweep),
                         title="Design space: checker-core count")
            + "\n\n"
            + format_table(header, rows(self.log_sweep),
                           title="Design space: log SRAM per checker")
        )

    def points_for(self, workload: str, sweep: str = "checker") -> List[DesignPoint]:
        source = self.checker_sweep if sweep == "checker" else self.log_sweep
        return [p for p in source if p.workload == workload]


def _run_point(
    workload: Workload,
    checker_count: int,
    log_bytes: int,
    baseline_wall: float,
    seed: int,
) -> DesignPoint:
    config = table1_config()
    config = replace(
        config,
        checker=replace(
            config.checker, count=checker_count, log_bytes_per_core=log_bytes
        ),
    )
    result = ParaDoxSystem(config=config).run(workload, seed=seed)
    return DesignPoint(
        workload=workload.name,
        checker_count=checker_count,
        log_bytes=log_bytes,
        slowdown=result.wall_ns / baseline_wall,
        mean_checkpoint_length=result.mean_checkpoint_length,
        checker_wait_us=result.stalls.checker_wait_ns / 1e3,
    )


def run(
    workloads: Optional[Sequence[Workload]] = None,
    checker_counts: Sequence[int] = DEFAULT_CHECKER_COUNTS,
    log_sizes: Sequence[int] = DEFAULT_LOG_SIZES,
    seed: int = 12345,
) -> DesignSpaceResult:
    if workloads is None:
        workloads = [
            build_bitcount(values=120),
            build_stream(elements=256, passes=3),
        ]
    checker_sweep: List[DesignPoint] = []
    log_sweep: List[DesignPoint] = []
    for workload in workloads:
        baseline = BaselineSystem().run(workload, seed=seed)
        for count in checker_counts:
            checker_sweep.append(
                _run_point(workload, count, 6144, baseline.wall_ns, seed)
            )
        for log_bytes in log_sizes:
            log_sweep.append(
                _run_point(workload, 16, log_bytes, baseline.wall_ns, seed)
            )
    return DesignSpaceResult(checker_sweep=checker_sweep, log_sweep=log_sweep)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
