"""Figure 9: average re-execution and rollback overheads per recovery.

The paper decomposes recovery cost into *memory rollback* (walking the
log restoring old values) and *wasted execution* (work since the start of
the faulty segment that must be redone), for compute-bound bitcount and
memory-bound stream at low and high error rates.  Published shape:

* wasted execution dominates rollback by one to two orders of magnitude
  (both designs tolerate check latency by construction);
* ParaDox's rollback is ~10x cheaper than ParaMedic's (one line copy per
  checkpoint instead of one old word per store);
* at high error rates ParaDox's wasted execution drops by an order of
  magnitude (AIMD shrinks checkpoints), most visibly for bitcount whose
  checkpoints are otherwise long; stream's are log-capacity-limited and
  already short.

Multiple seeds are aggregated per point so means are over enough
recovery events; error bars in the paper are ranges, reported here as
min/max.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import table1_config
from ..core import ParaDoxSystem, ParaMedicSystem
from ..stats import RecoveryEvent
from ..workloads import Workload, build_bitcount, build_stream
from .common import format_table

DEFAULT_RATES: Sequence[float] = (1e-5, 1e-4, 1e-3)


@dataclass
class RecoveryBreakdown:
    """Aggregated recovery costs for one (workload, system, rate) point."""

    workload: str
    system: str
    error_rate: float
    events: int
    mean_wasted_ns: float
    min_wasted_ns: float
    max_wasted_ns: float
    mean_rollback_ns: float
    min_rollback_ns: float
    max_rollback_ns: float


@dataclass
class Fig9Result:
    rows: List[RecoveryBreakdown]

    def table(self) -> str:
        return format_table(
            [
                "workload", "system", "rate", "events",
                "wasted mean(ns)", "wasted range",
                "rollback mean(ns)", "rollback range",
            ],
            [
                (
                    r.workload,
                    r.system,
                    f"{r.error_rate:.0e}",
                    r.events,
                    f"{r.mean_wasted_ns:.0f}",
                    f"[{r.min_wasted_ns:.0f}, {r.max_wasted_ns:.0f}]",
                    f"{r.mean_rollback_ns:.0f}",
                    f"[{r.min_rollback_ns:.0f}, {r.max_rollback_ns:.0f}]",
                )
                for r in self.rows
            ],
            title="Figure 9: recovery-cost breakdown (wasted execution vs rollback)",
        )

    def point(self, workload: str, system: str, rate: float) -> RecoveryBreakdown:
        for row in self.rows:
            if (
                row.workload == workload
                and row.system == system
                and row.error_rate == rate
            ):
                return row
        raise KeyError((workload, system, rate))


def _aggregate(
    workload: str, system: str, rate: float, events: List[RecoveryEvent]
) -> RecoveryBreakdown:
    wasted = [e.wasted_execution_ns for e in events] or [0.0]
    rollback = [e.rollback_ns for e in events] or [0.0]
    return RecoveryBreakdown(
        workload=workload,
        system=system,
        error_rate=rate,
        events=len(events),
        mean_wasted_ns=sum(wasted) / len(wasted),
        min_wasted_ns=min(wasted),
        max_wasted_ns=max(wasted),
        mean_rollback_ns=sum(rollback) / len(rollback),
        min_rollback_ns=min(rollback),
        max_rollback_ns=max(rollback),
    )


def run(
    workloads: Optional[Sequence[Workload]] = None,
    rates: Sequence[float] = DEFAULT_RATES,
    seeds: Sequence[int] = (11, 22, 33),
    max_instructions: Optional[int] = None,
) -> Fig9Result:
    """Regenerate figure 9's four panels as rows."""
    if workloads is None:
        workloads = [
            build_bitcount(values=150),
            build_stream(elements=256, passes=3),
        ]
    systems = [("ParaMedic", ParaMedicSystem), ("ParaDox", ParaDoxSystem)]
    rows: List[RecoveryBreakdown] = []
    for workload in workloads:
        budget = max_instructions or workload.max_instructions
        for system_name, cls in systems:
            for rate in rates:
                events: List[RecoveryEvent] = []
                for seed in seeds:
                    config = table1_config().with_error_rate(rate, seed=seed)
                    engine = cls(config=config).engine(workload, seed=seed)
                    engine.options.livelock_factor = 24.0
                    result = engine.run(budget)
                    events.extend(result.recoveries)
                rows.append(_aggregate(workload.name, system_name, rate, events))
    return Fig9Result(rows)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
