"""Run every experiment at reduced size: ``python -m repro.experiments``."""

from __future__ import annotations

import sys
import time

from . import (
    ext_coverage,
    ext_sharing,
    ext_sram,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    sec6e,
)
from .spec_runs import run_spec_suite


def main() -> int:
    start = time.time()

    print(fig08.run(rates=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2)).table())
    print()
    print(fig09.run(rates=(1e-5, 1e-4, 1e-3), seeds=(11, 22)).table())
    print()

    # Figures 10, 12 and 13 share one suite of runs.
    runs = run_spec_suite(iterations=20)
    print(fig10.from_runs(runs).table())
    print()
    print(fig12.from_runs(runs).table())
    print()
    print(fig13.from_runs(runs).table())
    print()
    print(fig11.run().table())
    print()
    print(sec6e.run().table())
    print()
    print(ext_coverage.run().table())
    print()
    print(ext_sharing.run(iterations=8).table())
    print()
    print(ext_sram.run(voltages=(1.00, 0.96), seeds=1, chip_seeds=2).table())
    print(f"\ntotal: {time.time() - start:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
