"""Figure 11: supply voltage over time on ParaDox running bitcount.

Cold-started from the safe (nominal) voltage, the controller descends
into error-seeking territory.  The figure compares ParaDox's *dynamic*
decrease (slowed 8x below the recent highest-error tide mark) against a
*constant* decrease rate, and marks the highest voltage at which any
error was observed plus both steady-state averages.  Published findings:

* voltage decreases are not uniform in time — checkpoints (and thus AIMD
  steps) come faster when the log fills early;
* the dynamic scheme produces far fewer errors than the constant one
  despite an equally low (or lower) average voltage;
* both steady-state averages sit well below the highest-error voltage:
  ParaDox deliberately operates beyond the point of first error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core import ParaDoxSystem
from ..stats import RunResult
from ..workloads import Workload, build_bitcount
from .common import format_table


@dataclass
class VoltageTrace:
    """One controller variant's trace and summary statistics."""

    label: str
    trace: List[Tuple[float, float]]  # (time ns, volts)
    errors: int
    mean_voltage: float
    steady_state_mean: float
    highest_error_voltage: float
    min_voltage: float


@dataclass
class Fig11Result:
    dynamic: VoltageTrace
    constant: VoltageTrace

    def table(self) -> str:
        rows = []
        for trace in (self.dynamic, self.constant):
            rows.append(
                (
                    trace.label,
                    trace.errors,
                    f"{trace.mean_voltage:.3f}",
                    f"{trace.steady_state_mean:.3f}",
                    f"{trace.highest_error_voltage:.3f}",
                    f"{trace.min_voltage:.3f}",
                )
            )
        return format_table(
            ["decrease", "errors", "mean V", "steady-state V", "highest-error V", "min V"],
            rows,
            title="Figure 11: voltage over time (bitcount, cold start)",
        )


def _trace_stats(label: str, result: RunResult) -> VoltageTrace:
    trace = result.voltage_trace
    voltages = [v for _, v in trace]
    # Steady state: the second half of the run (post-descent).
    if len(trace) >= 4:
        half = trace[len(trace) // 2 :]
        duration = half[-1][0] - half[0][0]
        if duration > 0:
            weighted = sum(
                v0 * (t1 - t0) for (t0, v0), (t1, _) in zip(half, half[1:])
            )
            steady = weighted / duration
        else:
            steady = half[-1][1]
    else:
        steady = voltages[-1] if voltages else 0.0
    return VoltageTrace(
        label=label,
        trace=trace,
        errors=result.errors_detected,
        mean_voltage=result.mean_voltage,
        steady_state_mean=steady,
        highest_error_voltage=result.highest_error_voltage,
        min_voltage=min(voltages) if voltages else 0.0,
    )


def run(
    workload: Optional[Workload] = None,
    seed: int = 12345,
) -> Fig11Result:
    """Regenerate figure 11: one run per decrease policy, cold start."""
    if workload is None:
        workload = build_bitcount(values=1000)  # ~520k instructions
    dynamic = ParaDoxSystem(dvs=True, dynamic_voltage_decrease=True).run(
        workload, seed=seed
    )
    constant = ParaDoxSystem(dvs=True, dynamic_voltage_decrease=False).run(
        workload, seed=seed
    )
    return Fig11Result(
        dynamic=_trace_stats("dynamic", dynamic),
        constant=_trace_stats("constant", constant),
    )


def main() -> None:
    result = run()
    print(result.table())
    print()
    print("dynamic-decrease trace (time us -> V), every 50th checkpoint:")
    for t, v in result.dynamic.trace[::50]:
        print(f"  {t / 1e3:9.2f}  {v:.3f}")


if __name__ == "__main__":
    main()
