"""Extension: coverage analysis (section IV-E, quantified).

Not a figure in the paper — section IV-E argues in prose that an
undervolted-but-checked system is strictly more reliable than a
margined-but-unchecked baseline, and that undervolting the *checkers* too
is not worth its reliability cost.  This harness turns both arguments
into numbers using :mod:`repro.coverage`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..coverage import (
    CoveragePoint,
    MARGINED_RESIDUAL_RATE,
    checker_undervolt_tradeoff,
    coverage_sweep,
)
from ..faults import VoltageErrorModel
from .common import format_table

DEFAULT_VOLTAGES: Sequence[float] = (1.05, 1.00, 0.97, 0.95, 0.93)


@dataclass
class CoverageResult:
    points: List[CoveragePoint]
    checker_tradeoff: List["tuple[float, float]"]

    def table(self) -> str:
        rows = [
            (
                f"{p.voltage:.3f}",
                f"{p.main_error_rate:.2e}",
                f"{p.sdc_rate_paradox:.2e}",
                f"{p.sdc_rate_margined:.2e}",
                f"{p.advantage:.1e}x",
            )
            for p in self.points
        ]
        main_table = format_table(
            ["V", "main err/inst", "SDC ParaDox", "SDC margined", "advantage"],
            rows,
            title="Section IV-E: silent-corruption rates, checked vs margined",
        )
        tradeoff_rows = [
            (f"{rate:.0e}", f"{sdc:.2e}") for rate, sdc in self.checker_tradeoff
        ]
        tradeoff_table = format_table(
            ["checker err/inst", "SDC rate"],
            tradeoff_rows,
            title="Cost of undervolting the checkers too (at main rate 1e-4)",
        )
        return main_table + "\n\n" + tradeoff_table


def run(
    voltages: Sequence[float] = DEFAULT_VOLTAGES,
    segment_length: int = 1000,
) -> CoverageResult:
    model = VoltageErrorModel.itanium_9560()
    points = coverage_sweep(model, list(voltages), segment_length=segment_length)
    tradeoff = checker_undervolt_tradeoff(
        1e-4,
        [MARGINED_RESIDUAL_RATE, 1e-12, 1e-9, 1e-6],
        segment_length=segment_length,
    )
    return CoverageResult(points=points, checker_tradeoff=tradeoff)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
