"""Shared utilities for the experiment harnesses.

Each ``figNN`` module regenerates the corresponding figure of the paper:
it runs the necessary simulations and returns structured rows, and its
``main()`` prints them as a text table in the same orientation the paper
plots.  Absolute numbers are in this simulator's timebase; EXPERIMENTS.md
compares shapes and ratios against the published figures.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional, Sequence

from ..config import SystemConfig, table1_config
from ..stats import RunResult


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append(
            [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row]
        )
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def per_instruction_slowdown(result: RunResult, reference: RunResult) -> float:
    """Wall time per useful instruction, relative to a reference run.

    Robust to truncated (livelocked) runs, which complete fewer useful
    instructions than the budget.
    """
    if result.instructions == 0 or reference.instructions == 0:
        raise ValueError("cannot compute slowdown of an empty run")
    mine = result.wall_ns / result.instructions
    theirs = reference.wall_ns / reference.instructions
    return mine / theirs


def steady_state_dvfs_config(
    base: Optional[SystemConfig] = None,
    initial_difference: float = 0.13,
    step_volts: float = 1e-4,
) -> SystemConfig:
    """Config for steady-state DVS studies (figures 10, 12, 13).

    Warm-starts the voltage controller near its equilibrium (just above
    the error cliff) with fine steps, so a 1e5-1e6-instruction simulation
    window measures steady-state behaviour instead of the initial descent
    (which figure 11 studies separately, cold-started).
    """
    config = base if base is not None else table1_config()
    return replace(
        config,
        dvfs=replace(
            config.dvfs,
            initial_difference=initial_difference,
            step_volts=step_volts,
        ),
    )
