"""Experiment harnesses: one module per figure of the paper.

Run any figure directly::

    python -m repro.experiments.fig08
    python -m repro.experiments.fig09
    python -m repro.experiments.fig10
    python -m repro.experiments.fig11
    python -m repro.experiments.fig12
    python -m repro.experiments.fig13
    python -m repro.experiments.sec6e

or everything (reduced sizes) via ``python -m repro.experiments``.
"""

from . import (
    ext_coverage,
    ext_design_space,
    ext_multicore,
    ext_sharing,
    ext_sram,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    sec6e,
)
from .common import format_table, per_instruction_slowdown, steady_state_dvfs_config
from .spec_runs import SpecSuiteRuns, run_spec_suite

__all__ = [
    "SpecSuiteRuns",
    "ext_coverage",
    "ext_design_space",
    "ext_multicore",
    "ext_sharing",
    "ext_sram",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "format_table",
    "per_instruction_slowdown",
    "run_spec_suite",
    "sec6e",
    "steady_state_dvfs_config",
]
