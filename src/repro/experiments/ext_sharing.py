"""Extension: shared checker pools (figure 12's halving suggestion).

The paper closes figure 12's analysis with: the checker-core area "could
be reduced by half through sharing checker cores between multiple main
cores, without affecting performance".  This harness evaluates the claim
trace-driven: dispatch traces from two independent single-core ParaDox
runs are replayed against shared pools of decreasing size, reporting the
fraction of dispatches that would have stalled a main core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core import ParaDoxSystem
from ..scheduling import SharedPoolReport, minimum_adequate_pool, sharing_study
from ..workloads import build_spec_workload
from .common import format_table

#: A demanding pairing: gobmk peaks wide; lbm is store-heavy.
DEFAULT_PAIR: Sequence[str] = ("gobmk", "lbm")


@dataclass
class SharingResult:
    workloads: List[str]
    reports: List[SharedPoolReport]
    minimum_pool: int

    def table(self) -> str:
        rows = [
            (
                report.pool_size,
                report.dispatches,
                report.blocked_dispatches,
                f"{report.blocked_fraction * 100:.2f}%",
                f"{report.mean_added_delay_ns:.1f}",
                f"{sum(report.wake_rates):.2f}",
            )
            for report in self.reports
        ]
        table = format_table(
            ["pool", "dispatches", "blocked", "blocked %", "mean delay ns", "cores awake"],
            rows,
            title=(
                f"Figure 12 extension: sharing one pool between "
                f"{' + '.join(self.workloads)}"
            ),
        )
        return table + f"\n\nminimum adequate pool (<1% blocked): {self.minimum_pool}"


def run(
    names: Sequence[str] = DEFAULT_PAIR,
    iterations: int = 12,
    seed: int = 12345,
    pool_sizes: Sequence[int] = (32, 16, 12, 8, 6, 4),
) -> SharingResult:
    traces = []
    for name in names:
        workload = build_spec_workload(name, iterations=iterations, seed=seed)
        result = ParaDoxSystem().run(workload, seed=seed)
        traces.append(result.dispatch_trace)
    reports = sharing_study(traces, pool_sizes=pool_sizes)
    return SharingResult(
        workloads=list(names),
        reports=reports,
        minimum_pool=minimum_adequate_pool(traces),
    )


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
