"""Extension: geometric vs. SRAM-map injection across the voltage sweep.

The paper's fig 12/13 conclusions rest on *memoryless* geometric
injection whose rate follows the exponential voltage→rate curve.  This
harness re-runs the same voltage sweep under the measured error
topology of reduced-voltage SRAM (per-chip, spatially clustered,
persistent bit-cell maps — :mod:`repro.faults.sram`) and puts the three
regimes side by side:

* ``geometric`` — the paper's model: transient faults at the rate the
  voltage→rate curve predicts for each supply point.
* ``sram`` — MoRS-style clustered bit-cell maps, a population of
  ``chip_seeds`` simulated dies per supply point.
* ``sram-uniform`` — the same maps with clustering ablated.

Where the geometric model predicts a smooth exponential fade-out, the
map model shows a per-chip cliff: a die is clean until the supply drops
below its weakest relevant cells, then fails persistently — retrying
the same segment re-reads the same broken cells.  Comparing the columns
shows where the paper's exponential-λ conclusion bends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..faults import VoltageErrorModel
from ..resilience import CampaignSpec, run_campaign
from .common import format_table

DEFAULT_VOLTAGES: Sequence[float] = (1.00, 0.98, 0.96, 0.94)
MODES = ("geometric", "sram", "sram-uniform")


@dataclass
class SweepPoint:
    """Aggregated outcome of one (mode, voltage) cell of the sweep."""

    mode: str
    voltage: float
    rate: float
    runs: int
    counts: "dict[str, int]"
    mean_faults: float
    mean_recoveries: float

    def row(self) -> "tuple[str, ...]":
        return (
            self.mode,
            f"{self.voltage:.3f}",
            f"{self.rate:.1e}",
            str(self.runs),
            str(self.counts.get("masked", 0)),
            str(self.counts.get("detected_recovered", 0)),
            str(self.counts.get("degraded", 0)),
            str(self.counts.get("sdc", 0)),
            str(self.counts.get("hang", 0)),
            str(self.counts.get("crash", 0)),
            f"{self.mean_faults:.1f}",
        )


@dataclass
class SramSweepResult:
    points: List[SweepPoint]

    @property
    def crash_count(self) -> int:
        return sum(p.counts.get("crash", 0) for p in self.points)

    def table(self) -> str:
        return format_table(
            [
                "model",
                "V",
                "rate",
                "runs",
                "masked",
                "det+rec",
                "degraded",
                "sdc",
                "hang",
                "crash",
                "faults/run",
            ],
            [p.row() for p in self.points],
            title=(
                "Extension: geometric vs. SRAM-map injection across the "
                "voltage sweep (DVS off, supply pinned per point)"
            ),
        )


def _spec_for(
    mode: str,
    voltage: float,
    rate: float,
    workload: str,
    scale: float,
    seeds: int,
    chip_seeds: int,
    jobs: int,
    timeout_s: float,
) -> CampaignSpec:
    if mode == "geometric":
        # One run per (seed, chip) slot so every mode sees the same
        # number of runs; geometric faults have no chip axis.
        return CampaignSpec(
            workload=workload,
            scale=scale,
            seeds=seeds * chip_seeds,
            rates=(rate,),
            models=("transient",),
            dvs=False,
            timeout_s=timeout_s,
            workers=jobs,
        )
    return CampaignSpec(
        workload=workload,
        scale=scale,
        seeds=seeds,
        rates=(rate,),
        models=("sram" if mode == "sram" else "sram-uniform",),
        dvs=False,
        chip_seeds=chip_seeds,
        voltage=voltage,
        timeout_s=timeout_s,
        workers=jobs,
    )


def run(
    voltages: Sequence[float] = DEFAULT_VOLTAGES,
    workload: str = "bitcount",
    scale: float = 0.3,
    seeds: int = 2,
    chip_seeds: int = 3,
    jobs: int = 0,
    timeout_s: float = 60.0,
) -> SramSweepResult:
    """Sweep every mode over every supply point via the campaign runner."""
    curve = VoltageErrorModel.itanium_9560()
    points: List[SweepPoint] = []
    for voltage in voltages:
        rate = curve.rate(voltage)
        for mode in MODES:
            spec = _spec_for(
                mode, voltage, rate, workload, scale, seeds, chip_seeds,
                jobs, timeout_s,
            )
            report = run_campaign(spec)
            records = report.records
            runs = len(records) or 1
            points.append(
                SweepPoint(
                    mode=mode,
                    voltage=voltage,
                    rate=rate,
                    runs=len(records),
                    counts=report.counts,
                    mean_faults=sum(r.faults_injected for r in records) / runs,
                    mean_recoveries=sum(r.recoveries for r in records) / runs,
                )
            )
    return SramSweepResult(points=points)


def main() -> None:
    result = run()
    print(result.table())


if __name__ == "__main__":
    main()
