"""Figure 10: per-SPEC slowdown of detection-only, ParaMedic, ParaDox-DVS.

All three systems are normalised to an unprotected baseline.  Published
shape: overheads between 1.00 and ~1.14; code-footprint-heavy workloads
(gobmk, povray, h264ref, omnetpp, xalancbmk) pay for checker I-cache
misses even with detection only; store-heavy FP codes (milc, cactusADM)
pay checkpointing costs; conflict/locality-challenged workloads (bwaves,
sjeng, astar) only suffer once rollback buffering is enabled; and a few
(bwaves, mcf, GemsFDTD) run *faster* under ParaDox than ParaMedic thanks
to line-granularity rollback and the adaptive checkpoint strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .common import format_table
from .spec_runs import SpecSuiteRuns, run_spec_suite


@dataclass
class Fig10Row:
    workload: str
    detection_only: float
    paramedic: float
    paradox_dvs: float
    paradox_errors: int
    paradox_mean_voltage: float


@dataclass
class Fig10Result:
    rows: List[Fig10Row]

    def geomeans(self) -> "tuple[float, float, float]":
        def gmean(values: List[float]) -> float:
            product = 1.0
            for value in values:
                product *= value
            return product ** (1.0 / len(values))

        return (
            gmean([r.detection_only for r in self.rows]),
            gmean([r.paramedic for r in self.rows]),
            gmean([r.paradox_dvs for r in self.rows]),
        )

    def table(self) -> str:
        body = [
            (
                r.workload,
                f"{r.detection_only:.3f}",
                f"{r.paramedic:.3f}",
                f"{r.paradox_dvs:.3f}",
                r.paradox_errors,
                f"{r.paradox_mean_voltage:.3f}",
            )
            for r in self.rows
        ]
        det, pm, pd = self.geomeans()
        body.append(("gmean", f"{det:.3f}", f"{pm:.3f}", f"{pd:.3f}", "", ""))
        return format_table(
            ["workload", "detection", "paramedic", "paradox-dvs", "PD errors", "PD meanV"],
            body,
            title="Figure 10: normalized slowdown vs unprotected baseline",
        )


def from_runs(runs: SpecSuiteRuns) -> Fig10Result:
    """Assemble the figure from precomputed suite runs."""
    rows: List[Fig10Row] = []
    for name in runs.names():
        base = runs.baseline[name]
        rows.append(
            Fig10Row(
                workload=name,
                detection_only=runs.detection[name].slowdown_vs(base),
                paramedic=runs.paramedic[name].slowdown_vs(base),
                paradox_dvs=runs.paradox[name].slowdown_vs(base),
                paradox_errors=runs.paradox[name].errors_detected,
                paradox_mean_voltage=runs.paradox[name].mean_voltage,
            )
        )
    return Fig10Result(rows)


def run(
    iterations: int = 30,
    names: Optional[Sequence[str]] = None,
    seed: int = 12345,
    jobs: int = 1,
) -> Fig10Result:
    return from_runs(
        run_spec_suite(iterations=iterations, names=names, seed=seed, jobs=jobs)
    )


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
