"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one workload on one system, optionally with injected
  errors or DVS, and print the run summary (plus a timeline with
  ``--timeline``).
* ``workloads`` — list every built-in workload.
* ``figure`` — regenerate one of the paper's figures.
* ``compare`` — run a workload on all four systems side by side.
* ``campaign`` — crash-isolated fault-injection campaign: seeds x rates
  x fault models over worker processes, six-outcome classification and a
  JSON report (``--smoke`` for the CI-sized variant).  With ``--store``
  every classified run is committed to a SQLite campaign store the
  moment it finishes, ``--resume`` skips cells the store already holds
  (byte-identical reports at any ``--workers`` width), and
  ``--shard K/N`` runs a deterministic 1/N slice of the grid.
* ``serve`` — long-lived job service: campaigns/fuzz/suites submitted
  over HTTP, live JSONL event streams, persistent shared store, HTML
  dashboard (see docs/SERVICE.md).
* ``report`` — render a campaign store as a static HTML dashboard.
* ``store`` — inspect (``ls``) or consolidate (``merge``) campaign
  store files, e.g. shard stores from ``campaign --shard``.
* ``explore`` — seeded evolutionary design-space search over the
  ParaDox config space (checker count, AIMD constants, checkpoint
  policy, DVFS steps, quarantine thresholds, voltage floor): NSGA-II
  selection over a (energy, slowdown, failure-rate) Pareto archive,
  each genome scored by a small campaign through the parallel fan-out,
  every evaluation persisted in the ``--store`` and resumable with
  ``--resume`` (see docs/EXPLORE.md).
* ``suite`` — the shared SPEC-proxy suite behind figures 10/12/13, with
  ``--jobs N`` sharding independent runs over worker processes
  (bit-identical to ``--jobs 1``) and ``--metrics-out`` merging every
  run's telemetry into one metrics report.
* ``trace`` — simulate one workload with telemetry enabled and export
  the event stream as Perfetto-loadable JSON (``--out``), versioned
  JSONL (``--jsonl-out``) and/or a metrics summary (``--metrics-out``).
* ``diffcheck`` — differentially execute one workload three ways
  (reference ISS, executor + log fill, checker replay) and diff full
  architectural state at every checkpoint boundary.
* ``fuzz`` — seeded, shrinkable ISA program fuzzing fed through the
  differential oracle; fails (exit 1) on any divergence.

``run`` and ``suite`` accept ``--paranoid`` to assert engine
bookkeeping invariants at every segment boundary (see docs/ORACLE.md).
``run``, ``trace``, ``suite``, ``diffcheck`` and ``fuzz`` accept
``--no-jit`` to force pure interpretation instead of the compiled
superblock tier (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Callable, Dict, Optional

from .config import table1_config
from .core import (
    BaselineSystem,
    DetectionOnlySystem,
    ParaDoxSystem,
    ParaMedicSystem,
    System,
)
from .stats import render_checker_gantt, render_timeline
from .workloads import (
    SPEC_ORDER,
    Workload,
    build_bitcount,
    build_crc32,
    build_matmul,
    build_quicksort,
    build_spec_workload,
    build_stream,
)

#: Workload-name -> builder; SPEC proxies resolve through their own table.
WORKLOAD_BUILDERS: Dict[str, Callable[..., Workload]] = {
    "bitcount": lambda scale: build_bitcount(values=int(100 * scale)),
    "stream": lambda scale: build_stream(elements=256, passes=max(1, int(scale))),
    "matmul": lambda scale: build_matmul(n=max(4, int(10 * scale))),
    "quicksort": lambda scale: build_quicksort(elements=int(96 * scale)),
    "crc32": lambda scale: build_crc32(length_words=int(24 * scale)),
}

SYSTEMS: Dict[str, Callable[..., System]] = {
    "baseline": lambda config, dvs, resilient=False: BaselineSystem(config=config),
    "detection": lambda config, dvs, resilient=False: DetectionOnlySystem(config=config),
    "paramedic": lambda config, dvs, resilient=False: ParaMedicSystem(config=config),
    "paradox": lambda config, dvs, resilient=False: ParaDoxSystem(
        config=config, dvs=dvs, resilient=resilient
    ),
}


def resolve_workload(name: str, scale: float) -> Workload:
    if name in WORKLOAD_BUILDERS:
        return WORKLOAD_BUILDERS[name](scale)
    if name in SPEC_ORDER:
        return build_spec_workload(name, iterations=max(2, int(20 * scale)))
    known = ", ".join(list(WORKLOAD_BUILDERS) + SPEC_ORDER)
    raise SystemExit(f"unknown workload {name!r}; choose from: {known}")


def cmd_workloads(_args: argparse.Namespace) -> int:
    print("built-in kernels:")
    for name in WORKLOAD_BUILDERS:
        workload = resolve_workload(name, 0.5)
        print(f"  {name:12s} {workload.description or workload.category}")
    print("SPEC CPU2006 proxies:")
    for name in SPEC_ORDER:
        print(f"  {name}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.main_cores > 1:
        return _cmd_run_multicore(args)
    workload = resolve_workload(args.workload, args.scale)
    config = table1_config().with_error_rate(args.error_rate, seed=args.seed)
    if args.resilient and args.system != "paradox":
        raise SystemExit("--resilient is only meaningful with --system paradox")
    system = SYSTEMS[args.system](config, args.dvs, args.resilient)
    system.paranoid = args.paranoid
    system.jit = args.jit
    engine = system.engine(workload, seed=args.seed)
    if args.timeline:
        from .stats import Timeline

        engine.options.record_timeline = True
        engine.timeline = Timeline()
    result = engine.run(workload.max_instructions)
    print(result.summary())
    if args.timeline and engine.timeline is not None:
        print()
        print(render_timeline(engine.timeline, limit=args.timeline_limit))
        print()
        print(render_checker_gantt(engine.timeline))
    return 0


def _cmd_run_multicore(args: argparse.Namespace) -> int:
    """``repro run`` with ``--main-cores N``: M producers, one shared pool.

    The workload argument may be a comma list (a multiprogrammed mix);
    names are cycled across the main cores.
    """
    from .core import run_multicore
    from .scheduling import POOL_POLICIES

    if args.timeline:
        raise SystemExit("--timeline is single-core only (one timeline per main)")
    if args.resilient and args.system != "paradox":
        raise SystemExit("--resilient is only meaningful with --system paradox")
    names = [name.strip() for name in args.workload.split(",") if name.strip()]
    if not names:
        raise SystemExit("expected at least one workload name")
    mix = [names[i % len(names)] for i in range(args.main_cores)]
    workloads = [resolve_workload(name, args.scale) for name in mix]
    config = table1_config().with_error_rate(args.error_rate, seed=args.seed)
    system = SYSTEMS[args.system](config, args.dvs, args.resilient)
    system.paranoid = args.paranoid
    system.jit = args.jit
    try:
        result = run_multicore(
            workloads,
            system=system,
            policy=POOL_POLICIES[args.pool_policy],
            seed=args.seed,
        )
    except ValueError as error:  # e.g. a non-checking system
        raise SystemExit(str(error))
    print(result.summary())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = resolve_workload(args.workload, args.scale)
    config = table1_config().with_error_rate(args.error_rate, seed=args.seed)
    baseline: Optional[float] = None
    print(f"{'system':>12s} {'wall us':>10s} {'slowdown':>9s} {'errors':>7s}")
    for name, factory in SYSTEMS.items():
        system = factory(config, args.dvs)
        result = system.run(workload, seed=args.seed)
        if baseline is None:
            baseline = result.wall_ns
        print(
            f"{name:>12s} {result.wall_ns / 1e3:10.2f} "
            f"{result.wall_ns / baseline:9.3f} {result.errors_detected:7d}"
        )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .ioutil import atomic_write_json
    from .telemetry import events_from_dicts, to_perfetto, write_jsonl_path

    workload = resolve_workload(args.workload, args.scale)
    config = table1_config().with_error_rate(args.error_rate, seed=args.seed)
    if args.resilient and args.system != "paradox":
        raise SystemExit("--resilient is only meaningful with --system paradox")
    # DVS defaults on (for paradox) so the trace carries a voltage
    # counter track; --no-dvs pins the nominal supply.
    dvs = args.system == "paradox" and not args.no_dvs
    system = SYSTEMS[args.system](config, dvs, args.resilient)
    system.tracing = True
    system.jit = args.jit
    result = system.run(workload, seed=args.seed)
    print(result.summary())
    events = events_from_dicts(result.trace or [])
    label = f"{result.system}/{result.workload}"
    if args.out:
        document = to_perfetto(events, label=label)
        atomic_write_json(args.out, document, indent=None)
        print(
            f"{len(events)} events -> {args.out} "
            f"(open with the Perfetto UI, https://ui.perfetto.dev)"
        )
    if args.jsonl_out:
        meta = {
            "system": result.system,
            "workload": result.workload,
            "seed": args.seed,
        }
        count = write_jsonl_path(args.jsonl_out, events, meta=meta)
        print(f"{count} events -> {args.jsonl_out}")
    if args.metrics_out:
        atomic_write_json(args.metrics_out, result.metrics or {})
        print(f"metrics -> {args.metrics_out}")
    return 0


def resolve_run_timeout(args: argparse.Namespace) -> float:
    """Single code path for the per-run watchdog flags.

    ``--run-timeout`` is the canonical spelling; legacy ``--timeout``
    still works but warns so scripts migrate before it is removed.
    Precedence: ``--run-timeout`` > ``--timeout`` > the 60 s default.
    """
    if args.run_timeout is not None:
        return args.run_timeout
    if args.timeout is not None:
        warnings.warn(
            "--timeout is deprecated; use --run-timeout",
            DeprecationWarning,
            stacklevel=2,
        )
        return args.timeout
    return 60.0


def campaign_spec_from_args(args: argparse.Namespace):
    """Build the :class:`CampaignSpec` a ``repro campaign`` invocation runs.

    Module-level (rather than inline in :func:`cmd_campaign`) so tests
    can pin the flag→spec plumbing — notably that ``--run-timeout``
    reaches :func:`repro.parallel.run_fanout` as ``timeout_s``.
    """
    from .resilience import CampaignSpec, smoke_spec

    if args.smoke:
        spec = smoke_spec()
        if args.main_cores > 1:
            spec.main_cores = args.main_cores
            spec.pool_policy = args.pool_policy
        return spec
    # --fault-model (repeatable) overrides the comma-list --models.
    models = (
        tuple(args.fault_model)
        if args.fault_model
        else tuple(args.models.split(","))
    )
    timeout_s = resolve_run_timeout(args)
    return CampaignSpec(
        workload=args.workload,
        scale=args.scale,
        seeds=args.seeds,
        first_seed=args.first_seed,
        rates=tuple(args.rate) if args.rate else (1e-4,),
        models=models,
        dvs=not args.no_dvs,
        chip_seeds=args.chip_seeds,
        first_chip_seed=args.first_chip_seed,
        voltage=args.voltage,
        timeout_s=timeout_s,
        workers=args.workers,
        main_cores=args.main_cores,
        pool_policy=args.pool_policy if args.main_cores > 1 else None,
    )


def cmd_campaign(args: argparse.Namespace) -> int:
    from .resilience import RunClass, run_campaign
    from .store import StoreError, parse_shard

    spec = campaign_spec_from_args(args)
    if args.metrics_out or args.trace_out:
        spec.tracing = True
    try:
        spec.expand()
    except ValueError as error:  # e.g. an unknown --models mix
        raise SystemExit(str(error))
    shard = None
    if args.shard:
        try:
            shard = parse_shard(args.shard)
        except ValueError as error:
            raise SystemExit(str(error))
    if args.resume and not args.store:
        raise SystemExit("--resume requires --store")

    def describe(record, cached: bool = False) -> None:
        if args.quiet:
            return
        chip = (
            f" chip {record.chip_seed:3d}"
            if record.model.startswith("sram")
            else ""
        )
        suffix = " (cached)" if cached else ""
        print(
            f"  run {record.run_id:4d} seed {record.seed:5d}{chip} "
            f"rate {record.rate:.1e} {record.model:<14s} "
            f"-> {record.run_class.value:<18s} {record.detail}{suffix}"
        )

    try:
        report = run_campaign(
            spec,
            progress=describe,
            store_path=args.store,
            resume=args.resume,
            shard=shard,
            on_cached=lambda record: describe(record, cached=True),
        )
    except StoreError as error:
        raise SystemExit(str(error))
    print(report.summary_table())
    if args.store:
        print(f"results stored in {args.store}")
    if args.json:
        # Store-backed reports are written in canonical form (wall-clock
        # fields dropped) so an interrupted-and-resumed campaign's report
        # is byte-identical to an uninterrupted one.
        report.write_json(args.json, canonical=bool(args.store))
        print(f"report written to {args.json}")
    if args.metrics_out:
        report.write_metrics_json(args.metrics_out)
        print(f"merged metrics written to {args.metrics_out}")
    if args.trace_out:
        report.write_perfetto(args.trace_out)
        print(f"merged Perfetto trace written to {args.trace_out}")
    for trace in report.crash_tracebacks:
        print("\nworker traceback:\n" + trace, file=sys.stderr)
    crashes = report.counts[RunClass.CRASH.value]
    return 1 if crashes else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve

    serve(
        args.host,
        args.port,
        work_dir=args.work_dir,
        store_path=args.store,
        quiet=not args.verbose,
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    import os

    from .store import StoreError, write_dashboard

    if not os.path.exists(args.store):
        raise SystemExit(f"no store file {args.store!r}")
    try:
        count = write_dashboard(args.store, args.out, campaign_key=args.campaign)
    except (StoreError, KeyError) as error:
        raise SystemExit(str(error))
    print(f"dashboard ({count} campaign(s)) written to {args.out}")
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    import os

    from .store import CampaignStore, StoreError

    if args.store_command == "ls":
        if not os.path.exists(args.store):
            raise SystemExit(f"no store file {args.store!r}")
        try:
            store = CampaignStore(args.store)
        except StoreError as error:
            raise SystemExit(str(error))
        with store:
            campaigns = store.list_campaigns()
            print(
                f"{args.store}: schema v{store.version}, "
                f"{len(campaigns)} campaign(s)"
            )
            for summary in campaigns:
                counts = summary["counts"]
                breakdown = " ".join(
                    f"{name}={count}" for name, count in sorted(counts.items())
                )
                print(
                    f"  {summary['campaign_key'][:16]}  "
                    f"{summary['workload']:<12s} "
                    f"{summary['recorded']}/{summary['total_cells']} recorded"
                    + (f"  {breakdown}" if breakdown else "")
                )
        return 0
    if args.store_command == "merge":
        try:
            store = CampaignStore(args.dest)
        except StoreError as error:
            raise SystemExit(str(error))
        with store:
            for source in args.sources:
                if not os.path.exists(source):
                    raise SystemExit(f"no store file {source!r}")
                try:
                    added = store.merge_from(source)
                except StoreError as error:
                    raise SystemExit(str(error))
                total = sum(added.values())
                print(f"merged {source}: {total} new row(s) " f"{added}")
        return 0
    raise SystemExit(f"unknown store command {args.store_command!r}")


def explore_spec_from_args(args: argparse.Namespace):
    """Build the :class:`ExploreSpec` a ``repro explore`` invocation runs.

    Module-level for the same reason as :func:`campaign_spec_from_args`:
    tests pin the flag→spec plumbing without spawning a search.
    """
    from .explore import ExploreSpec

    if args.smoke:
        return ExploreSpec(
            workload="bitcount",
            scale=0.3,
            generations=2,
            population=4,
            eval_seeds=2,
            timeout_s=30.0,
            workers=args.workers,
        )
    return ExploreSpec(
        workload=args.workload,
        scale=args.scale,
        generations=args.generations,
        population=args.population,
        seed=args.seed,
        eval_seeds=args.eval_seeds,
        first_eval_seed=args.first_eval_seed,
        rate=args.rate,
        model=args.model,
        initial_margin=args.initial_margin,
        timeout_s=resolve_run_timeout(args),
        workers=args.workers,
    )


def cmd_explore(args: argparse.Namespace) -> int:
    from .explore import run_explore, write_explore_report, write_report_json
    from .store import StoreError

    if args.resume and not args.store:
        raise SystemExit("--resume requires --store")
    spec = explore_spec_from_args(args)

    tracer = None
    if args.jsonl_out:
        from .telemetry import Tracer

        tracer = Tracer(command="explore", workload=spec.workload)

    def progress(evaluation, cached: bool) -> None:
        if args.quiet:
            return
        objectives = evaluation.objectives
        suffix = " (cached)" if cached else ""
        print(
            f"  gen {evaluation.generation} {evaluation.genome_key[:12]} "
            f"energy {objectives['energy']:.4f} "
            f"slowdown {objectives['slowdown']:.4f} "
            f"fail {objectives['failure_rate']:.3f}{suffix}"
        )

    def on_generation(summary) -> None:
        if args.quiet:
            return
        print(
            f"generation {summary['generation']}: "
            f"front {summary['front_size']}, "
            f"hypervolume {summary['hypervolume']:.6f} "
            f"({summary['evaluated']} evaluated, {summary['cached']} cached)"
        )

    try:
        result = run_explore(
            spec,
            store_path=args.store,
            resume=args.resume,
            progress=progress,
            on_generation=on_generation,
            tracer=tracer,
        )
    except StoreError as error:
        raise SystemExit(str(error))
    improves = result.improves_on_default()
    print(
        f"search {result.key[:16]}: {len(result.evaluations)} genome(s) "
        f"evaluated, Pareto front of {len(result.front_keys)}"
    )
    print(
        "improves on paper default: "
        + (", ".join(improves) if improves else "none")
    )
    if args.store:
        print(f"evaluations stored in {args.store}")
    if args.json:
        write_report_json(result, args.json)
        print(f"Pareto report written to {args.json}")
    if args.html:
        write_explore_report(result, args.html)
        print(f"HTML report written to {args.html}")
    if tracer is not None and args.jsonl_out:
        from .telemetry import write_jsonl_path

        count = write_jsonl_path(
            args.jsonl_out, tracer.events, meta=tracer.meta
        )
        print(f"{count} search events -> {args.jsonl_out}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    import time

    from .experiments.spec_runs import run_spec_suite
    from .ioutil import atomic_write_json

    names = args.workloads.split(",") if args.workloads else None
    if names:
        unknown = [name for name in names if name not in SPEC_ORDER]
        if unknown:
            raise SystemExit(
                f"unknown SPEC proxies {unknown}; choose from {list(SPEC_ORDER)}"
            )
    systems = tuple(args.systems.split(","))
    tracing = args.trace or bool(args.metrics_out)
    started = time.perf_counter()
    try:
        runs = run_spec_suite(
            iterations=args.iterations,
            names=names,
            seed=args.seed,
            systems=systems,
            jobs=args.jobs,
            tracing=tracing,
            paranoid=args.paranoid,
            jit=args.jit,
        )
    except ValueError as error:  # e.g. an unknown --systems entry
        raise SystemExit(str(error))
    wall_s = time.perf_counter() - started

    header = f"{'workload':>12s}" + "".join(f"{s:>12s}" for s in systems)
    print(header)
    for name in runs.names():
        cells = "".join(
            f"{runs.by_system(system)[name].wall_ns / 1e3:12.2f}"
            for system in systems
        )
        print(f"{name:>12s}{cells}")
    print(
        f"{len(runs.names()) * len(systems)} runs in {wall_s:.2f} s "
        f"(jobs={args.jobs})"
    )
    if args.json:
        payload = {
            "iterations": args.iterations,
            "seed": args.seed,
            "jobs": args.jobs,
            "wall_s": wall_s,
            "systems": list(systems),
            "runs": {
                name: {
                    system: {
                        "wall_ns": runs.by_system(system)[name].wall_ns,
                        "instructions": runs.by_system(system)[name].instructions,
                        "recoveries": len(runs.by_system(system)[name].recoveries),
                    }
                    for system in systems
                }
                for name in runs.names()
            },
        }
        atomic_write_json(args.json, payload)
        print(f"report written to {args.json}")
    if args.metrics_out:
        merged = runs.merged_metrics()
        atomic_write_json(args.metrics_out, merged)
        print(
            f"merged metrics ({merged.get('merged_runs', 0)} runs) "
            f"written to {args.metrics_out}"
        )
    return 0


def _parse_granularities(value: str):
    from .lslog.segment import RollbackGranularity

    if value == "all":
        return list(RollbackGranularity)
    try:
        return [RollbackGranularity(value)]
    except ValueError:
        choices = [g.value for g in RollbackGranularity] + ["all"]
        raise SystemExit(f"unknown granularity {value!r}; choose from {choices}")


def cmd_diffcheck(args: argparse.Namespace) -> int:
    from .ioutil import atomic_write_json
    from .oracle import DifferentialRunner
    from .telemetry import Tracer, write_jsonl_path

    workload = resolve_workload(args.workload, args.scale)
    granularities = _parse_granularities(args.granularity)
    tracer = Tracer(command="diffcheck", workload=workload.name) if args.jsonl_out else None
    reports = []
    failed = False
    for granularity in granularities:
        runner = DifferentialRunner(
            workload,
            granularity=granularity,
            checkpoint_interval=args.checkpoint_interval,
            tracer=tracer,
            use_jit=not args.no_jit,
        )
        report = runner.run(max_instructions=args.max_instructions)
        reports.append(report)
        status = "ok" if report.ok else "DIVERGED"
        print(
            f"{workload.name:>12s} {granularity.value:>5s} "
            f"{report.instructions:8d} instr {report.segments:6d} segments "
            f"{status}"
        )
        if not report.ok:
            failed = True
            print(f"  {report.divergence.describe()}")
            for line in report.divergence.trace[-8:]:
                print(f"    {line}")
    if args.json:
        payload = {
            "workload": workload.name,
            "checkpoint_interval": args.checkpoint_interval,
            "ok": not failed,
            "reports": [report.to_dict() for report in reports],
        }
        atomic_write_json(args.json, payload)
        print(f"report written to {args.json}")
    if tracer is not None:
        count = write_jsonl_path(args.jsonl_out, tracer.events, meta=tracer.meta)
        print(f"{count} oracle events written to {args.jsonl_out}")
    return 1 if failed else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import time

    from .ioutil import atomic_write_json
    from .oracle import run_fuzz
    from .oracle.fuzzer import PROFILES

    profiles = tuple(args.profiles.split(",")) if args.profiles else tuple(PROFILES)
    unknown = [p for p in profiles if p not in PROFILES]
    if unknown:
        raise SystemExit(f"unknown profiles {unknown}; choose from {list(PROFILES)}")
    granularities = _parse_granularities(args.granularity)
    seeds = range(args.first_seed, args.first_seed + args.seeds)

    def progress(result) -> None:
        if not result.ok:
            print(
                f"DIVERGED seed {result.case.seed} profile "
                f"{result.case.profile}: {result.report.divergence.describe()}"
            )
            if result.shrunk_report is not None:
                print(
                    f"  shrunk to {len(result.shrunk.atoms)} atoms: "
                    f"{result.shrunk_report.divergence.describe()}"
                )
        elif args.verbose:
            print(
                f"ok seed {result.case.seed} {result.case.profile} "
                f"({result.report.instructions} instr)"
            )

    started = time.perf_counter()
    campaigns = []
    failures = 0
    for granularity in granularities:
        campaign = run_fuzz(
            seeds,
            profiles=profiles,
            granularity=granularity,
            checkpoint_interval=args.checkpoint_interval,
            shrink=not args.no_shrink,
            progress=progress,
            use_jit=not args.no_jit,
        )
        campaigns.append((granularity, campaign))
        failures += len(campaign.failures)
    wall_s = time.perf_counter() - started
    cases = sum(c.cases for _, c in campaigns)
    instructions = sum(c.instructions for _, c in campaigns)
    print(
        f"{cases} programs ({args.seeds} seeds x {len(profiles)} profiles "
        f"x {len(granularities)} granularities), {instructions} "
        f"instructions differentially checked in {wall_s:.1f} s: "
        f"{failures} divergences"
    )
    if args.json:
        payload = {
            "seeds": args.seeds,
            "first_seed": args.first_seed,
            "profiles": list(profiles),
            "wall_s": wall_s,
            "ok": failures == 0,
            "campaigns": {
                granularity.value: campaign.to_dict()
                for granularity, campaign in campaigns
            },
        }
        atomic_write_json(args.json, payload)
        print(f"report written to {args.json}")
    return 1 if failures else 0


def cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import (
        ext_multicore,
        ext_sram,
        fig08,
        fig09,
        fig10,
        fig11,
        fig12,
        fig13,
        sec6e,
    )

    figures = {
        "fig08": fig08,
        "fig09": fig09,
        "fig10": fig10,
        "fig11": fig11,
        "fig12": fig12,
        "fig13": fig13,
        "sec6e": sec6e,
        "ext_sram": ext_sram,
        "ext_multicore": ext_multicore,
    }
    module = figures.get(args.name)
    if module is None:
        raise SystemExit(f"unknown figure {args.name!r}; choose from {list(figures)}")
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ParaDox (HPCA 2021) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload on one system")
    run.add_argument("workload")
    run.add_argument("--system", choices=list(SYSTEMS), default="paradox")
    run.add_argument("--error-rate", type=float, default=0.0)
    run.add_argument("--dvs", action="store_true", help="enable dynamic voltage scaling")
    run.add_argument("--seed", type=int, default=12345)
    run.add_argument("--scale", type=float, default=1.0, help="workload size factor")
    run.add_argument("--timeline", action="store_true", help="print the event timeline")
    run.add_argument("--timeline-limit", type=int, default=40)
    run.add_argument(
        "--resilient",
        action="store_true",
        help="enable the resilience layer (forward-progress guard + quarantine)",
    )
    run.add_argument(
        "--paranoid",
        action="store_true",
        help="assert engine bookkeeping invariants at every segment boundary",
    )
    run.add_argument(
        "--jit",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the main core through the compiled superblock tier "
        "(bit-identical to interpretation; --no-jit forces the interpreter)",
    )
    run.add_argument(
        "--main-cores",
        type=int,
        default=1,
        help="main cores sharing one checker pool; the workload argument "
        "may be a comma list cycled across cores (see docs/MULTICORE.md)",
    )
    run.add_argument(
        "--pool-policy",
        choices=["static", "steal", "reserve"],
        default="steal",
        help="shared-pool arbitration with --main-cores > 1: static "
        "partition, work-stealing, or reserved stripes + shared overflow",
    )
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="run all four systems side by side")
    compare.add_argument("workload")
    compare.add_argument("--error-rate", type=float, default=0.0)
    compare.add_argument("--dvs", action="store_true")
    compare.add_argument("--seed", type=int, default=12345)
    compare.add_argument("--scale", type=float, default=1.0)
    compare.set_defaults(func=cmd_compare)

    workloads = sub.add_parser("workloads", help="list available workloads")
    workloads.set_defaults(func=cmd_workloads)

    figure = sub.add_parser("figure", help="regenerate a figure of the paper")
    figure.add_argument("name", help="fig08..fig13, sec6e, ext_sram, or ext_multicore")
    figure.set_defaults(func=cmd_figure)

    campaign = sub.add_parser(
        "campaign", help="crash-isolated fault-injection campaign"
    )
    campaign.add_argument("--workload", default="bitcount")
    campaign.add_argument("--scale", type=float, default=0.4)
    campaign.add_argument("--seeds", type=int, default=24)
    campaign.add_argument("--first-seed", type=int, default=0)
    campaign.add_argument(
        "--rate",
        type=float,
        action="append",
        help="fault rate; repeatable to sweep a grid (default 1e-4)",
    )
    campaign.add_argument(
        "--models",
        default="transient,burst,stuckat",
        help="comma list of fault-model mixes cycled across runs "
        "(transient, burst, stuckat, stuckat-global, sram, sram-uniform)",
    )
    campaign.add_argument(
        "--fault-model",
        action="append",
        metavar="MIX",
        help="fault-model mix; repeatable, overrides --models "
        "(e.g. --fault-model sram)",
    )
    campaign.add_argument(
        "--chip-seeds",
        type=int,
        default=1,
        help="simulated chips for the sram mixes: each chip seed is a "
        "fresh die with its own bit-cell fault map",
    )
    campaign.add_argument("--first-chip-seed", type=int, default=0)
    campaign.add_argument(
        "--voltage",
        type=float,
        default=None,
        help="pin the sram-map supply voltage (default: derived from "
        "the DVS warm start or the rate grid)",
    )
    campaign.add_argument("--no-dvs", action="store_true", help="disable the DVS controller")
    campaign.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        help="per-run wall-clock watchdog in seconds; a run exceeding it "
        "is terminated and classified 'hang' (timeout outcome) without "
        "stalling the sweep",
    )
    campaign.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="deprecated alias for --run-timeout (warns when used)",
    )
    campaign.add_argument("--workers", type=int, default=0, help="worker processes (0 = auto)")
    campaign.add_argument(
        "--main-cores",
        type=int,
        default=1,
        help="main cores sharing one checker pool per run; each main "
        "gets a derived-seed injector and the run's class is the worst "
        "outcome across mains",
    )
    campaign.add_argument(
        "--pool-policy",
        choices=["static", "steal", "reserve"],
        default="steal",
        help="shared-pool arbitration with --main-cores > 1",
    )
    campaign.add_argument("--json", help="write the full JSON report to this path")
    campaign.add_argument(
        "--metrics-out",
        help="write the merged telemetry metrics of all runs (enables tracing)",
    )
    campaign.add_argument(
        "--trace-out",
        help="write one merged Perfetto trace, one process per run "
        "(enables tracing)",
    )
    campaign.add_argument("--quiet", action="store_true", help="suppress per-run lines")
    campaign.add_argument(
        "--smoke", action="store_true", help="CI-sized campaign (overrides the grid flags)"
    )
    campaign.add_argument(
        "--store",
        help="persist every classified run into this SQLite campaign "
        "store, one transaction per run (safe to kill at any instant)",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already recorded in --store (content-addressed "
        "run keys; the resumed report is byte-identical to an "
        "uninterrupted run at any --workers width)",
    )
    campaign.add_argument(
        "--shard",
        metavar="K/N",
        help="run only the cells whose run-key hashes into shard K of N "
        "(1-based); shard stores merge cleanly via 'repro store merge'",
    )
    campaign.set_defaults(func=cmd_campaign)

    serve = sub.add_parser(
        "serve",
        help="long-lived HTTP job service: campaigns, fuzzing, suites "
        "(see docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8337, help="0 = ephemeral")
    serve.add_argument(
        "--work-dir",
        default="repro-service",
        help="directory for the service store and per-job event streams",
    )
    serve.add_argument(
        "--store",
        help="service store path (default: <work-dir>/campaigns.sqlite)",
    )
    serve.add_argument(
        "-v", "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.set_defaults(func=cmd_serve)

    report = sub.add_parser(
        "report", help="render a campaign store as a static HTML dashboard"
    )
    report.add_argument("store", help="campaign store file (SQLite)")
    report.add_argument(
        "--out", default="dashboard.html", help="output HTML path"
    )
    report.add_argument(
        "--campaign",
        help="render one campaign only (key prefix); default: all",
    )
    report.set_defaults(func=cmd_report)

    store = sub.add_parser(
        "store", help="inspect or consolidate campaign store files"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser("ls", help="list a store's campaigns")
    store_ls.add_argument("store", help="campaign store file")
    store_ls.set_defaults(func=cmd_store)
    store_merge = store_sub.add_parser(
        "merge",
        help="fold source stores into a destination store "
        "(idempotent; shard stores reassemble the full campaign)",
    )
    store_merge.add_argument("dest", help="destination store (created if absent)")
    store_merge.add_argument("sources", nargs="+", help="source store file(s)")
    store_merge.set_defaults(func=cmd_store)

    explore = sub.add_parser(
        "explore",
        help="evolutionary design-space search over the ParaDox config "
        "space (NSGA-II Pareto archive; see docs/EXPLORE.md)",
    )
    explore.add_argument("--workload", default="bitcount")
    explore.add_argument("--scale", type=float, default=0.3)
    explore.add_argument(
        "--generations",
        type=int,
        default=4,
        help="generations after the seeded generation 0",
    )
    explore.add_argument(
        "--population", type=int, default=8, help="genomes per generation"
    )
    explore.add_argument(
        "--seed",
        type=int,
        default=0,
        help="search seed: drives sampling, crossover and mutation "
        "(same seed + same store => byte-identical Pareto report)",
    )
    explore.add_argument(
        "--eval-seeds",
        type=int,
        default=4,
        help="injection seeds per genome evaluation campaign",
    )
    explore.add_argument("--first-eval-seed", type=int, default=0)
    explore.add_argument(
        "--rate",
        type=float,
        default=3e-4,
        help="fault rate every evaluation campaign injects at",
    )
    explore.add_argument(
        "--model",
        default="transient",
        help="fault-model mix for the evaluation campaigns",
    )
    explore.add_argument(
        "--initial-margin",
        type=float,
        default=0.15,
        help="starting undervolt margin handed to the DVS controller",
    )
    explore.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        help="per-run wall-clock watchdog in seconds (see 'repro "
        "campaign --run-timeout')",
    )
    explore.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="deprecated alias for --run-timeout (warns when used)",
    )
    explore.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes per evaluation campaign (0 = auto); the "
        "search trajectory is identical at any width",
    )
    explore.add_argument(
        "--store",
        help="persist every genome evaluation (and its campaign's runs) "
        "into this SQLite campaign store",
    )
    explore.add_argument(
        "--resume",
        action="store_true",
        help="replay recorded evaluations from --store and continue the "
        "interrupted search; the finished report is byte-identical to "
        "an uninterrupted run",
    )
    explore.add_argument(
        "--json", help="write the canonical Pareto-front report to this path"
    )
    explore.add_argument(
        "--html", help="write the self-contained HTML report to this path"
    )
    explore.add_argument(
        "--jsonl-out", help="write search telemetry events to this path"
    )
    explore.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-evaluation and per-generation lines",
    )
    explore.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized search (overrides the search flags)",
    )
    explore.set_defaults(func=cmd_explore)

    suite = sub.add_parser(
        "suite", help="run the shared SPEC-proxy suite (figures 10/12/13)"
    )
    suite.add_argument("--iterations", type=int, default=30)
    suite.add_argument("--seed", type=int, default=12345)
    suite.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial, 0 = auto); results are "
        "bit-identical at any width",
    )
    suite.add_argument(
        "--workloads",
        help="comma list of SPEC proxies (default: all nineteen)",
    )
    suite.add_argument(
        "--systems",
        default="baseline,detection,paramedic,paradox",
        help="comma list of systems to simulate",
    )
    suite.add_argument("--json", help="write per-run wall times to this path")
    suite.add_argument(
        "--trace", action="store_true", help="record telemetry for every run"
    )
    suite.add_argument(
        "--metrics-out",
        help="write the suite's merged metrics report (implies --trace)",
    )
    suite.add_argument(
        "--paranoid",
        action="store_true",
        help="assert engine bookkeeping invariants during every run",
    )
    suite.add_argument(
        "--jit",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run main cores through the compiled superblock tier "
        "(--no-jit forces the interpreter everywhere)",
    )
    suite.set_defaults(func=cmd_suite)

    trace = sub.add_parser(
        "trace",
        help="simulate one workload with telemetry and export the trace",
    )
    trace.add_argument("workload")
    trace.add_argument("--system", choices=list(SYSTEMS), default="paradox")
    trace.add_argument("--error-rate", type=float, default=0.0)
    trace.add_argument(
        "--no-dvs",
        action="store_true",
        help="disable dynamic voltage scaling (paradox defaults to DVS on "
        "so the trace carries a voltage counter track)",
    )
    trace.add_argument("--seed", type=int, default=12345)
    trace.add_argument("--scale", type=float, default=1.0)
    trace.add_argument(
        "--resilient",
        action="store_true",
        help="enable the resilience layer (paradox only)",
    )
    trace.add_argument(
        "--out", help="write Perfetto trace_event JSON to this path"
    )
    trace.add_argument(
        "--jsonl-out", help="write the versioned JSONL event stream to this path"
    )
    trace.add_argument(
        "--metrics-out", help="write the run's metrics summary to this path"
    )
    trace.add_argument(
        "--jit",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the main core through the compiled superblock tier "
        "(--no-jit forces the interpreter)",
    )
    trace.set_defaults(func=cmd_trace)

    diffcheck = sub.add_parser(
        "diffcheck",
        help="differentially execute a workload: reference ISS vs "
        "executor vs checker replay",
    )
    diffcheck.add_argument("workload")
    diffcheck.add_argument("--scale", type=float, default=1.0)
    diffcheck.add_argument(
        "--granularity",
        default="all",
        help="rollback granularity to log under: word, line, none, or all",
    )
    diffcheck.add_argument(
        "--checkpoint-interval",
        type=int,
        default=61,
        help="instructions per checkpoint boundary",
    )
    diffcheck.add_argument(
        "--max-instructions", type=int, default=None, help="cap the run length"
    )
    diffcheck.add_argument("--json", help="write the JSON report to this path")
    diffcheck.add_argument(
        "--jsonl-out", help="write oracle telemetry events to this path"
    )
    diffcheck.add_argument(
        "--no-jit",
        action="store_true",
        help="escape hatch: drive the executor leg through the pure "
        "interpreter instead of the compiled superblock tier",
    )
    diffcheck.set_defaults(func=cmd_diffcheck)

    fuzz = sub.add_parser(
        "fuzz",
        help="property-based ISA program fuzzing through the "
        "differential oracle",
    )
    fuzz.add_argument("--seeds", type=int, default=50, help="number of seeds")
    fuzz.add_argument("--first-seed", type=int, default=1)
    fuzz.add_argument(
        "--profiles",
        default="",
        help="comma-separated program profiles (default: all)",
    )
    fuzz.add_argument(
        "--granularity",
        default="line",
        help="rollback granularity: word, line, none, or all",
    )
    fuzz.add_argument("--checkpoint-interval", type=int, default=61)
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip minimisation of diverging programs",
    )
    fuzz.add_argument("--json", help="write the JSON report to this path")
    fuzz.add_argument(
        "--no-jit",
        action="store_true",
        help="escape hatch: fuzz the pure interpreter instead of the "
        "compiled superblock tier",
    )
    fuzz.add_argument(
        "-v", "--verbose", action="store_true", help="print every seed"
    )
    fuzz.set_defaults(func=cmd_fuzz)

    return parser


def main(argv: Optional["list[str]"] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
