"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one workload on one system, optionally with injected
  errors or DVS, and print the run summary (plus a timeline with
  ``--timeline``).
* ``workloads`` — list every built-in workload.
* ``figure`` — regenerate one of the paper's figures.
* ``compare`` — run a workload on all four systems side by side.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from .config import table1_config
from .core import (
    BaselineSystem,
    DetectionOnlySystem,
    ParaDoxSystem,
    ParaMedicSystem,
    System,
)
from .stats import render_checker_gantt, render_timeline
from .workloads import (
    SPEC_ORDER,
    Workload,
    build_bitcount,
    build_crc32,
    build_matmul,
    build_quicksort,
    build_spec_workload,
    build_stream,
)

#: Workload-name -> builder; SPEC proxies resolve through their own table.
WORKLOAD_BUILDERS: Dict[str, Callable[..., Workload]] = {
    "bitcount": lambda scale: build_bitcount(values=int(100 * scale)),
    "stream": lambda scale: build_stream(elements=256, passes=max(1, int(scale))),
    "matmul": lambda scale: build_matmul(n=max(4, int(10 * scale))),
    "quicksort": lambda scale: build_quicksort(elements=int(96 * scale)),
    "crc32": lambda scale: build_crc32(length_words=int(24 * scale)),
}

SYSTEMS: Dict[str, Callable[..., System]] = {
    "baseline": lambda config, dvs: BaselineSystem(config=config),
    "detection": lambda config, dvs: DetectionOnlySystem(config=config),
    "paramedic": lambda config, dvs: ParaMedicSystem(config=config),
    "paradox": lambda config, dvs: ParaDoxSystem(config=config, dvs=dvs),
}


def resolve_workload(name: str, scale: float) -> Workload:
    if name in WORKLOAD_BUILDERS:
        return WORKLOAD_BUILDERS[name](scale)
    if name in SPEC_ORDER:
        return build_spec_workload(name, iterations=max(2, int(20 * scale)))
    known = ", ".join(list(WORKLOAD_BUILDERS) + SPEC_ORDER)
    raise SystemExit(f"unknown workload {name!r}; choose from: {known}")


def cmd_workloads(_args: argparse.Namespace) -> int:
    print("built-in kernels:")
    for name in WORKLOAD_BUILDERS:
        workload = resolve_workload(name, 0.5)
        print(f"  {name:12s} {workload.description or workload.category}")
    print("SPEC CPU2006 proxies:")
    for name in SPEC_ORDER:
        print(f"  {name}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = resolve_workload(args.workload, args.scale)
    config = table1_config().with_error_rate(args.error_rate, seed=args.seed)
    system = SYSTEMS[args.system](config, args.dvs)
    engine = system.engine(workload, seed=args.seed)
    if args.timeline:
        from .stats import Timeline

        engine.options.record_timeline = True
        engine.timeline = Timeline()
    result = engine.run(workload.max_instructions)
    print(result.summary())
    if args.timeline and engine.timeline is not None:
        print()
        print(render_timeline(engine.timeline, limit=args.timeline_limit))
        print()
        print(render_checker_gantt(engine.timeline))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = resolve_workload(args.workload, args.scale)
    config = table1_config().with_error_rate(args.error_rate, seed=args.seed)
    baseline: Optional[float] = None
    print(f"{'system':>12s} {'wall us':>10s} {'slowdown':>9s} {'errors':>7s}")
    for name, factory in SYSTEMS.items():
        system = factory(config, args.dvs)
        result = system.run(workload, seed=args.seed)
        if baseline is None:
            baseline = result.wall_ns
        print(
            f"{name:>12s} {result.wall_ns / 1e3:10.2f} "
            f"{result.wall_ns / baseline:9.3f} {result.errors_detected:7d}"
        )
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import fig08, fig09, fig10, fig11, fig12, fig13, sec6e

    figures = {
        "fig08": fig08,
        "fig09": fig09,
        "fig10": fig10,
        "fig11": fig11,
        "fig12": fig12,
        "fig13": fig13,
        "sec6e": sec6e,
    }
    module = figures.get(args.name)
    if module is None:
        raise SystemExit(f"unknown figure {args.name!r}; choose from {list(figures)}")
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ParaDox (HPCA 2021) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload on one system")
    run.add_argument("workload")
    run.add_argument("--system", choices=list(SYSTEMS), default="paradox")
    run.add_argument("--error-rate", type=float, default=0.0)
    run.add_argument("--dvs", action="store_true", help="enable dynamic voltage scaling")
    run.add_argument("--seed", type=int, default=12345)
    run.add_argument("--scale", type=float, default=1.0, help="workload size factor")
    run.add_argument("--timeline", action="store_true", help="print the event timeline")
    run.add_argument("--timeline-limit", type=int, default=40)
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="run all four systems side by side")
    compare.add_argument("workload")
    compare.add_argument("--error-rate", type=float, default=0.0)
    compare.add_argument("--dvs", action="store_true")
    compare.add_argument("--seed", type=int, default=12345)
    compare.add_argument("--scale", type=float, default=1.0)
    compare.set_defaults(func=cmd_compare)

    workloads = sub.add_parser("workloads", help="list available workloads")
    workloads.set_defaults(func=cmd_workloads)

    figure = sub.add_parser("figure", help="regenerate a figure of the paper")
    figure.add_argument("name", help="fig08..fig13 or sec6e")
    figure.set_defaults(func=cmd_figure)

    return parser


def main(argv: Optional["list[str]"] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
