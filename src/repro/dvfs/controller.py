"""Dynamic voltage adaptation (section IV-B).

The controller drives the main core's supply voltage *below* the margined
safe point, deliberately into error-seeking territory, and relies on the
fault-tolerance machinery to mop up the consequences:

* AIMD on the *difference* ``safe_voltage - target``: each error-free
  checkpoint widens the difference by a small step (lower voltage); an
  observed error multiplies the difference by 0.875 (raising voltage —
  the paper rejects plain halving as it "would spend a significant
  amount of time using more power than is strictly necessary").
* A *tide mark* records the highest voltage at which an error has been
  seen; below it the voltage decrease slows by 8x, keeping the system
  hovering in the productive region.  The tide mark resets every 100
  errors so a phase change back to a more tolerant region is found.
* The AIMD value is only a *target*: the regulator slews the actual
  voltage towards it at a bounded rate, avoiding self-inflicted voltage
  spikes.  While the actual voltage is below target, clock frequency
  scales as ``f = f_target * (v - v_th) / (v_target - v_th)`` so timing
  stays safe during the transition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..config import DvfsConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry import Tracer


@dataclass
class DvfsStats:
    """Aggregates for the voltage trace analysis (figure 11)."""

    errors_observed: int = 0
    tide_resets: int = 0
    #: Forward-progress escalations: forced jumps toward the safe voltage.
    escalations: int = 0
    #: (time_ns, actual_voltage) samples, one per checkpoint.
    trace: List[Tuple[float, float]] = field(default_factory=list)
    #: Highest voltage at which any error was ever seen (never reset).
    highest_error_voltage: float = 0.0

    def mean_voltage(self, from_ns: float = 0.0) -> float:
        """Time-weighted mean of the recorded voltage trace."""
        samples = [(t, v) for t, v in self.trace if t >= from_ns]
        if len(samples) < 2:
            return samples[0][1] if samples else 0.0
        total = 0.0
        duration = samples[-1][0] - samples[0][0]
        if duration <= 0:
            return samples[-1][1]
        for (t0, v0), (t1, _v1) in zip(samples, samples[1:]):
            total += v0 * (t1 - t0)
        return total / duration


class VoltageController:
    """AIMD voltage targetting with tide-mark slowdown and slewed output."""

    def __init__(
        self,
        config: DvfsConfig,
        target_frequency_hz: float,
        dynamic_decrease: bool = True,
    ) -> None:
        self.config = config
        self.target_frequency_hz = target_frequency_hz
        #: When False, the decrease rate is constant (the "Constant
        #: Decrease" comparator of figure 11).
        self.dynamic_decrease = dynamic_decrease
        self._difference = config.initial_difference  # safe_voltage - target
        self._actual = max(
            config.safe_voltage - config.initial_difference, config.min_voltage
        )
        self._tide_mark: float = 0.0  # highest voltage of a recent error
        self._errors_since_reset = 0
        self._last_advance_ns = 0.0
        #: While True (set by escalate), the AIMD law may not move the
        #: target away from the safe voltage: a rollback storm closes a
        #: checkpoint per retry, and those per-checkpoint decreases would
        #: otherwise outrun the escalation and pin the supply low.
        self._escalation_hold = False
        self.stats = DvfsStats()
        #: Telemetry bus (set by the engine when tracing is enabled);
        #: emission sites are checkpoint-granular, never per instruction.
        self.tracer: Optional["Tracer"] = None

    # -- voltage state ----------------------------------------------------------
    @property
    def target_voltage(self) -> float:
        return max(self.config.safe_voltage - self._difference, self.config.min_voltage)

    @property
    def voltage(self) -> float:
        """Actual (slewed) supply voltage."""
        return self._actual

    @property
    def tide_mark(self) -> float:
        return self._tide_mark

    # -- frequency ---------------------------------------------------------------
    @property
    def frequency_hz(self) -> float:
        """Current clock: scaled down while actual voltage trails target.

        ``f = f_target * (v - v_th) / (v_target - v_th)`` (section IV-B),
        clamped to the target frequency when the regulator has caught up
        or overshoots upward.
        """
        v_th = self.config.threshold_voltage
        target = self.target_voltage
        if self._actual >= target or target <= v_th:
            return self.target_frequency_hz
        return self.target_frequency_hz * (self._actual - v_th) / (target - v_th)

    # -- events ---------------------------------------------------------------------
    def on_checkpoint(self, error_observed: bool, now_ns: float) -> None:
        """Advance the AIMD law at a checkpoint boundary."""
        self.advance_to(now_ns)
        config = self.config
        tracer = self.tracer
        if error_observed:
            self.stats.errors_observed += 1
            self._errors_since_reset += 1
            if self._actual > self._tide_mark:
                self._tide_mark = self._actual
                if tracer is not None:
                    tracer.emit(
                        "dvfs", "tide_mark", time_ns=now_ns, value=self._tide_mark
                    )
            if self._actual > self.stats.highest_error_voltage:
                self.stats.highest_error_voltage = self._actual
            # Multiplicative recovery towards the safe voltage.
            self._difference *= config.recovery_factor
            if self._errors_since_reset >= config.tide_reset_errors:
                self._tide_mark = 0.0
                self._errors_since_reset = 0
                self.stats.tide_resets += 1
                if tracer is not None:
                    tracer.emit("dvfs", "tide_reset", time_ns=now_ns)
                    tracer.metrics.inc("dvfs.tide_resets")
        elif not self._escalation_hold:
            step = config.step_volts
            if self.dynamic_decrease and self.target_voltage <= self._tide_mark:
                step /= config.tide_slowdown
            self._difference += step
        max_difference = config.safe_voltage - config.min_voltage
        if self._difference > max_difference:
            self._difference = max_difference
        self.stats.trace.append((now_ns, self._actual))
        if tracer is not None:
            tracer.emit(
                "dvfs",
                "voltage",
                time_ns=now_ns,
                value=self._actual,
                detail="error" if error_observed else "",
            )
            tracer.metrics.inc("dvfs.checkpoints")
            if error_observed:
                tracer.metrics.inc("dvfs.errors_observed")

    # -- forward-progress escalation ---------------------------------------------
    @property
    def at_safe_voltage(self) -> bool:
        """Is the supply (target and actual) back at the margined safe point?"""
        safe = self.config.safe_voltage
        return self._difference <= 1e-9 and self._actual >= safe - 1e-9

    def escalate(self, now_ns: float, factor: float = 0.5) -> float:
        """Forced recovery step toward the safe voltage (forward progress).

        Unlike the AIMD error response (a gentle ``recovery_factor``
        multiply), escalation halves the remaining gap to the safe
        voltage each call — a rollback storm that AIMD cannot outrun is
        resolved in a handful of steps.  The regulator still slews the
        actual voltage, so the caller keeps escalating until
        :attr:`at_safe_voltage` reports the supply has truly caught up.
        Returns the new target voltage.
        """
        if not 0 <= factor < 1:
            raise ValueError(f"factor must be within [0, 1), got {factor}")
        self.advance_to(now_ns)
        self._escalation_hold = True
        self._difference *= factor
        if self._difference < self.config.step_volts:
            self._difference = 0.0
        self.stats.escalations += 1
        self.stats.trace.append((now_ns, self._actual))
        if self.tracer is not None:
            self.tracer.emit(
                "dvfs", "escalate", time_ns=now_ns, value=self.target_voltage
            )
            self.tracer.metrics.inc("dvfs.escalations")
        return self.target_voltage

    def release_hold(self) -> None:
        """Forward progress resumed: let the AIMD law seek errors again."""
        if self._escalation_hold and self.tracer is not None:
            self.tracer.emit("dvfs", "hold_release")
        self._escalation_hold = False

    def advance_to(self, now_ns: float) -> None:
        """Slew the actual voltage towards the target."""
        elapsed_us = (now_ns - self._last_advance_ns) / 1000.0
        if elapsed_us <= 0:
            return
        self._last_advance_ns = now_ns
        max_delta = self.config.slew_volts_per_us * elapsed_us
        target = self.target_voltage
        if self._actual < target:
            self._actual = min(self._actual + max_delta, target)
        elif self._actual > target:
            self._actual = max(self._actual - max_delta, target)
