"""Dynamic voltage and frequency scaling (section IV-B)."""

from .controller import DvfsStats, VoltageController

__all__ = ["DvfsStats", "VoltageController"]
