"""Main-core timing model: a cycle-approximate 3-wide out-of-order core.

A greedy scoreboard over the committed instruction stream, the standard
"interval" style of OoO approximation: each retiring instruction issues as
soon as its source registers are ready (register dependencies), subject to
the ROB window (an instruction cannot issue until the instruction
``rob_entries`` older has committed), front-end availability (I-cache
latency and branch-mispredict redirects) and per-functional-unit
latencies; commit retires at most ``commit_width`` instructions per cycle
in order.

This reproduces the first-order behaviour that matters to ParaDox:
dependence-limited IPC for compute loops, miss-latency exposure for
memory-bound code, mispredict penalties, and the 16-cycle commit block at
each register checkpoint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from ..config import MAIN_FU_LATENCY, MainCoreConfig
from ..isa import StepInfo
from ..memory.cache import MemoryHierarchy
from .branch_predictor import TournamentPredictor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isa import Program


@dataclass
class MainCoreStats:
    """Aggregate timing statistics for the main core."""

    instructions: int = 0
    checkpoint_blocks: int = 0
    stall_cycles: float = 0.0  # cycles spent waiting for checkers / conflicts

    def reset(self) -> None:
        self.instructions = 0
        self.checkpoint_blocks = 0
        self.stall_cycles = 0.0


class MainCoreTiming:
    """Commit-time calculator for the out-of-order main core.

    All times are in *main-core cycles* as floats; the engine converts to
    wall-clock using the (DVFS-scaled) frequency of the current interval.
    """

    def __init__(
        self,
        config: MainCoreConfig,
        hierarchy: MemoryHierarchy,
        predictor: TournamentPredictor,
        program: Optional["Program"] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = predictor
        self._latency = {unit: MAIN_FU_LATENCY[unit.value] for unit in _ALL_UNITS}
        #: Per-PC (unit latency, is_load, is_branch) when a program is
        #: known: these are static instruction properties, so hoist the
        #: enum/frozenset probes out of :meth:`commit`'s per-instruction
        #: path.  Without a program the dynamic fallback is used.
        self._static: Optional["list[Tuple[float, bool, bool]]"] = None
        if program is not None:
            latency = self._latency
            self._static = [
                (
                    float(latency[instruction.unit]),
                    instruction.is_load,
                    instruction.is_branch,
                )
                for instruction in program.instructions
            ]
        #: Completion cycle per register tag.
        self._reg_ready: Dict[Tuple[str, int], float] = {}
        #: Commit cycles of the youngest ``rob_entries`` instructions.
        self._rob: Deque[float] = deque(maxlen=config.rob_entries)
        #: Earliest cycle the front end can supply the next instruction.
        self._fetch_ready: float = 0.0
        #: Commit cursor: cycle of the most recent commit.
        self.now: float = 0.0
        self._commit_slot = 1.0 / config.commit_width
        self._last_fetch_line: Optional[int] = None
        self.stats = MainCoreStats()

    # -- main entry point -------------------------------------------------------------
    def commit(self, info: StepInfo) -> float:
        """Account one retired instruction; return its commit cycle."""
        config = self.config
        fetch_ready = self._fetch_cost(info.pc_before)

        ready = fetch_ready
        for tag in info.reads:
            when = self._reg_ready.get(tag)
            if when is not None and when > ready:
                ready = when
        if len(self._rob) == config.rob_entries and self._rob[0] > ready:
            ready = self._rob[0]  # ROB full: wait for the oldest to commit

        instruction = info.instruction
        static = self._static
        if static is not None:
            latency, is_load, is_branch = static[info.pc_before]
        else:
            latency = float(self._latency[instruction.unit])
            is_load = instruction.is_load
            is_branch = instruction.is_branch
        if info.address is not None:
            access = self.hierarchy.data_access(info.address, pc=info.pc_before)
            if is_load:
                latency = float(access.latency_cycles)
            # Stores retire into the store queue; their miss latency is
            # hidden, only occupancy matters (not modelled per-slot).
        complete = ready + latency

        commit = complete
        floor = self.now + self._commit_slot
        if commit < floor:
            commit = floor
        self._rob.append(commit)
        self.now = commit
        if info.dest is not None:
            self._reg_ready[info.dest] = complete
        if is_branch:
            mispredicted = self.predictor.access(
                info.pc_before, instruction, bool(info.taken), info.pc_after
            )
            if mispredicted:
                redirect = complete + self.predictor.config.mispredict_penalty_cycles
                if redirect > self._fetch_ready:
                    self._fetch_ready = redirect
        self.stats.instructions += 1
        return commit

    def _fetch_cost(self, pc: int) -> float:
        """Front-end availability for the instruction at ``pc``."""
        line = (pc * 4) >> 6  # 16 instructions per 64-byte line
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            latency = self.hierarchy.fetch_access(pc * 4)
            if latency > 1:
                # A miss delays the front end from now.
                stall_until = self.now + latency
                if stall_until > self._fetch_ready:
                    self._fetch_ready = stall_until
        return self._fetch_ready

    # -- engine hooks --------------------------------------------------------------------
    def block_commit(self, cycles: float) -> None:
        """Block commit for ``cycles`` (register checkpointing, 16 cycles)."""
        self.now += cycles
        self._fetch_ready = max(self._fetch_ready, self.now)
        self.stats.checkpoint_blocks += 1

    def stall_until(self, cycle: float) -> float:
        """Stall the core until ``cycle`` (checker busy / L1 conflict).

        Returns the stall length in cycles (0 if already past it).
        """
        if cycle > self.now:
            stalled = cycle - self.now
            self.stats.stall_cycles += stalled
            self.now = cycle
            self._fetch_ready = max(self._fetch_ready, self.now)
            return stalled
        return 0.0

    def discard_inflight(self) -> None:
        """Squash speculative scoreboard state (used on rollback)."""
        self._reg_ready.clear()
        self._rob.clear()
        self._fetch_ready = max(self._fetch_ready, self.now)
        self._last_fetch_line = None


from ..isa import FunctionalUnit as _FU  # noqa: E402  (constant table below)

_ALL_UNITS = tuple(_FU)
