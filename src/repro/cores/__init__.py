"""Core models: out-of-order main core, in-order checker cores."""

from .branch_predictor import BranchStats, TournamentPredictor
from .checker_core import CheckResult, CheckerCore, SegmentFaultHook, TIMEOUT_FACTOR
from .icache_model import (
    ICachePenalty,
    L0_MISS_CYCLES,
    L1_MISS_CYCLES,
    icache_penalty,
    miss_probability,
)
from .main_core import MainCoreStats, MainCoreTiming

__all__ = [
    "BranchStats",
    "CheckResult",
    "CheckerCore",
    "ICachePenalty",
    "L0_MISS_CYCLES",
    "L1_MISS_CYCLES",
    "MainCoreStats",
    "MainCoreTiming",
    "SegmentFaultHook",
    "TIMEOUT_FACTOR",
    "TournamentPredictor",
    "icache_penalty",
    "miss_probability",
]
