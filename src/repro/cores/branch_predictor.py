"""Tournament branch predictor (Table I, "Tournament Branch Pred.").

A faithful functional model of the classic Alpha-21264-style tournament
predictor the paper configures under gem5:

* a *local* predictor: 2048-entry local-history table feeding 2-bit
  saturating counters;
* a *global* predictor: gshare over 13 bits of global history into an
  8192-entry counter table;
* a 2048-entry *chooser* of 2-bit counters selecting between them;
* a 2048-entry branch target buffer (direct targets);
* a 16-entry return address stack for call/return pairs.

The timing model charges the mispredict penalty whenever the predicted
direction or target disagrees with the resolved branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import BranchPredictorConfig
from ..isa import Instruction, Opcode


def _saturate(counter: int, taken: bool) -> int:
    """Advance a 2-bit saturating counter."""
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)


@dataclass
class BranchStats:
    """Prediction accuracy counters."""

    branches: int = 0
    mispredicts: int = 0
    btb_misses: int = 0
    ras_mispredicts: int = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def reset(self) -> None:
        self.branches = self.mispredicts = 0
        self.btb_misses = self.ras_mispredicts = 0


class TournamentPredictor:
    """Local/global tournament predictor with BTB and RAS."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None) -> None:
        self.config = config or BranchPredictorConfig()
        c = self.config
        self._local_history: List[int] = [0] * c.local_entries
        self._local_counters: List[int] = [2] * c.local_entries
        self._global_counters: List[int] = [2] * c.global_entries
        self._chooser: List[int] = [2] * c.chooser_entries  # >=2 favours global
        self._global_history = 0
        self._btb: List[Optional[int]] = [None] * c.btb_entries
        self._btb_tags: List[Optional[int]] = [None] * c.btb_entries
        self._ras: List[int] = []
        self.stats = BranchStats()

    # -- direction prediction --------------------------------------------------
    def _local_index(self, pc: int) -> int:
        return pc % self.config.local_entries

    def _predict_direction(self, pc: int) -> "tuple[bool, bool, bool]":
        """Return (prediction, local_prediction, global_prediction)."""
        c = self.config
        local_idx = self._local_index(pc)
        history = self._local_history[local_idx]
        local_counter_idx = (history ^ pc) % c.local_entries
        local_pred = self._local_counters[local_counter_idx] >= 2
        global_idx = (self._global_history ^ pc) % c.global_entries
        global_pred = self._global_counters[global_idx] >= 2
        chooser_idx = self._global_history % c.chooser_entries
        use_global = self._chooser[chooser_idx] >= 2
        return (global_pred if use_global else local_pred), local_pred, global_pred

    # -- the full access -----------------------------------------------------------
    def access(self, pc: int, instruction: Instruction, taken: bool, target: int) -> bool:
        """Predict and train on one resolved branch; return True on mispredict."""
        self.stats.branches += 1
        opcode = instruction.opcode
        mispredicted = False

        if opcode is Opcode.JAL:
            # Calls: direction always taken, target known at decode; push RAS.
            self._push_ras(pc + 1)
            predicted_target = self._btb_lookup(pc)
            if predicted_target != target:
                self._btb_update(pc, target)
                self.stats.btb_misses += 1
                mispredicted = True
        elif opcode is Opcode.JALR:
            # Returns/indirect: predict via RAS.
            predicted_target = self._pop_ras()
            if predicted_target != target:
                self.stats.ras_mispredicts += 1
                mispredicted = True
        elif opcode is Opcode.B:
            predicted_target = self._btb_lookup(pc)
            if predicted_target != target:
                self._btb_update(pc, target)
                self.stats.btb_misses += 1
                mispredicted = True
        else:
            prediction, local_pred, global_pred = self._predict_direction(pc)
            if prediction != taken:
                mispredicted = True
            if taken and self._btb_lookup(pc) != target:
                self._btb_update(pc, target)
                if not mispredicted:
                    self.stats.btb_misses += 1
                    mispredicted = True
            self._train_direction(pc, taken, local_pred, global_pred)

        if mispredicted:
            self.stats.mispredicts += 1
        return mispredicted

    def _train_direction(
        self, pc: int, taken: bool, local_pred: bool, global_pred: bool
    ) -> None:
        c = self.config
        local_idx = self._local_index(pc)
        history = self._local_history[local_idx]
        local_counter_idx = (history ^ pc) % c.local_entries
        global_idx = (self._global_history ^ pc) % c.global_entries
        chooser_idx = self._global_history % c.chooser_entries
        # Chooser trains towards whichever component was right.
        if local_pred != global_pred:
            self._chooser[chooser_idx] = _saturate(
                self._chooser[chooser_idx], global_pred == taken
            )
        self._local_counters[local_counter_idx] = _saturate(
            self._local_counters[local_counter_idx], taken
        )
        self._global_counters[global_idx] = _saturate(
            self._global_counters[global_idx], taken
        )
        # Histories.
        mask_local = (1 << c.local_history_bits) - 1
        self._local_history[local_idx] = ((history << 1) | int(taken)) & mask_local
        mask_global = (1 << c.global_history_bits) - 1
        self._global_history = ((self._global_history << 1) | int(taken)) & mask_global

    # -- BTB ----------------------------------------------------------------------------
    def _btb_lookup(self, pc: int) -> Optional[int]:
        index = pc % self.config.btb_entries
        if self._btb_tags[index] == pc:
            return self._btb[index]
        return None

    def _btb_update(self, pc: int, target: int) -> None:
        index = pc % self.config.btb_entries
        self._btb_tags[index] = pc
        self._btb[index] = target

    # -- RAS ------------------------------------------------------------------------------
    def _push_ras(self, return_pc: int) -> None:
        self._ras.append(return_pc)
        if len(self._ras) > self.config.ras_entries:
            self._ras.pop(0)

    def _pop_ras(self) -> Optional[int]:
        return self._ras.pop() if self._ras else None

    def reset(self) -> None:
        """Forget all state (used between independent runs)."""
        self.__init__(self.config)
