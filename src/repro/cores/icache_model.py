"""Checker-core instruction-cache model.

Each checker core has a tiny private L0 I-cache (8 KiB) backed by a
32 KiB L1 shared between the sixteen checkers (Table I).  The paper
attributes the detection-only overhead of gobmk, povray, h264ref, omnetpp
and xalancbmk to "frequent misses in the checker cores' private
instruction caches" (section VI-C).

Simulating every checker fetch through a cache would dominate run time,
so checking cost uses a steady-state analytic model, standard practice
for warm loops:

* Instructions occupy 4 bytes; a 64-byte line holds 16 instructions, so
  at most 1/16 of instructions can miss in steady state.
* For a (near-)uniformly revisited code footprint ``T`` and a cache of
  size ``C``, the steady-state probability that the next line touched is
  absent is approximately ``max(0, 1 - C/T)``.
* An L0 miss that hits the shared L1 costs ``L0_MISS_CYCLES``; a miss in
  the shared L1 (footprint beyond 32 KiB) escalates to the main L2 with
  ``L1_MISS_CYCLES``.

The result is an *additional cycles per instruction* figure folded into
checker timing.  Workloads whose text fits in 8 KiB (bitcount, stream,
most SPEC proxies' hot loops) pay nothing, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CheckerConfig

INSTRUCTION_BYTES = 4
LINE_BYTES = 64
INSTRUCTIONS_PER_LINE = LINE_BYTES // INSTRUCTION_BYTES

#: Checker cycles to refill an L0 line from the shared L1.
L0_MISS_CYCLES = 4
#: Checker cycles to refill from the L2 beyond the shared L1.
L1_MISS_CYCLES = 20


@dataclass(frozen=True)
class ICachePenalty:
    """Decomposed checker I-cache penalty."""

    l0_miss_rate: float  # per instruction
    l1_miss_rate: float  # per instruction
    cycles_per_instruction: float


def miss_probability(footprint_bytes: int, cache_bytes: int) -> float:
    """Steady-state line-absence probability for a revisited footprint."""
    if footprint_bytes <= cache_bytes or footprint_bytes == 0:
        return 0.0
    return 1.0 - cache_bytes / footprint_bytes


def icache_penalty(text_bytes: int, config: CheckerConfig) -> ICachePenalty:
    """Per-instruction I-cache penalty for a checker running ``text_bytes``."""
    line_touch_rate = 1.0 / INSTRUCTIONS_PER_LINE
    p_l0 = miss_probability(text_bytes, config.l0_icache_bytes)
    p_l1 = miss_probability(text_bytes, config.shared_l1_icache_bytes)
    l0_miss_rate = line_touch_rate * p_l0
    l1_miss_rate = line_touch_rate * p_l1
    cycles = l0_miss_rate * L0_MISS_CYCLES + l1_miss_rate * L1_MISS_CYCLES
    return ICachePenalty(l0_miss_rate, l1_miss_rate, cycles)
