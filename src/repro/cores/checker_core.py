"""Checker-core model: functional re-execution plus in-order timing.

A checker core receives a closed log segment together with the
architectural state at the previous checkpoint, re-executes the segment's
instructions with loads served from the log, compares every store and the
final architectural state, and reports either success or a detection
(figure 7's channels).

Timing is in *checker cycles* (1 GHz domain): an in-order 4-stage scalar
pipeline retiring one instruction per cycle plus functional-unit latency
beyond one cycle, plus the analytic I-cache penalty of
:mod:`repro.cores.icache_model`.

``check_segment`` performs the full replay.  ``analytic_cycles`` computes
the timing alone from the segment's instruction histogram — used by the
engine's fast path when the fault injector guarantees no event can fire
within the segment (the replay of a correct segment by a correct checker
always passes, a property the test suite verifies against full replay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from ..config import CHECKER_FU_LATENCY, CheckerConfig
from ..isa import Executor, FunctionalUnit, SimTrap, StepInfo
from ..isa.state import ArchState
from ..lslog.detection import (
    CheckerException,
    CheckerTimeout,
    DetectionChannel,
    ErrorDetected,
    FinalStateMismatch,
)
from ..lslog.ports import CheckerReplayPort
from ..lslog.segment import LogSegment
from .icache_model import icache_penalty


class SegmentFaultHook(Protocol):
    """Fault-injection hooks a checker honours during replay.

    Implemented by :class:`repro.faults.injector.SegmentInjector`; all
    methods are optional no-ops in the fault-free case.
    """

    def before_instruction(self, state: ArchState, index: int) -> None:
        """Chance to corrupt architectural state before instruction ``index``."""
        ...

    def after_instruction(self, state: ArchState, info: StepInfo, index: int) -> None:
        """Chance to corrupt the destination of instruction ``index``."""
        ...

    def corrupt_load(self, op_index: int, value: int) -> int:
        """Map a logged load value to the (possibly corrupted) value seen."""
        ...

    def corrupt_store(self, op_index: int, value: int) -> int:
        """Map a logged store value to the (possibly corrupted) reference."""
        ...


@dataclass
class CheckResult:
    """Outcome of checking one segment."""

    #: None if the segment verified clean.
    detection: Optional[ErrorDetected]
    #: Instructions the checker actually executed before finishing/detecting.
    instructions_executed: int
    #: Checker-domain cycles consumed.
    checker_cycles: float

    @property
    def detected(self) -> bool:
        return self.detection is not None

    @property
    def channel(self) -> Optional[DetectionChannel]:
        return self.detection.channel if self.detection else None


#: Timeout margin: a checker that has not finished after this many times
#: the segment's instruction count is considered locked up (section II-B).
TIMEOUT_FACTOR = 4


class CheckerCore:
    """One checker core (identity matters only for scheduling/gating)."""

    def __init__(self, core_id: int, config: CheckerConfig, program) -> None:
        self.core_id = core_id
        self.config = config
        self.program = program
        self._latency = {unit: CHECKER_FU_LATENCY[unit.value] for unit in FunctionalUnit}
        #: Per-PC unit latency: static per instruction, so the replay
        #: loop indexes a list instead of hashing an enum per step.
        latency = self._latency
        self._latency_by_pc = [
            float(latency[instruction.unit]) for instruction in program.instructions
        ]
        self._icache_cpi = icache_penalty(program.text_bytes, config).cycles_per_instruction
        #: Histogram-keyed memo for :meth:`analytic_cycles`: loop-heavy
        #: workloads close many segments with identical histograms.
        self._analytic_cache: "dict[tuple, float]" = {}
        #: Wall-clock nanosecond at which this core finishes its current job.
        self.busy_until_ns: float = 0.0
        #: Lifetime busy time, for wake-rate statistics (figure 12).
        self.busy_ns_total: float = 0.0
        self.segments_checked: int = 0

    # -- timing -------------------------------------------------------------------
    def analytic_cycles(self, segment: LogSegment) -> float:
        """Checking cost from the instruction histogram (fast path)."""
        key = (
            segment.instruction_count,
            tuple(
                sorted(
                    (unit.value, count)
                    for unit, count in segment.unit_histogram.items()
                )
            ),
        )
        cached = self._analytic_cache.get(key)
        if cached is not None:
            return cached
        cycles = 0.0
        for unit, count in segment.unit_histogram.items():
            cycles += count * self._latency[unit]
        cycles += segment.instruction_count * self._icache_cpi
        if len(self._analytic_cache) >= 512:
            self._analytic_cache.clear()
        self._analytic_cache[key] = cycles
        return cycles

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.config.cycle_ns

    # -- functional checking ------------------------------------------------------------
    def check_segment(
        self,
        segment: LogSegment,
        hook: Optional[SegmentFaultHook] = None,
    ) -> CheckResult:
        """Fully re-execute ``segment`` and compare against its log.

        The checker starts from a *copy* of the segment's starting
        architectural state, so detection never corrupts checkpoints.
        """
        if not segment.is_closed:
            raise ValueError(f"segment {segment.seq} is still filling")
        state = segment.start_state.snapshot()
        port = CheckerReplayPort(
            segment,
            load_corruptor=hook.corrupt_load if hook else None,
            store_corruptor=hook.corrupt_store if hook else None,
        )
        executor = Executor(self.program, state, port)
        target = segment.instruction_count
        budget = max(target * TIMEOUT_FACTOR, target + 64)
        cycles = 0.0
        executed = 0
        detection: Optional[ErrorDetected] = None
        latency_by_pc = self._latency_by_pc
        step = executor.step
        try:
            while executed < target and not state.halted:
                if hook is not None:
                    hook.before_instruction(state, executed)
                info = step()
                executed += 1
                cycles += latency_by_pc[info.pc_before]
                if hook is not None:
                    hook.after_instruction(state, info, executed - 1)
                if executed > budget:  # pragma: no cover - defensive
                    raise CheckerTimeout("checker exceeded budget", executed)
        except ErrorDetected as found:
            found.instruction_index = executed
            detection = found
        except SimTrap as trap:
            detection = CheckerException(
                f"checker trapped: {trap!r}", instruction_index=executed
            )
        else:
            # Final architectural state check.
            if not state.matches(segment.end_state):
                diff = state.divergence(segment.end_state)
                detection = FinalStateMismatch(
                    f"final state differs: {diff}", instruction_index=executed
                )
            elif not port.fully_consumed:
                detection = FinalStateMismatch(
                    "log not fully consumed at final check", instruction_index=executed
                )
        cycles += executed * self._icache_cpi
        self.segments_checked += 1
        return CheckResult(detection, executed, cycles)
