"""Fairness and throughput metrics for a shared checker pool.

When M main cores contend for one pool, two questions matter: did every
producer get a proportionate share of the detection hardware (dispatch
and busy share), and was the *price* of contention — time spent waiting
for a checker another core occupied — spread evenly (wait-time Gini)?
A Gini of 0 means every main waited equally; 1 means one main absorbed
all the waiting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = concentrated)."""
    n = len(values)
    if n == 0:
        return 0.0
    if any(v < 0 for v in values):
        raise ValueError("gini is defined for non-negative values")
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    # Mean absolute difference form via the rank-weighted sum.
    weighted = sum((2 * (i + 1) - n - 1) * v for i, v in enumerate(ordered))
    return weighted / (n * total)


def shares(values: Sequence[float]) -> List[float]:
    """Normalise to fractions that sum to 1 (all-zero input stays zero)."""
    total = sum(values)
    if total <= 0:
        return [0.0] * len(values)
    return [v / total for v in values]


@dataclass
class FairnessReport:
    """Per-main fairness/throughput summary of one shared-pool run."""

    #: Fraction of all pool dispatches issued by each main core (sums to 1).
    dispatch_share: List[float]
    #: Fraction of total checker-busy time consumed by each main (sums to 1).
    busy_share: List[float]
    #: Cumulative checker-wait per main core, nanoseconds.
    wait_ns: List[float]
    #: Concentration of the waiting cost across mains.
    wait_gini: float
    #: Pool-wide per-physical-core wake rates (figure 12, all mains).
    pool_wake_rates: List[float]

    @classmethod
    def from_pool(cls, pool: Any, total_ns: float) -> "FairnessReport":
        """Build from a ``SharedCheckerPool`` after its engines finish."""
        return cls(
            dispatch_share=shares([float(c) for c in pool.per_main_dispatches()]),
            busy_share=shares(pool.per_main_busy_ns()),
            wait_ns=list(pool.wait_ns),
            wait_gini=gini(pool.wait_ns),
            pool_wake_rates=pool.wake_rates(total_ns),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dispatch_share": self.dispatch_share,
            "busy_share": self.busy_share,
            "wait_ns": self.wait_ns,
            "wait_gini": self.wait_gini,
            "pool_wake_rates": self.pool_wake_rates,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FairnessReport":
        return cls(
            dispatch_share=list(payload["dispatch_share"]),
            busy_share=list(payload["busy_share"]),
            wait_ns=list(payload["wait_ns"]),
            wait_gini=float(payload["wait_gini"]),
            pool_wake_rates=list(payload["pool_wake_rates"]),
        )
