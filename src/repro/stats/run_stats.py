"""Run-level statistics and result records.

A :class:`RunResult` is what every system's ``run()`` returns: enough to
regenerate each of the paper's figures without re-simulating — per-event
recovery costs (figure 9), segment/stall accounting (figure 10), the
voltage trace (figure 11), checker wake rates (figure 12), and the inputs
the power model needs (figure 13).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..lslog.detection import DetectionChannel
from ..lslog.segment import SegmentCloseReason

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..resilience.guard import EscalationEvent, ForwardProgressDiagnostics
    from ..resilience.health import QuarantineEvent


class RunOutcome(enum.Enum):
    """How a simulated run ended — explicit, so callers stop inferring
    failure from instruction counts."""

    #: The program ran to completion (possibly after many recoveries).
    COMPLETED = "completed"
    #: Execution exceeded the livelock budget — either no forward-progress
    #: guard was configured (legacy behaviour), or waste accumulated across
    #: many checkpoints without any single one storming long enough to
    #: trigger escalation.
    LIVELOCK = "livelock"
    #: The forward-progress guard escalated to the safe voltage and the
    #: fault persisted: a typed failure with diagnostics attached.
    FORWARD_PROGRESS_FAILURE = "forward_progress_failure"


@dataclass
class RecoveryEvent:
    """One detected error and its recovery cost (figure 4's anatomy)."""

    segment_seq: int
    channel: DetectionChannel
    #: Wall-clock time of detection.
    detect_ns: float
    #: Execution since the start of the faulty segment that must be redone
    #: ("Re-run" in figure 4): wasted work attributable to this error.
    wasted_execution_ns: float
    #: Time spent walking the log restoring old values.
    rollback_ns: float
    #: Log entries restored (words for ParaMedic, lines for ParaDox).
    rollback_entries: int
    #: Segments rolled back (faulty segment through newest).
    segments_rolled_back: int

    @property
    def total_recovery_ns(self) -> float:
        return self.wasted_execution_ns + self.rollback_ns


class StallBucket(enum.Enum):
    """Why the main core stalled.

    Every stall the engine injects must name one of these buckets; the
    accounting in :class:`StallBreakdown` is total by construction, so a
    stall can never silently vanish from ``total_ns`` the way unknown
    string buckets once did.
    """

    #: All checkers busy at a checkpoint boundary.
    CHECKER_WAIT = "checker"
    #: Unchecked-line eviction conflicts.
    CONFLICT = "conflict"
    #: 16-cycle register checkpoint blocks.
    CHECKPOINT = "checkpoint"
    #: Walking the log on recovery.
    ROLLBACK = "rollback"
    #: Waiting for in-flight checks to drain (end of run / quarantine).
    DRAIN = "drain"


@dataclass
class StallBreakdown:
    """Where the main core lost time, in wall nanoseconds."""

    checker_wait_ns: float = 0.0
    conflict_ns: float = 0.0
    checkpoint_ns: float = 0.0
    rollback_ns: float = 0.0
    drain_ns: float = 0.0

    def add(self, bucket: StallBucket, wall_ns: float) -> None:
        """Accumulate a stall into its bucket; total by construction."""
        if bucket is StallBucket.CHECKER_WAIT:
            self.checker_wait_ns += wall_ns
        elif bucket is StallBucket.CONFLICT:
            self.conflict_ns += wall_ns
        elif bucket is StallBucket.CHECKPOINT:
            self.checkpoint_ns += wall_ns
        elif bucket is StallBucket.ROLLBACK:
            self.rollback_ns += wall_ns
        elif bucket is StallBucket.DRAIN:
            self.drain_ns += wall_ns
        else:  # a new enum member without a field is a bug, not a no-op
            raise ValueError(f"unmapped stall bucket {bucket!r}")

    @property
    def total_ns(self) -> float:
        return (
            self.checker_wait_ns
            + self.conflict_ns
            + self.checkpoint_ns
            + self.rollback_ns
            + self.drain_ns
        )


@dataclass
class RunResult:
    """Complete outcome of simulating one workload on one system."""

    system: str
    workload: str
    #: Total wall-clock time, including all recovery.
    wall_ns: float
    #: Committed (useful) instructions — re-runs excluded.
    instructions: int
    #: Total instructions executed by the main core including wasted re-runs.
    instructions_executed: int
    segments: int
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    stalls: StallBreakdown = field(default_factory=StallBreakdown)
    close_reasons: Dict[SegmentCloseReason, int] = field(default_factory=dict)
    #: Per-checker-core wake rate (fraction of wall time awake).
    checker_wake_rates: List[float] = field(default_factory=list)
    checker_peak_concurrency: int = 0
    #: (time_ns, voltage) checkpoint-granularity trace (empty without DVS).
    voltage_trace: List["tuple[float, float]"] = field(default_factory=list)
    #: Time-weighted mean supply voltage over the run (nominal if no DVS).
    mean_voltage: float = 0.0
    highest_error_voltage: float = 0.0
    #: Faults actually injected.
    faults_injected: int = 0
    #: Output the program produced (verified against the golden run).
    program_output: List["tuple[int, str]"] = field(default_factory=list)
    #: Mean checkpoint length in instructions.
    mean_checkpoint_length: float = 0.0
    final_checkpoint_target: int = 0
    #: How the run ended; COMPLETED unless the engine aborted.
    outcome: RunOutcome = RunOutcome.COMPLETED
    #: Diagnostics attached when ``outcome`` is FORWARD_PROGRESS_FAILURE.
    failure: Optional["ForwardProgressDiagnostics"] = None
    #: Checker cores pulled from service by the health tracker.
    quarantine_events: List["QuarantineEvent"] = field(default_factory=list)
    #: Forward-progress guard actions (shrink / voltage / fail stages).
    escalations: List["EscalationEvent"] = field(default_factory=list)
    #: True when the run was abandoned because recovery stopped making
    #: progress (executed instructions exceeded the livelock budget).
    #: Kept in sync with ``outcome`` for backwards compatibility.
    livelocked: bool = False
    #: Externally visible writes (WRITE_EXTERNAL syscalls) performed,
    #: each after draining all outstanding checks: (wall_ns, text).
    external_flushes: List["tuple[float, str]"] = field(default_factory=list)
    #: Checker dispatch trace: (start_ns, duration_ns) per checked
    #: segment, in dispatch order — input to the pool-sharing study.
    dispatch_trace: List["tuple[float, float]"] = field(default_factory=list)
    #: Executed instructions per functional-unit class (including wasted
    #: re-execution) — input to activity-based energy accounting.
    unit_mix: Dict[str, int] = field(default_factory=dict)
    #: Telemetry metrics summary (``MetricsRegistry.to_dict()``), present
    #: only when the run was traced (``EngineOptions.tracing``).  Plain
    #: dicts, so the result pickles cheaply across worker processes.
    metrics: Optional[Dict] = None
    #: Telemetry event stream (compact ``TraceEvent.to_dict()`` records,
    #: time-ordered), present only when the run was traced.
    trace: Optional[List[Dict]] = None

    # -- derived metrics ------------------------------------------------------------
    @property
    def errors_detected(self) -> int:
        return len(self.recoveries)

    @property
    def ipc_aggregate(self) -> float:
        """Useful instructions per wall nanosecond (not per cycle)."""
        return self.instructions / self.wall_ns if self.wall_ns else 0.0

    @property
    def wasted_execution_ns(self) -> float:
        return sum(event.wasted_execution_ns for event in self.recoveries)

    @property
    def rollback_ns(self) -> float:
        return sum(event.rollback_ns for event in self.recoveries)

    def mean_wasted_execution_ns(self) -> Optional[float]:
        if not self.recoveries:
            return None
        return self.wasted_execution_ns / len(self.recoveries)

    def mean_rollback_ns(self) -> Optional[float]:
        if not self.recoveries:
            return None
        return self.rollback_ns / len(self.recoveries)

    def slowdown_vs(self, baseline: "RunResult") -> float:
        """Wall-time ratio against a baseline run of the same workload."""
        if baseline.wall_ns <= 0:
            raise ValueError("baseline has no wall time")
        return self.wall_ns / baseline.wall_ns

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        lines = [
            f"{self.system} / {self.workload}: {self.instructions} instructions "
            f"in {self.wall_ns / 1e6:.3f} ms ({self.segments} segments)",
            f"  errors detected: {self.errors_detected}, faults injected: "
            f"{self.faults_injected}",
            f"  stalls: checker-wait {self.stalls.checker_wait_ns / 1e3:.1f} us, "
            f"conflict {self.stalls.conflict_ns / 1e3:.1f} us, "
            f"checkpoint {self.stalls.checkpoint_ns / 1e3:.1f} us, "
            f"rollback {self.stalls.rollback_ns / 1e3:.1f} us, "
            f"drain {self.stalls.drain_ns / 1e3:.1f} us",
        ]
        if self.recoveries:
            lines.append(
                f"  mean recovery: wasted {self.mean_wasted_execution_ns() / 1e3:.2f} us"
                f" + rollback {self.mean_rollback_ns() / 1e3:.2f} us"
            )
        if self.voltage_trace:
            lines.append(f"  mean voltage: {self.mean_voltage:.3f} V")
        if self.outcome is not RunOutcome.COMPLETED:
            detail = f"  outcome: {self.outcome.value}"
            if self.failure is not None:
                detail += f" ({self.failure.summary()})"
            lines.append(detail)
        if self.quarantine_events:
            quarantined = ", ".join(str(e.core_id) for e in self.quarantine_events)
            lines.append(f"  quarantined checkers: {quarantined}")
        if self.escalations:
            stages = {}
            for event in self.escalations:
                stages[event.stage] = stages.get(event.stage, 0) + 1
            lines.append(
                "  escalations: "
                + ", ".join(f"{stage} x{count}" for stage, count in stages.items())
            )
        return "\n".join(lines)
