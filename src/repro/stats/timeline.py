"""Execution timeline recording and rendering.

When enabled (``EngineOptions.record_timeline``), the engine emits one
:class:`TimelineEvent` for each interesting transition — segments
opening/closing, checker dispatches, commits, detections, rollbacks and
external flushes — in wall-clock order.  The timeline is the substrate
for debugging recovery behaviour and for the documentation's worked
examples; :func:`render_timeline` prints it human-readably and
:func:`render_checker_gantt` draws checker occupancy as ASCII.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class EventKind(enum.Enum):
    SEGMENT_OPEN = "open"
    SEGMENT_CLOSE = "close"
    DISPATCH = "dispatch"
    COMMIT = "commit"
    DETECTION = "detect"
    ROLLBACK = "rollback"
    EXTERNAL_FLUSH = "flush"


@dataclass(frozen=True)
class TimelineEvent:
    """One transition at one wall-clock instant."""

    time_ns: float
    kind: EventKind
    #: Segment sequence number the event concerns (0 when N/A).
    segment: int = 0
    #: Checker core involved (-1 when N/A).
    core: int = -1
    detail: str = ""


@dataclass
class Timeline:
    """Ordered event log for one simulation run."""

    events: List[TimelineEvent] = field(default_factory=list)

    def record(
        self,
        time_ns: float,
        kind: EventKind,
        segment: int = 0,
        core: int = -1,
        detail: str = "",
    ) -> None:
        self.events.append(TimelineEvent(time_ns, kind, segment, core, detail))

    def of_kind(self, kind: EventKind) -> List[TimelineEvent]:
        return [event for event in self.events if event.kind is kind]

    def in_time_order(self) -> List[TimelineEvent]:
        """Events sorted by wall time.

        The raw list is in *recording* order, which can differ: commit
        events are processed lazily and carry their (earlier) effective
        commit timestamps.
        """
        return sorted(self.events, key=lambda event: event.time_ns)

    def __len__(self) -> int:
        return len(self.events)

    def span_ns(self) -> float:
        """Wall time covered by the recorded events (earliest to latest).

        Computed over the *time-ordered* events: the raw list is in
        recording order, and lazily processed commits carry earlier
        effective timestamps than the events recorded around them — a
        first/last subtraction over recording order can under-report the
        span (or even go negative).
        """
        if not self.events:
            return 0.0
        times = [event.time_ns for event in self.events]
        return max(times) - min(times)

    def validate_ordering(self) -> None:
        """Raise if per-segment events violate the lifecycle order.

        Lifecycle: open -> close -> dispatch -> (commit | detect).  Used
        by tests as an internal-consistency oracle for the engine.
        """
        RANK = {
            EventKind.SEGMENT_OPEN: 0,
            EventKind.SEGMENT_CLOSE: 1,
            EventKind.DISPATCH: 2,
            EventKind.COMMIT: 3,
            EventKind.DETECTION: 3,
        }
        last_rank: dict = {}
        for event in self.in_time_order():
            if event.kind not in RANK or event.segment == 0:
                continue
            rank = RANK[event.kind]
            previous = last_rank.get(event.segment)
            if previous is not None and rank < previous and rank != 0:
                raise AssertionError(
                    f"segment {event.segment}: {event.kind.value} after "
                    f"rank-{previous} event"
                )
            last_rank[event.segment] = rank


def render_timeline(
    timeline: Timeline, limit: Optional[int] = None
) -> str:
    """One line per event: ``time | kind | segment | core | detail``."""
    lines = []
    ordered = timeline.in_time_order()
    events = ordered[:limit] if limit else ordered
    for event in events:
        core = f"c{event.core}" if event.core >= 0 else "  "
        segment = f"s{event.segment}" if event.segment else "  "
        lines.append(
            f"{event.time_ns:12.1f} ns  {event.kind.value:8s} {segment:>6s} "
            f"{core:>4s}  {event.detail}"
        )
    if limit and len(timeline.events) > limit:
        lines.append(f"... {len(timeline.events) - limit} more events")
    return "\n".join(lines)


def render_checker_gantt(
    timeline: Timeline, cores: int = 16, width: int = 72
) -> str:
    """ASCII occupancy chart: one row per checker core.

    Built from DISPATCH events (which carry the busy interval in their
    detail as ``start..end``); '#' marks busy columns.
    """
    intervals: List["tuple[int, float, float]"] = []
    for event in timeline.of_kind(EventKind.DISPATCH):
        try:
            start_text, end_text = event.detail.split("..")
            intervals.append((event.core, float(start_text), float(end_text)))
        except (ValueError, AttributeError):
            continue
    if not intervals:
        return "(no dispatches)"
    t_min = min(start for _, start, _ in intervals)
    t_max = max(end for _, _, end in intervals)
    span = (t_max - t_min) or 1.0
    rows = []
    for core in range(cores):
        cells = [" "] * width
        for owner, start, end in intervals:
            if owner != core:
                continue
            left = int((start - t_min) / span * (width - 1))
            right = max(int((end - t_min) / span * (width - 1)), left)
            for x in range(left, right + 1):
                cells[x] = "#"
        rows.append(f"c{core:02d} |{''.join(cells)}|")
    rows.append(f"     {t_min:.0f} ns {'':{max(width - 24, 1)}} {t_max:.0f} ns")
    return "\n".join(rows)
