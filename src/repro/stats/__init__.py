"""Statistics records shared by the simulation engine and experiments."""

from .run_stats import (
    RecoveryEvent,
    RunOutcome,
    RunResult,
    StallBreakdown,
    StallBucket,
)
from .timeline import (
    EventKind,
    Timeline,
    TimelineEvent,
    render_checker_gantt,
    render_timeline,
)

__all__ = [
    "EventKind",
    "RecoveryEvent",
    "RunOutcome",
    "RunResult",
    "StallBreakdown",
    "StallBucket",
    "Timeline",
    "TimelineEvent",
    "render_checker_gantt",
    "render_timeline",
]
