"""Statistics records shared by the simulation engine and experiments."""

from .run_stats import RecoveryEvent, RunResult, StallBreakdown
from .timeline import (
    EventKind,
    Timeline,
    TimelineEvent,
    render_checker_gantt,
    render_timeline,
)

__all__ = [
    "EventKind",
    "RecoveryEvent",
    "RunResult",
    "StallBreakdown",
    "Timeline",
    "TimelineEvent",
    "render_checker_gantt",
    "render_timeline",
]
