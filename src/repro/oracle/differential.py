"""Three-way differential execution oracle.

Runs one workload through the three execution layers that must agree and
diffs the *full* architectural state at every checkpoint boundary:

1. the golden-model :class:`~repro.oracle.reference.ReferenceISS`;
2. the production :class:`~repro.isa.executor.Executor` behind a
   :class:`~repro.lslog.ports.MainMemoryPort`, filling real log segments
   exactly as the engine's fill loop does (close on target length, log
   capacity, unchecked-line conflict, or halt);
3. a fault-free checker replay of every closed segment — both the
   production :meth:`~repro.cores.checker_core.CheckerCore.check_segment`
   path (its detection channels must stay silent) and a raw
   :class:`~repro.lslog.ports.CheckerReplayPort` re-execution whose final
   state is compared against the reference *including* ``instret``,
   which the engine's own ``ArchState.matches`` does not compare.

The engine's fast path skips functional replay entirely when no fault
can fire, so replay bugs are invisible in fault-free production runs;
this runner exists to force the full replay and compare every field:
x/f registers, flags, pc, instret, halted, the syscall output stream,
and a digest of the nonzero memory image.

The first divergence is reported with the segment, the offending field,
both values, and a trace window of the last instructions retired — the
program-level minimisation (shrinking) lives in
:mod:`repro.oracle.fuzzer`.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..config import SystemConfig, table1_config
from ..cores.checker_core import CheckerCore
from ..isa import ArchState, Executor, MemoryImage
from ..isa.errors import SimTrap
from ..lslog.ports import CheckerReplayPort, MainMemoryPort, UncheckedConflictStall
from ..lslog.segment import (
    LogSegment,
    RollbackGranularity,
    SegmentCloseReason,
    SegmentFull,
)
from ..memory.unchecked import UncheckedLineTracker
from .reference import ReferenceISS

#: Retired instructions kept for the divergence trace window.
TRACE_WINDOW = 32


def memory_digest(words: Dict[int, int]) -> str:
    """Stable digest of a nonzero word map (order-independent)."""
    hasher = hashlib.sha256()
    for address in sorted(words):
        value = words[address]
        if value:
            hasher.update(address.to_bytes(8, "little"))
            hasher.update(value.to_bytes(8, "little"))
    return hasher.hexdigest()[:16]


@dataclass
class Divergence:
    """First observed disagreement between two execution layers."""

    #: Which comparison failed: ``"executor"`` (reference vs main core),
    #: ``"replay"`` (reference vs raw checker replay) or ``"checker"``
    #: (the production check_segment reported a detection).
    stage: str
    segment_seq: int
    #: Retired-instruction count at the checkpoint boundary.
    instret: int
    #: The diverging field: ``x5``, ``f3``, ``flags``, ``pc``,
    #: ``instret``, ``halted``, ``output``, ``memory`` or ``detection``.
    field: str
    expected: str
    actual: str
    #: Last instructions the main core retired before the boundary.
    trace: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "stage": self.stage,
            "segment": self.segment_seq,
            "instret": self.instret,
            "field": self.field,
            "expected": self.expected,
            "actual": self.actual,
            "trace": list(self.trace),
        }

    def describe(self) -> str:
        return (
            f"[{self.stage}] segment {self.segment_seq} @ instret "
            f"{self.instret}: {self.field} expected {self.expected}, "
            f"got {self.actual}"
        )


@dataclass
class DiffReport:
    """Outcome of one differential run."""

    workload: str
    granularity: str
    instructions: int = 0
    segments: int = 0
    checkpoints: int = 0
    divergence: Optional[Divergence] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "granularity": self.granularity,
            "instructions": self.instructions,
            "segments": self.segments,
            "checkpoints": self.checkpoints,
            "ok": self.ok,
            "divergence": self.divergence.to_dict() if self.divergence else None,
        }


class DifferentialRunner:
    """Drive one workload through all three layers, comparing as it goes."""

    def __init__(
        self,
        workload,
        granularity: RollbackGranularity = RollbackGranularity.LINE,
        checkpoint_interval: int = 61,
        config: Optional[SystemConfig] = None,
        tracer=None,
        use_jit: bool = True,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be positive")
        self.workload = workload
        self.granularity = granularity
        self.checkpoint_interval = checkpoint_interval
        self.config = config if config is not None else table1_config()
        #: Optional :class:`repro.telemetry.Tracer`; oracle events are
        #: emitted at checkpoint granularity only.
        self.tracer = tracer
        #: Execute the device-under-test layer through the compiled
        #: superblock tier (default).  This makes every differential run
        #: an interpreter-vs-compiled-vs-reference equivalence check:
        #: the reference ISS and the checker replay stay structurally
        #: independent of the tier, so a miscompiled block diverges at
        #: the next checkpoint.  ``--no-jit`` is the escape hatch that
        #: pins a divergence on the tier (or exonerates it).  Note the
        #: divergence trace window only samples interpreted
        #: instructions; compiled spans appear as checkpoint deltas.
        self.use_jit = use_jit

    # -- internals ------------------------------------------------------------
    def _open_segment(self, seq: int, start: ArchState) -> LogSegment:
        return LogSegment(
            seq=seq,
            granularity=self.granularity,
            capacity_bytes=self.config.checker.log_bytes_per_core,
            start_state=start,
        )

    @staticmethod
    def _compare(
        ref: ReferenceISS,
        state: ArchState,
        memory_words: Optional[Dict[int, int]],
    ) -> Optional[tuple]:
        """First differing field between the reference and ``state``.

        Returns ``(field, expected, actual)`` or None.  ``memory_words``
        is the production memory's word dict (or None to skip memory).
        """
        if state.pc != ref.pc:
            return ("pc", str(ref.pc), str(state.pc))
        if state.halted != ref.halted:
            return ("halted", str(ref.halted), str(state.halted))
        if state.instret != ref.instret:
            return ("instret", str(ref.instret), str(state.instret))
        for index in range(32):
            if state.regs.x[index] != ref.x[index]:
                return (
                    f"x{index}",
                    f"{ref.x[index]:#018x}",
                    f"{state.regs.x[index]:#018x}",
                )
        for index in range(16):
            if state.regs.f[index] != ref.f[index]:
                return (
                    f"f{index}",
                    f"{ref.f[index]:#018x}",
                    f"{state.regs.f[index]:#018x}",
                )
        if state.regs.flags != ref.flags:
            return ("flags", f"{ref.flags:04b}", f"{state.regs.flags:04b}")
        if state.output != ref.output:
            return ("output", repr(ref.output[-3:]), repr(state.output[-3:]))
        if memory_words is not None:
            mine = {a: v for a, v in memory_words.items() if v}
            theirs = ref.memory_words()
            if mine != theirs:
                return (
                    "memory",
                    memory_digest(theirs),
                    memory_digest(mine),
                )
        return None

    # -- the run --------------------------------------------------------------
    def run(self, max_instructions: Optional[int] = None) -> DiffReport:
        workload = self.workload
        budget = (
            max_instructions
            if max_instructions is not None
            else workload.max_instructions
        )
        report = DiffReport(
            workload=workload.name, granularity=self.granularity.value
        )

        memory: MemoryImage = workload.create_memory()
        tracker = UncheckedLineTracker(self.config.memory.l1d)
        port = MainMemoryPort(memory, tracker, self.granularity)
        state = ArchState()
        executor = Executor(workload.program, state, port)
        checker = CheckerCore(0, self.config.checker, workload.program)
        ref = ReferenceISS(
            workload.program,
            initial_words=workload.initial_words,
            memory_size=memory.size,
        )

        trace: Deque[str] = deque(maxlen=TRACE_WINDOW)
        seq = 1
        segment = self._open_segment(seq, state.snapshot())
        port.segment = segment

        def diverge(stage: str, found: tuple) -> None:
            report.divergence = Divergence(
                stage=stage,
                segment_seq=segment.seq,
                instret=state.instret,
                field=found[0],
                expected=found[1],
                actual=found[2],
                trace=list(trace),
            )
            if self.tracer is not None:
                self.tracer.emit(
                    "oracle",
                    "divergence",
                    segment=segment.seq,
                    detail=f"{stage}:{found[0]}",
                )

        def close_and_check(reason: SegmentCloseReason) -> bool:
            """Close the filling segment, cross-check it, commit it.

            Returns False when a divergence ended the run.
            """
            nonlocal seq, segment
            segment.close(state.snapshot(), reason)
            report.segments += 1
            report.checkpoints += 1

            # 1. Advance the golden model to the same boundary.  The
            # production executor retired these instructions without a
            # trap, so a reference trap is itself a divergence.
            try:
                for _ in range(segment.instruction_count):
                    ref.step()
            except SimTrap as trap:
                diverge(
                    "executor",
                    ("trap", "no trap", f"reference trapped: {trap!r}"),
                )
                return False

            # 2. Reference vs main core, memory included.
            found = self._compare(ref, state, memory.words)
            if found is not None:
                diverge("executor", found)
                return False

            # 3a. Production checker path: fault-free replay through the
            # real detection channels must stay silent.
            result = checker.check_segment(segment)
            if result.detected:
                diverge(
                    "checker",
                    (
                        "detection",
                        "clean replay",
                        f"{result.detection.channel.value}: {result.detection}",
                    ),
                )
                return False

            # 3b. Raw replay whose final state we can inspect: compare
            # against the reference including instret, which the
            # production final-state check does not cover.
            replay_state = segment.start_state.snapshot()
            replay_port = CheckerReplayPort(segment)
            replay_exec = Executor(workload.program, replay_state, replay_port)
            try:
                for _ in range(segment.instruction_count):
                    replay_exec.step()
            except SimTrap as trap:
                diverge(
                    "replay", ("trap", "no trap", f"replay trapped: {trap!r}")
                )
                return False
            found = self._compare(ref, replay_state, None)
            if found is not None:
                diverge("replay", found)
                return False
            if not replay_port.fully_consumed:
                diverge(
                    "replay",
                    (
                        "log",
                        "fully consumed",
                        f"{replay_port.load_index}/{len(segment.loads)} loads, "
                        f"{replay_port.store_index}/{len(segment.store_addrs)} "
                        f"stores",
                    ),
                )
                return False

            if self.tracer is not None:
                self.tracer.emit(
                    "oracle",
                    "checkpoint",
                    segment=segment.seq,
                    value=float(segment.instruction_count),
                    detail=reason.value,
                )

            # Commit: the segment checked clean, release its lines.
            tracker.release_through(segment.seq)
            seq += 1
            segment = self._open_segment(seq, state.snapshot())
            port.segment = segment
            return True

        interval = self.checkpoint_interval
        jit = None
        if self.use_jit:
            from ..jit import SuperblockJit

            jit = SuperblockJit(workload.program, state, port, record=True)
        while not state.halted and state.instret < budget:
            if jit is not None:
                entry = jit.runner(state.pc)
                if (
                    entry is not None
                    and segment.instruction_count + entry.length <= interval
                    and state.instret + entry.length <= budget
                ):
                    before = state.instret
                    try:
                        entry.run(segment.record_instruction)
                    except SegmentFull:
                        report.instructions += state.instret - before
                        if not close_and_check(SegmentCloseReason.LOG_CAPACITY):
                            return report
                        continue
                    except UncheckedConflictStall:
                        report.instructions += state.instret - before
                        if not close_and_check(
                            SegmentCloseReason.EVICTION_CONFLICT
                        ):
                            return report
                        continue
                    report.instructions += entry.length
                    stats = jit.stats
                    stats.dispatches += 1
                    stats.instructions += entry.length
                    if segment.instruction_count >= interval:
                        if not close_and_check(SegmentCloseReason.TARGET_LENGTH):
                            return report
                    continue
            try:
                info = executor.step()
            except SegmentFull:
                if not close_and_check(SegmentCloseReason.LOG_CAPACITY):
                    return report
                continue
            except UncheckedConflictStall:
                # Committing the closed segment releases every unchecked
                # line, so the retried store cannot conflict again.
                if not close_and_check(SegmentCloseReason.EVICTION_CONFLICT):
                    return report
                continue
            report.instructions += 1
            segment.record_instruction(
                info.instruction.unit, writes_register=info.dest is not None
            )
            trace.append(f"{info.pc_before}: {info.instruction}")
            if segment.instruction_count >= interval:
                if not close_and_check(SegmentCloseReason.TARGET_LENGTH):
                    return report

        if segment.instruction_count > 0:
            close_and_check(SegmentCloseReason.PROGRAM_END)
        return report


def diff_workload(
    workload,
    granularity: RollbackGranularity = RollbackGranularity.LINE,
    checkpoint_interval: int = 61,
    max_instructions: Optional[int] = None,
    config: Optional[SystemConfig] = None,
    tracer=None,
    use_jit: bool = True,
) -> DiffReport:
    """Convenience wrapper: one differential run over ``workload``."""
    runner = DifferentialRunner(
        workload,
        granularity=granularity,
        checkpoint_interval=checkpoint_interval,
        config=config,
        tracer=tracer,
        use_jit=use_jit,
    )
    return runner.run(max_instructions=max_instructions)
