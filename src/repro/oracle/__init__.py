"""Differential-execution oracle: the harness that checks the simulator.

ParaDox's coverage and false-detection numbers are only as trustworthy
as the claim that main-core execution, checker log-replay and the
functional ISA all agree.  This package cross-checks that claim:

* :mod:`~repro.oracle.reference` — a deliberately simple golden-model
  ISS, written independently of the production executor;
* :mod:`~repro.oracle.differential` — runs a workload three ways and
  diffs full architectural state at every checkpoint boundary;
* :mod:`~repro.oracle.fuzzer` — seeded, shrinkable ISA program
  generation feeding the differential runner (``repro fuzz``);
* :mod:`~repro.oracle.invariants` — opt-in paranoid-mode engine
  invariant assertions (``EngineOptions.paranoid``).

See ``docs/ORACLE.md`` for the design and the reproduction workflow.
"""

from .differential import (
    DiffReport,
    DifferentialRunner,
    Divergence,
    diff_workload,
    memory_digest,
)
from .fuzzer import (
    FuzzCampaign,
    FuzzCase,
    FuzzResult,
    build_workload,
    generate_case,
    run_case,
    run_fuzz,
    shrink_case,
)
from .invariants import EngineInvariantError, ParanoidChecker
from .reference import ReferenceISS

__all__ = [
    "DiffReport",
    "DifferentialRunner",
    "Divergence",
    "EngineInvariantError",
    "FuzzCampaign",
    "FuzzCase",
    "FuzzResult",
    "ParanoidChecker",
    "ReferenceISS",
    "build_workload",
    "diff_workload",
    "generate_case",
    "memory_digest",
    "run_case",
    "run_fuzz",
    "shrink_case",
]
