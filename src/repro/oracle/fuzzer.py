"""Property-based ISA program fuzzer feeding the differential oracle.

Programs are assembled from a seeded list of self-contained **atoms** —
short instruction bursts (ALU, branchy, memory, FP, syscall, subroutine
call) whose labels and control flow are wholly internal, so any subset
of atoms still assembles and terminates.  That closure property is what
makes shrinking trivial: a failing program is minimised by greedily
dropping atoms while the divergence persists, with no constraint solver.

Termination is by construction, not by budget:

* the only backward edge is the loop tail ``cbnz x29`` on a counter that
  is strictly decremented once per iteration and never otherwise
  written;
* every branch inside an atom is forward, to a label defined within the
  same atom;
* subroutines are straight-line and return through ``x30``.

Register convention: ``x28`` holds the data-region base and ``x29`` the
loop counter (no atom writes either), ``x30`` is the link register,
``x1..x26`` and ``f0..f15`` are fuzz scratch.  Memory atoms address only
``x28 + 8*k`` for ``k`` in ``[0, 64)``, so accesses are always aligned
and in bounds — the oracle hunts for semantic divergence, not traps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import MASK64, Opcode, ProgramBuilder, Syscall, float_to_bits
from ..lslog.segment import RollbackGranularity
from ..workloads.base import Workload
from .differential import DiffReport, DifferentialRunner

#: Word-aligned base of the fuzz data region.
DATA_BASE = 0x1000
#: Number of words in the data region; all addressing stays inside it.
DATA_WORDS = 64

#: Registers the skeleton reserves; atoms must not write them.
REG_BASE = 28
REG_COUNTER = 29
REG_LINK = 30
SCRATCH_X = tuple(range(1, 27))
SCRATCH_F = tuple(range(16))

#: Integer operands that sit on the corner cases of 64-bit arithmetic.
INTERESTING_INTS = (
    0,
    1,
    -1,
    2,
    -2,
    63,
    64,
    (1 << 63) - 1,
    -(1 << 63),
    1 << 62,
    MASK64,
    0x5555_5555_5555_5555,
    0xAAAA_AAAA_AAAA_AAAA,
)

#: Float operands covering signed zero, infinities, NaN and denormals.
INTERESTING_FLOATS = (
    0.0,
    -0.0,
    1.0,
    -1.0,
    1.5,
    -2.75,
    float("inf"),
    float("-inf"),
    float("nan"),
    1e308,
    -1e308,
    5e-324,
    9.223372036854776e18,
    -9.223372036854776e18,
)

#: Atom kinds and their weights per fuzz profile.
PROFILES: Dict[str, Dict[str, int]] = {
    "mixed": {
        "alu": 4,
        "alu_imm": 3,
        "branchy": 3,
        "mem": 3,
        "fp": 2,
        "fp_branch": 1,
        "syscall": 1,
        "subcall": 1,
    },
    "branchy": {
        "alu": 2,
        "alu_imm": 1,
        "branchy": 6,
        "mem": 1,
        "fp": 1,
        "fp_branch": 2,
        "syscall": 1,
        "subcall": 2,
    },
    "memory": {
        "alu": 2,
        "alu_imm": 1,
        "branchy": 1,
        "mem": 7,
        "fp": 1,
        "fp_branch": 0,
        "syscall": 1,
        "subcall": 1,
    },
    "fp": {
        "alu": 1,
        "alu_imm": 1,
        "branchy": 1,
        "mem": 2,
        "fp": 6,
        "fp_branch": 3,
        "syscall": 1,
        "subcall": 0,
    },
    "syscall": {
        "alu": 2,
        "alu_imm": 1,
        "branchy": 1,
        "mem": 2,
        "fp": 1,
        "fp_branch": 1,
        "syscall": 6,
        "subcall": 1,
    },
}

_ALU_OPS = ("add", "sub", "and_", "orr", "eor", "lsl", "lsr", "mul", "div", "rem")
_ALU_IMM_OPS = ("addi", "subi", "andi", "orri", "eori", "lsli", "lsri", "asri")
_FP_OPS = ("fadd", "fsub", "fmul", "fdiv")
_BRANCHES = ("beq", "bne", "blt", "bge", "bgt", "ble")
_SYSCALLS = (
    int(Syscall.PRINT_INT),
    int(Syscall.PRINT_FLOAT),
    int(Syscall.GET_INSTRET),
    int(Syscall.WRITE_EXTERNAL),
    99,  # unknown numbers must behave as NOPs on every layer
)


@dataclass(frozen=True)
class Atom:
    """One self-contained burst: rebuildable from (kind, seed) alone."""

    kind: str
    seed: int


@dataclass(frozen=True)
class FuzzCase:
    """A fully-determined fuzz program: seed + derived shape."""

    seed: int
    profile: str
    iterations: int
    atoms: Tuple[Atom, ...]
    #: Number of straight-line subroutines appended after ``halt``.
    subroutines: int


# -- atom emitters -------------------------------------------------------------
def _emit_alu(b: ProgramBuilder, rng: random.Random) -> None:
    for _ in range(rng.randint(2, 5)):
        op = rng.choice(_ALU_OPS)
        rd = rng.choice(SCRATCH_X)
        rs1 = rng.choice(SCRATCH_X)
        rs2 = rng.choice(SCRATCH_X)
        getattr(b, op)(rd, rs1, rs2)
    b.cmp(rng.choice(SCRATCH_X), rng.choice(SCRATCH_X))


def _emit_alu_imm(b: ProgramBuilder, rng: random.Random) -> None:
    for _ in range(rng.randint(2, 5)):
        op = rng.choice(_ALU_IMM_OPS)
        rd = rng.choice(SCRATCH_X)
        rs1 = rng.choice(SCRATCH_X)
        if op in ("lsli", "lsri", "asri"):
            imm = rng.randint(0, 63)
        else:
            imm = rng.choice(INTERESTING_INTS + (rng.randint(-4096, 4095),))
        if op == "asri":
            b.op(Opcode.ASRI, rd=rd, rs1=rs1, imm=imm)
        else:
            getattr(b, op)(rd, rs1, imm)
    b.cmpi(rng.choice(SCRATCH_X), rng.choice(INTERESTING_INTS))


def _emit_branchy(b: ProgramBuilder, rng: random.Random) -> None:
    skip = b.fresh_label("fz_skip")
    join = b.fresh_label("fz_join")
    b.cmp(rng.choice(SCRATCH_X), rng.choice(SCRATCH_X))
    getattr(b, rng.choice(_BRANCHES))(skip)
    getattr(b, rng.choice(("add", "sub", "eor")))(
        rng.choice(SCRATCH_X), rng.choice(SCRATCH_X), rng.choice(SCRATCH_X)
    )
    b.b(join)
    b.label(skip)
    b.addi(rng.choice(SCRATCH_X), rng.choice(SCRATCH_X), rng.randint(-8, 8))
    b.label(join)
    if rng.random() < 0.5:
        done = b.fresh_label("fz_cb")
        reg = rng.choice(SCRATCH_X)
        (b.cbz if rng.random() < 0.5 else b.cbnz)(reg, done)
        b.eori(reg, reg, rng.choice(INTERESTING_INTS))
        b.label(done)


def _emit_mem(b: ProgramBuilder, rng: random.Random) -> None:
    for _ in range(rng.randint(2, 4)):
        offset = 8 * rng.randrange(DATA_WORDS)
        reg = rng.choice(SCRATCH_X)
        kind = rng.random()
        if kind < 0.45:
            b.ldr(reg, REG_BASE, offset)
        elif kind < 0.9:
            b.str_(reg, REG_BASE, offset)
        elif kind < 0.95:
            b.fldr(rng.choice(SCRATCH_F), REG_BASE, offset)
        else:
            b.fstr(rng.choice(SCRATCH_F), REG_BASE, offset)


def _emit_fp(b: ProgramBuilder, rng: random.Random) -> None:
    for _ in range(rng.randint(2, 4)):
        roll = rng.random()
        if roll < 0.6:
            getattr(b, rng.choice(_FP_OPS))(
                rng.choice(SCRATCH_F), rng.choice(SCRATCH_F), rng.choice(SCRATCH_F)
            )
        elif roll < 0.75:
            b.fmovi(rng.choice(SCRATCH_F), rng.choice(INTERESTING_FLOATS))
        elif roll < 0.9:
            b.fcvt(rng.choice(SCRATCH_F), rng.choice(SCRATCH_X))
        else:
            b.fcvti(rng.choice(SCRATCH_X), rng.choice(SCRATCH_F))


def _emit_fp_branch(b: ProgramBuilder, rng: random.Random) -> None:
    # FCMP (including unordered NaN encodings) followed by every flavour
    # of conditional branch — the exact pairing satellite 3 audits.
    skip = b.fresh_label("fz_fskip")
    b.fcmp(rng.choice(SCRATCH_F), rng.choice(SCRATCH_F))
    getattr(b, rng.choice(_BRANCHES))(skip)
    b.fadd(rng.choice(SCRATCH_F), rng.choice(SCRATCH_F), rng.choice(SCRATCH_F))
    b.label(skip)


def _emit_syscall(b: ProgramBuilder, rng: random.Random) -> None:
    b.movi(1, rng.choice(INTERESTING_INTS))
    if rng.random() < 0.3:
        b.fmovi(1, rng.choice(INTERESTING_FLOATS))
    b.syscall(rng.choice(_SYSCALLS))


_EMITTERS = {
    "alu": _emit_alu,
    "alu_imm": _emit_alu_imm,
    "branchy": _emit_branchy,
    "mem": _emit_mem,
    "fp": _emit_fp,
    "fp_branch": _emit_fp_branch,
    "syscall": _emit_syscall,
}


# -- case generation -----------------------------------------------------------
def generate_case(
    seed: int, profile: str = "mixed", atom_count: Optional[int] = None
) -> FuzzCase:
    """Derive the full program shape for ``seed`` (pure function)."""
    if profile not in PROFILES:
        raise ValueError(f"unknown fuzz profile {profile!r}")
    rng = random.Random(seed)
    weights = PROFILES[profile]
    kinds = list(weights)
    count = atom_count if atom_count is not None else rng.randint(6, 18)
    subroutines = 2
    picked = rng.choices(kinds, weights=[weights[k] for k in kinds], k=count)
    atoms = tuple(
        Atom(kind=kind, seed=rng.randrange(1 << 30)) for kind in picked
    )
    # Drop subroutines nobody calls so "subcall"-free profiles stay lean.
    if all(atom.kind != "subcall" for atom in atoms):
        subroutines = 0
    return FuzzCase(
        seed=seed,
        profile=profile,
        iterations=rng.randint(1, 3),
        atoms=atoms,
        subroutines=subroutines,
    )


def _emit_subcall(b: ProgramBuilder, rng: random.Random, subroutines: int) -> None:
    b.call(f"fz_sub{rng.randrange(subroutines)}")


def build_workload(case: FuzzCase) -> Workload:
    """Assemble the deterministic program and data image for ``case``."""
    rng = random.Random(case.seed ^ 0x5EED)
    b = ProgramBuilder(name=f"fuzz-{case.seed}")
    b.movi(REG_BASE, DATA_BASE)
    b.movi(REG_COUNTER, case.iterations)
    for index, reg in enumerate(SCRATCH_X[:12]):
        b.movi(reg, INTERESTING_INTS[index % len(INTERESTING_INTS)])
    for index, reg in enumerate(SCRATCH_F[:8]):
        b.fmovi(reg, INTERESTING_FLOATS[index % len(INTERESTING_FLOATS)])
    b.label("fz_loop")
    for atom in case.atoms:
        atom_rng = random.Random(atom.seed)
        if atom.kind == "subcall":
            if case.subroutines:
                _emit_subcall(b, atom_rng, case.subroutines)
        else:
            _EMITTERS[atom.kind](b, atom_rng)
    b.subi(REG_COUNTER, REG_COUNTER, 1)
    b.cbnz(REG_COUNTER, "fz_loop")
    b.halt()
    for index in range(case.subroutines):
        b.label(f"fz_sub{index}")
        for _ in range(3):
            getattr(b, rng.choice(("add", "eor", "mul")))(
                rng.choice(SCRATCH_X), rng.choice(SCRATCH_X), rng.choice(SCRATCH_X)
            )
        b.ret()
    initial_words = {
        DATA_BASE + 8 * k: (
            INTERESTING_INTS[k % len(INTERESTING_INTS)] & MASK64
            if k % 2 == 0
            else float_to_bits(INTERESTING_FLOATS[k % len(INTERESTING_FLOATS)])
        )
        for k in range(DATA_WORDS)
    }
    return Workload(
        name=f"fuzz-{case.seed}-{case.profile}",
        program=b.build(),
        initial_words=initial_words,
        max_instructions=200_000,
        category="fuzz",
        description=f"fuzzer seed {case.seed}, profile {case.profile}",
    )


# -- running and shrinking -----------------------------------------------------
@dataclass
class FuzzResult:
    """Outcome of one seed, with its minimised reproduction if it failed."""

    case: FuzzCase
    report: DiffReport
    shrunk: Optional[FuzzCase] = None
    shrunk_report: Optional[DiffReport] = None

    @property
    def ok(self) -> bool:
        return self.report.ok

    def to_dict(self) -> Dict:
        payload = {
            "seed": self.case.seed,
            "profile": self.case.profile,
            "atoms": len(self.case.atoms),
            "report": self.report.to_dict(),
        }
        if self.shrunk is not None:
            payload["shrunk_atoms"] = len(self.shrunk.atoms)
            payload["shrunk_report"] = (
                self.shrunk_report.to_dict() if self.shrunk_report else None
            )
        return payload


def run_case(
    case: FuzzCase,
    granularity: RollbackGranularity = RollbackGranularity.LINE,
    checkpoint_interval: int = 61,
    tracer=None,
    use_jit: bool = True,
) -> DiffReport:
    workload = build_workload(case)
    runner = DifferentialRunner(
        workload,
        granularity=granularity,
        checkpoint_interval=checkpoint_interval,
        tracer=tracer,
        use_jit=use_jit,
    )
    return runner.run()


def shrink_case(
    case: FuzzCase,
    granularity: RollbackGranularity = RollbackGranularity.LINE,
    checkpoint_interval: int = 61,
    use_jit: bool = True,
) -> Tuple[FuzzCase, DiffReport]:
    """Greedily drop atoms while the case still diverges.

    Atoms are self-contained, so every subset is a valid terminating
    program; we only require that *some* divergence persists (its field
    may legitimately change as context shrinks).
    """
    report = run_case(case, granularity, checkpoint_interval, use_jit=use_jit)
    if report.ok:
        raise ValueError("shrink_case requires a diverging case")
    atoms = list(case.atoms)
    changed = True
    while changed and len(atoms) > 1:
        changed = False
        for index in range(len(atoms) - 1, -1, -1):
            trial_atoms = atoms[:index] + atoms[index + 1 :]
            trial = FuzzCase(
                seed=case.seed,
                profile=case.profile,
                iterations=case.iterations,
                atoms=tuple(trial_atoms),
                subroutines=case.subroutines,
            )
            trial_report = run_case(
                trial, granularity, checkpoint_interval, use_jit=use_jit
            )
            if not trial_report.ok:
                atoms = trial_atoms
                report = trial_report
                changed = True
    shrunk = FuzzCase(
        seed=case.seed,
        profile=case.profile,
        iterations=case.iterations,
        atoms=tuple(atoms),
        subroutines=case.subroutines,
    )
    return shrunk, report


@dataclass
class FuzzCampaign:
    """Aggregate outcome of a multi-seed fuzz run."""

    seeds: int = 0
    cases: int = 0
    instructions: int = 0
    failures: List[FuzzResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "seeds": self.seeds,
            "cases": self.cases,
            "instructions": self.instructions,
            "ok": self.ok,
            "failures": [failure.to_dict() for failure in self.failures],
        }


def run_fuzz(
    seeds: Sequence[int],
    profiles: Sequence[str] = ("mixed", "branchy", "memory", "fp", "syscall"),
    granularity: RollbackGranularity = RollbackGranularity.LINE,
    checkpoint_interval: int = 61,
    shrink: bool = True,
    tracer=None,
    progress=None,
    use_jit: bool = True,
) -> FuzzCampaign:
    """Differentially test one program per (seed, profile) pair.

    ``progress`` is an optional callable invoked with each
    :class:`FuzzResult` as it completes (the CLI uses it for -v output).
    """
    campaign = FuzzCampaign(seeds=len(seeds))
    for seed in seeds:
        for profile in profiles:
            case = generate_case(seed, profile)
            if tracer is not None:
                tracer.emit(
                    "oracle",
                    "fuzz_case",
                    value=float(seed),
                    detail=f"{profile}:{len(case.atoms)} atoms",
                )
            report = run_case(
                case, granularity, checkpoint_interval, tracer, use_jit=use_jit
            )
            campaign.cases += 1
            campaign.instructions += report.instructions
            result = FuzzResult(case=case, report=report)
            if not report.ok and shrink:
                result.shrunk, result.shrunk_report = shrink_case(
                    case, granularity, checkpoint_interval, use_jit=use_jit
                )
            if not report.ok:
                campaign.failures.append(result)
            if progress is not None:
                progress(result)
    return campaign
