"""The golden-model reference ISS.

A deliberately simple single-step interpreter for the repro ISA, written
*independently* of :class:`repro.isa.executor.Executor`:

* no per-PC decode table — every step fetches the instruction and probes
  one opcode-keyed dict of bound methods;
* its own state representation (plain lists and four flag booleans, no
  :class:`~repro.isa.registers.RegisterFile`);
* its own memory (a sparse dict with the same alignment/bounds rules);
* independent formulations of the tricky semantics: signed values via
  ``struct`` round-trips instead of arithmetic wrapping, integer
  division through exact :class:`fractions.Fraction` truncation instead
  of sign-folded ``//``, signed-overflow V via wrap-equality instead of
  a range test, and float division-by-zero via Python's
  ``ZeroDivisionError`` with IEEE-754 sign rules.

The point of the duplication is the differential oracle
(:mod:`repro.oracle.differential`): a bug in either implementation shows
up as a divergence instead of being silently self-consistent.  Keep this
module boring and obviously correct; do **not** "optimise" it to share
code with the production executor.

Documented ISA semantics this model implements (the contract both sides
must satisfy — see ``docs/ORACLE.md``):

* ``x0`` reads as zero, writes to it are discarded;
* integer division by zero yields all-ones (quotient) / the dividend
  (remainder); quotients truncate toward zero;
* shift amounts use only the low 6 bits (of a register or immediate);
* ``FCVTI`` saturates on overflow and maps NaN to zero;
* ``FDIV`` by ±0.0 follows IEEE 754: ``x/±0`` is ±inf with the XOR of
  the operand signs, ``±0/±0`` and ``NaN/0`` are NaN;
* ``FCMP`` of unordered operands sets C and V only (so the unordered
  case behaves as "less than" for the conditional branches);
* ``instret`` increments *after* the instruction's effects, so syscall
  output is tagged with the pre-increment count;
* unknown syscall numbers are NOPs.
"""

from __future__ import annotations

import math
import struct
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.errors import (
    HaltTrap,
    InvalidPcTrap,
    MemoryAlignmentTrap,
    MemoryBoundsTrap,
)
from ..isa.instructions import Instruction, Opcode, Syscall
from ..isa.program import Program

_MASK64 = (1 << 64) - 1
_WORD = 8


def _signed(value: int) -> int:
    """Two's-complement reinterpretation via a byte round-trip."""
    return struct.unpack("<q", struct.pack("<Q", value & _MASK64))[0]


def _bits_of(value: float) -> int:
    # NaN results canonicalize to the positive quiet NaN, mirroring the
    # executor's ``float_to_bits`` (RISC-V-style).  Without this, the sign
    # of a two-NaN sum depends on host FPU operand order — which CPython's
    # specializing interpreter reorders between cold and warm executions.
    if value != value:
        return 0x7FF8000000000000
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _float_of(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & _MASK64))[0]


class ReferenceISS:
    """Golden-model interpreter: one program, one state, one memory."""

    def __init__(
        self,
        program: Program,
        initial_words: Optional[Dict[int, int]] = None,
        memory_size: int = 1 << 24,
    ) -> None:
        self.program = program
        self.memory_size = memory_size
        self.mem: Dict[int, int] = {}
        if initial_words:
            for address, value in initial_words.items():
                self._mem_check(address)
                self.mem[address] = value & _MASK64
        self.x: List[int] = [0] * 32
        #: FP registers as raw IEEE-754 bit patterns.
        self.f: List[int] = [0] * 16
        self.n = self.z = self.c = self.v = False
        self.pc = 0
        self.instret = 0
        self.halted = False
        self.output: List[Tuple[int, str]] = []
        self._handlers: Dict[Opcode, Callable[[Instruction], None]] = {
            Opcode.ADD: self._op_add,
            Opcode.SUB: self._op_sub,
            Opcode.AND: self._op_and,
            Opcode.ORR: self._op_orr,
            Opcode.EOR: self._op_eor,
            Opcode.LSL: self._op_lsl,
            Opcode.LSR: self._op_lsr,
            Opcode.ASR: self._op_asr,
            Opcode.MUL: self._op_mul,
            Opcode.DIV: self._op_div,
            Opcode.REM: self._op_rem,
            Opcode.MOV: self._op_mov,
            Opcode.MOVI: self._op_movi,
            Opcode.ADDI: self._op_addi,
            Opcode.SUBI: self._op_subi,
            Opcode.ANDI: self._op_andi,
            Opcode.ORRI: self._op_orri,
            Opcode.EORI: self._op_eori,
            Opcode.LSLI: self._op_lsli,
            Opcode.LSRI: self._op_lsri,
            Opcode.ASRI: self._op_asri,
            Opcode.CMP: self._op_cmp,
            Opcode.CMPI: self._op_cmpi,
            Opcode.FCMP: self._op_fcmp,
            Opcode.FADD: self._op_fadd,
            Opcode.FSUB: self._op_fsub,
            Opcode.FMUL: self._op_fmul,
            Opcode.FDIV: self._op_fdiv,
            Opcode.FMOV: self._op_fmov,
            Opcode.FMOVI: self._op_fmovi,
            Opcode.FCVT: self._op_fcvt,
            Opcode.FCVTI: self._op_fcvti,
            Opcode.LDR: self._op_ldr,
            Opcode.FLDR: self._op_fldr,
            Opcode.STR: self._op_str,
            Opcode.FSTR: self._op_fstr,
            Opcode.B: self._op_b,
            Opcode.BEQ: self._op_cond,
            Opcode.BNE: self._op_cond,
            Opcode.BLT: self._op_cond,
            Opcode.BGE: self._op_cond,
            Opcode.BGT: self._op_cond,
            Opcode.BLE: self._op_cond,
            Opcode.CBZ: self._op_cb,
            Opcode.CBNZ: self._op_cb,
            Opcode.JAL: self._op_jal,
            Opcode.JALR: self._op_jalr,
            Opcode.NOP: self._op_nop,
            Opcode.HALT: self._op_halt,
            Opcode.SYSCALL: self._op_syscall,
        }

    # -- public API -----------------------------------------------------------
    def step(self) -> None:
        """Execute exactly one instruction."""
        if self.halted:
            raise HaltTrap("stepping a halted reference core")
        pc = self.pc
        if not 0 <= pc < len(self.program.instructions):
            raise InvalidPcTrap(pc)
        instr = self.program.instructions[pc]
        self._handlers[instr.opcode](instr)
        self.instret += 1

    def run(self, max_instructions: int) -> int:
        retired = 0
        while not self.halted and retired < max_instructions:
            self.step()
            retired += 1
        return retired

    @property
    def flags(self) -> int:
        """NZCV packed as in :class:`repro.isa.registers.RegisterFile`."""
        return (
            (int(self.n) << 3) | (int(self.z) << 2) | (int(self.c) << 1) | int(self.v)
        )

    def memory_words(self) -> Dict[int, int]:
        """Nonzero memory contents (zero words equal unwritten words)."""
        return {address: value for address, value in self.mem.items() if value}

    # -- state helpers --------------------------------------------------------
    def _wx(self, index: int, value: int) -> None:
        if index != 0:
            self.x[index] = value & _MASK64

    def _rf(self, index: int) -> float:
        return _float_of(self.f[index])

    def _wf(self, index: int, value: float) -> None:
        self.f[index] = _bits_of(value)

    def _next(self) -> None:
        self.pc += 1

    def _set_flags_sub(self, a: int, b: int) -> None:
        """NZCV of ``a - b`` from exact big-integer arithmetic."""
        sa, sb = _signed(a), _signed(b)
        diff = sa - sb
        wrapped = diff & _MASK64
        self.n = wrapped >= (1 << 63)
        self.z = wrapped == 0
        self.c = (a & _MASK64) >= (b & _MASK64)
        # Signed overflow iff the exact difference does not survive the
        # 64-bit wrap (a formulation independent of the range test the
        # production executor uses).
        self.v = diff != _signed(wrapped)

    # -- memory ---------------------------------------------------------------
    def _mem_check(self, address: int) -> None:
        if address % _WORD:
            raise MemoryAlignmentTrap(address)
        if not 0 <= address < self.memory_size:
            raise MemoryBoundsTrap(address)

    def _mem_load(self, address: int) -> int:
        self._mem_check(address)
        return self.mem.get(address, 0)

    def _mem_store(self, address: int, value: int) -> None:
        self._mem_check(address)
        self.mem[address] = value & _MASK64

    # -- integer ALU ----------------------------------------------------------
    def _op_add(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] + self.x[i.rs2])
        self._next()

    def _op_sub(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] - self.x[i.rs2])
        self._next()

    def _op_and(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] & self.x[i.rs2])
        self._next()

    def _op_orr(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] | self.x[i.rs2])
        self._next()

    def _op_eor(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] ^ self.x[i.rs2])
        self._next()

    def _op_lsl(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] << (self.x[i.rs2] % 64))
        self._next()

    def _op_lsr(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] >> (self.x[i.rs2] % 64))
        self._next()

    def _op_asr(self, i: Instruction) -> None:
        self._wx(i.rd, _signed(self.x[i.rs1]) >> (self.x[i.rs2] % 64))
        self._next()

    def _op_mul(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] * self.x[i.rs2])
        self._next()

    @staticmethod
    def _div_trunc(sa: int, sb: int) -> int:
        """Exact truncating division through Fraction (no sign folding)."""
        return math.trunc(Fraction(sa, sb))

    def _op_div(self, i: Instruction) -> None:
        a, b = self.x[i.rs1], self.x[i.rs2]
        if b == 0:
            self._wx(i.rd, _MASK64)
        else:
            self._wx(i.rd, self._div_trunc(_signed(a), _signed(b)))
        self._next()

    def _op_rem(self, i: Instruction) -> None:
        a, b = self.x[i.rs1], self.x[i.rs2]
        if b == 0:
            self._wx(i.rd, a)
        else:
            sa, sb = _signed(a), _signed(b)
            self._wx(i.rd, sa - sb * self._div_trunc(sa, sb))
        self._next()

    def _op_mov(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1])
        self._next()

    def _op_movi(self, i: Instruction) -> None:
        self._wx(i.rd, i.imm)
        self._next()

    def _op_addi(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] + i.imm)
        self._next()

    def _op_subi(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] - i.imm)
        self._next()

    def _op_andi(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] & (i.imm & _MASK64))
        self._next()

    def _op_orri(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] | (i.imm & _MASK64))
        self._next()

    def _op_eori(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] ^ (i.imm & _MASK64))
        self._next()

    def _op_lsli(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] << (i.imm % 64))
        self._next()

    def _op_lsri(self, i: Instruction) -> None:
        self._wx(i.rd, self.x[i.rs1] >> (i.imm % 64))
        self._next()

    def _op_asri(self, i: Instruction) -> None:
        self._wx(i.rd, _signed(self.x[i.rs1]) >> (i.imm % 64))
        self._next()

    # -- compares -------------------------------------------------------------
    def _op_cmp(self, i: Instruction) -> None:
        self._set_flags_sub(self.x[i.rs1], self.x[i.rs2])
        self._next()

    def _op_cmpi(self, i: Instruction) -> None:
        self._set_flags_sub(self.x[i.rs1], i.imm & _MASK64)
        self._next()

    def _op_fcmp(self, i: Instruction) -> None:
        a, b = self._rf(i.rs1), self._rf(i.rs2)
        if math.isnan(a) or math.isnan(b):
            self.n, self.z, self.c, self.v = False, False, True, True
        else:
            self.n, self.z, self.c, self.v = a < b, a == b, a >= b, False
        self._next()

    # -- floating point -------------------------------------------------------
    def _op_fadd(self, i: Instruction) -> None:
        self._wf(i.rd, self._rf(i.rs1) + self._rf(i.rs2))
        self._next()

    def _op_fsub(self, i: Instruction) -> None:
        self._wf(i.rd, self._rf(i.rs1) - self._rf(i.rs2))
        self._next()

    def _op_fmul(self, i: Instruction) -> None:
        self._wf(i.rd, self._rf(i.rs1) * self._rf(i.rs2))
        self._next()

    def _op_fdiv(self, i: Instruction) -> None:
        a, b = self._rf(i.rs1), self._rf(i.rs2)
        try:
            value = a / b
        except ZeroDivisionError:
            # IEEE 754: finite/±0 is ±inf with the XOR of the operand
            # signs; ±0/±0 and NaN/±0 are NaN.
            if a == 0.0 or math.isnan(a):
                value = math.nan
            else:
                value = math.copysign(math.inf, a) * math.copysign(1.0, b)
        self._wf(i.rd, value)
        self._next()

    def _op_fmov(self, i: Instruction) -> None:
        self.f[i.rd] = self.f[i.rs1]
        self._next()

    def _op_fmovi(self, i: Instruction) -> None:
        self._wf(i.rd, i.fimm)
        self._next()

    def _op_fcvt(self, i: Instruction) -> None:
        self._wf(i.rd, float(_signed(self.x[i.rs1])))
        self._next()

    def _op_fcvti(self, i: Instruction) -> None:
        value = self._rf(i.rs1)
        if math.isnan(value):
            result = 0
        elif value >= 2.0**63:
            result = (1 << 63) - 1
        elif value <= -(2.0**63):
            result = 1 << 63  # most-negative pattern
        else:
            result = math.trunc(value)
        self._wx(i.rd, result)
        self._next()

    # -- memory ops -----------------------------------------------------------
    def _op_ldr(self, i: Instruction) -> None:
        address = (self.x[i.rs1] + i.imm) & _MASK64
        self._wx(i.rd, self._mem_load(address))
        self._next()

    def _op_fldr(self, i: Instruction) -> None:
        address = (self.x[i.rs1] + i.imm) & _MASK64
        self.f[i.rd] = self._mem_load(address)
        self._next()

    def _op_str(self, i: Instruction) -> None:
        address = (self.x[i.rs1] + i.imm) & _MASK64
        self._mem_store(address, self.x[i.rs2])
        self._next()

    def _op_fstr(self, i: Instruction) -> None:
        address = (self.x[i.rs1] + i.imm) & _MASK64
        self._mem_store(address, self.f[i.rs2])
        self._next()

    # -- control flow ---------------------------------------------------------
    def _op_b(self, i: Instruction) -> None:
        self.pc = i.target

    def _op_cond(self, i: Instruction) -> None:
        n, z, c, v = self.n, self.z, self.c, self.v
        op = i.opcode
        if op is Opcode.BEQ:
            taken = z
        elif op is Opcode.BNE:
            taken = not z
        elif op is Opcode.BLT:
            taken = n != v
        elif op is Opcode.BGE:
            taken = n == v
        elif op is Opcode.BGT:
            taken = (not z) and n == v
        else:  # BLE
            taken = z or n != v
        self.pc = i.target if taken else self.pc + 1

    def _op_cb(self, i: Instruction) -> None:
        value = self.x[i.rs1]
        taken = value == 0 if i.opcode is Opcode.CBZ else value != 0
        self.pc = i.target if taken else self.pc + 1

    def _op_jal(self, i: Instruction) -> None:
        self._wx(i.rd, self.pc + 1)
        self.pc = i.target

    def _op_jalr(self, i: Instruction) -> None:
        # Read the target before writing the link, so jalr xN, xN jumps
        # to the *old* value of xN.
        target = self.x[i.rs1]
        self._wx(i.rd, self.pc + 1)
        self.pc = target

    def _op_nop(self, i: Instruction) -> None:
        self._next()

    def _op_halt(self, i: Instruction) -> None:
        self.halted = True
        self._next()

    def _op_syscall(self, i: Instruction) -> None:
        number = i.imm
        if number == Syscall.EXIT:
            self.halted = True
        elif number == Syscall.PRINT_INT:
            self.output.append((self.instret, str(_signed(self.x[1]))))
        elif number == Syscall.PRINT_FLOAT:
            self.output.append((self.instret, repr(self._rf(1))))
        elif number == Syscall.GET_INSTRET:
            self._wx(1, self.instret)
        elif number == Syscall.WRITE_EXTERNAL:
            self.output.append((self.instret, f"ext:{_signed(self.x[1])}"))
        # Unknown syscall numbers are NOPs.
        self._next()
