"""Opt-in engine invariant assertions (``EngineOptions.paranoid``).

The engine's bookkeeping — segment sequence numbers, the unchecked-line
tracker, the pending-check queue, checker quarantine, the DVFS tide
mark — is all redundant state derived from the same event stream.  In
paranoid mode a :class:`ParanoidChecker` re-derives the redundant views
at segment granularity (close, commit, rollback) and raises
:class:`EngineInvariantError` on the first disagreement, with enough
context to localise the bookkeeping bug.

Violations raise a real exception rather than ``assert`` so the checks
survive ``python -O``; when paranoid mode is off the engine holds
``paranoid = None`` and each hook site is a single ``is not None`` test
at segment granularity (the telemetry discipline — see
``docs/PERFORMANCE.md``), so the disabled path costs nothing.

The checker deliberately reaches into engine internals (underscored
fields): it is a test oracle for those internals, not an API client,
and keeping it outside :mod:`repro.core.engine` keeps the production
file free of verification code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

from ..lslog.segment import LogSegment, RollbackGranularity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import SimulationEngine

#: Voltage comparisons tolerate float slew arithmetic.
_EPS = 1e-9


class EngineInvariantError(RuntimeError):
    """A paranoid-mode invariant did not hold."""

    def __init__(self, where: str, message: str) -> None:
        super().__init__(f"[paranoid@{where}] {message}")
        self.where = where


class ParanoidChecker:
    """Re-derive and cross-check the engine's redundant bookkeeping."""

    def __init__(self) -> None:
        #: Highest segment seq ever closed; closes must be monotonic.
        self._last_closed_seq = 0

    # -- hook entry points (called by the engine, is-not-None guarded) --------
    def on_close(self, engine: "SimulationEngine", segment: LogSegment) -> None:
        where = f"close seg {segment.seq}"
        if not segment.is_closed:
            raise EngineInvariantError(where, "closed segment not marked closed")
        if segment.seq <= self._last_closed_seq:
            raise EngineInvariantError(
                where,
                f"segment seq not monotonic: closing {segment.seq} after "
                f"{self._last_closed_seq}",
            )
        self._last_closed_seq = segment.seq
        # At close time this segment is the newest writer, so every line
        # it stored must be stamped with exactly its seq.
        if engine.options.granularity is not RollbackGranularity.NONE:
            tracker = engine.tracker
            stamps = tracker._timestamp
            for address in segment.store_addrs:
                line = tracker.line_of(address)
                stamp = stamps.get(line)
                if stamp != segment.seq:
                    raise EngineInvariantError(
                        where,
                        f"line {line:#x} stored by segment {segment.seq} "
                        f"stamped {stamp!r}",
                    )
        self.verify(engine, where)

    def on_commit(self, engine: "SimulationEngine") -> None:
        self.verify(engine, "commit")

    def on_rollback(self, engine: "SimulationEngine", to_seq: int) -> None:
        where = f"rollback->{to_seq}"
        stamps: Dict[int, int] = engine.tracker._timestamp
        stale = [s for s in stamps.values() if s > to_seq]
        if stale:
            raise EngineInvariantError(
                where,
                f"{len(stale)} tracker stamps survive past rollback "
                f"boundary {to_seq} (max {max(stale)})",
            )
        self.verify(engine, where)

    # -- the invariants --------------------------------------------------------
    def verify(self, engine: "SimulationEngine", where: str) -> None:
        self._check_pending(engine, where)
        self._check_tracker(engine, where)
        self._check_pool(engine, where)
        self._check_dvfs(engine, where)

    @staticmethod
    def _check_pending(engine: "SimulationEngine", where: str) -> None:
        seqs = [p.segment.seq for p in engine._pending]
        if any(b <= a for a, b in zip(seqs, seqs[1:])):
            raise EngineInvariantError(
                where, f"pending checks out of order: {seqs}"
            )
        if any(seq >= engine._next_seq for seq in seqs):
            raise EngineInvariantError(
                where,
                f"pending seq beyond allocator: {seqs} vs next "
                f"{engine._next_seq}",
            )
        detected = sum(1 for p in engine._pending if p.result.detected)
        if detected != engine._pending_detected:
            raise EngineInvariantError(
                where,
                f"detection counter {engine._pending_detected} != actual "
                f"{detected}",
            )

    @staticmethod
    def _check_tracker(engine: "SimulationEngine", where: str) -> None:
        tracker = engine.tracker
        stamps: Dict[int, int] = tracker._timestamp
        if engine.options.granularity is RollbackGranularity.NONE:
            if stamps:
                raise EngineInvariantError(
                    where,
                    f"tracker holds {len(stamps)} lines with rollback "
                    f"granularity none",
                )
            return
        # Per-set occupancy counters must equal a recount of the map.
        recount = [0] * tracker.num_sets
        for line in stamps:
            recount[tracker.set_index(line)] += 1
        if recount != tracker._set_load:
            raise EngineInvariantError(
                where,
                f"tracker set-load counters disagree with line map: "
                f"{sum(tracker._set_load)} counted vs {len(stamps)} lines",
            )
        # Every stamp must name a live (uncommitted) segment that really
        # stored to that line: no stale stamps for committed or squashed
        # work.  (The converse — every uncommitted store being tracked —
        # does not hold: commit_write keeps only the newest writer per
        # line, and rollback drops stamps newer than the boundary.)
        live: Dict[int, LogSegment] = {
            p.segment.seq: p.segment for p in engine._pending
        }
        filler = engine._segment
        if filler is not None:
            live[filler.seq] = filler
        store_lines: Dict[int, Set[int]] = {
            seq: {tracker.line_of(a) for a in seg.store_addrs}
            for seq, seg in live.items()
        }
        for line, stamp in stamps.items():
            owner = store_lines.get(stamp)
            if owner is None:
                raise EngineInvariantError(
                    where,
                    f"line {line:#x} stamped by seq {stamp} which is "
                    f"neither pending nor filling (live: {sorted(live)})",
                )
            if line not in owner:
                raise EngineInvariantError(
                    where,
                    f"line {line:#x} stamped by seq {stamp} but that "
                    f"segment never stored to it",
                )

    @staticmethod
    def _check_pool(engine: "SimulationEngine", where: str) -> None:
        pool = engine.pool
        health = engine.health
        if pool is None or health is None:
            return
        quarantined = health.quarantined
        all_ids = {core.core_id for core in pool.cores}
        unknown = quarantined - all_ids
        if unknown:
            raise EngineInvariantError(
                where, f"quarantined unknown core ids {sorted(unknown)}"
            )
        eligible = {core.core_id for core in pool._eligible(None)}
        overlap = eligible & quarantined
        # _eligible drops the health filter only when it would empty the
        # pool; any other overlap means quarantine is leaking work.
        if overlap and not all_ids <= quarantined:
            raise EngineInvariantError(
                where,
                f"quarantined cores {sorted(overlap)} still eligible for "
                f"dispatch",
            )

    @staticmethod
    def _check_dvfs(engine: "SimulationEngine", where: str) -> None:
        dvfs = engine.dvfs
        if dvfs is None:
            return
        config = dvfs.config
        voltage = dvfs.voltage
        if not (
            config.min_voltage - _EPS <= voltage <= config.safe_voltage + _EPS
        ):
            raise EngineInvariantError(
                where,
                f"voltage {voltage:.4f} outside "
                f"[{config.min_voltage}, {config.safe_voltage}]",
            )
        tide = dvfs.tide_mark
        if not (0.0 <= tide <= config.safe_voltage + _EPS):
            raise EngineInvariantError(
                where,
                f"tide mark {tide:.4f} outside [0, {config.safe_voltage}]",
            )
