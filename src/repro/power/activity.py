"""Activity-based energy accounting.

The figure 13 analysis scales whole-core power with voltage and
frequency; this module complements it with a McPAT-flavoured
*activity* model: dynamic energy proportional to the executed
instruction mix, with per-unit-class weights
(:data:`repro.config.ENERGY_PER_INSTRUCTION`).  The paper notes McPAT
"would be more fine-grained, but lack[s] the level of accuracy needed"
for heterogeneous core comparisons — the same caveat applies here, so
this model feeds *relative* comparisons only:

* the energy cost of wasted re-execution (recovery runs the same
  instructions again, so its energy is visible in the executed-vs-useful
  mix difference);
* per-workload dynamic-energy intensity (FP-heavy vs ALU-heavy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..config import ENERGY_PER_INSTRUCTION
from ..stats import RunResult


@dataclass(frozen=True)
class ActivityReport:
    """Relative dynamic-energy accounting for one run."""

    workload: str
    system: str
    #: Energy units (1.0 = one main-core ALU op) actually spent.
    executed_energy: float
    #: Energy that useful (committed-and-kept) instructions required.
    useful_energy: float
    instructions_executed: int
    instructions_useful: int

    @property
    def wasted_energy(self) -> float:
        """Energy burnt on execution that was later rolled back."""
        return max(self.executed_energy - self.useful_energy, 0.0)

    @property
    def waste_fraction(self) -> float:
        if self.executed_energy == 0:
            return 0.0
        return self.wasted_energy / self.executed_energy

    @property
    def energy_per_instruction(self) -> float:
        if self.instructions_executed == 0:
            return 0.0
        return self.executed_energy / self.instructions_executed


def mix_energy(unit_mix: Mapping[str, int]) -> float:
    """Total relative dynamic energy of an instruction mix."""
    total = 0.0
    for unit, count in unit_mix.items():
        try:
            weight = ENERGY_PER_INSTRUCTION[unit]
        except KeyError:
            raise KeyError(f"no energy weight for unit class {unit!r}") from None
        total += weight * count
    return total


def activity_report(result: RunResult) -> ActivityReport:
    """Energy accounting for one run.

    The useful-energy estimate scales the executed mix down by the
    useful/executed instruction ratio — exact when re-executed code has
    the same mix as first-time code, which re-running the same program
    region guarantees in expectation.
    """
    executed = mix_energy(result.unit_mix)
    if result.instructions_executed:
        useful = executed * result.instructions / result.instructions_executed
    else:
        useful = 0.0
    return ActivityReport(
        workload=result.workload,
        system=result.system,
        executed_energy=executed,
        useful_energy=useful,
        instructions_executed=result.instructions_executed,
        instructions_useful=result.instructions,
    )


def recovery_energy_overhead(
    faulty: RunResult, clean: RunResult
) -> Dict[str, float]:
    """Compare a run under errors against its error-free twin.

    Returns the relative extra dynamic energy recovery cost, decomposed
    into re-execution (instruction count growth) and intensity change.
    """
    faulty_report = activity_report(faulty)
    clean_report = activity_report(clean)
    if clean_report.executed_energy == 0:
        raise ValueError("clean run executed nothing")
    return {
        "energy_ratio": faulty_report.executed_energy / clean_report.executed_energy,
        "reexecution_ratio": (
            faulty.instructions_executed / clean.instructions_executed
            if clean.instructions_executed
            else 0.0
        ),
        "waste_fraction": faulty_report.waste_fraction,
    }
