"""Power, energy and voltage/frequency trade-off models (section VI-E)."""

from .activity import ActivityReport, activity_report, mix_energy, recovery_energy_overhead
from .model import (
    CHECKER_POOL_FULL_POWER,
    DYNAMIC_FRACTION,
    OperatingPoint,
    checker_pool_power,
    energy_delay_product,
    frequency_for_voltage,
    main_core_power,
    voltage_for_frequency,
)
from .overclocking import (
    OverclockScenario,
    PARADOX_BASE_VOLTAGE,
    THRESHOLD_VOLTAGE,
    boost_performance,
    paramedic_edp_ratio,
    restore_performance,
)
from .report import EnergyRow, EnergySummary, energy_row, summarise
from .xgene import (
    UndervoltPoint,
    XGENE3_NOMINAL_FREQUENCY_HZ,
    XGENE3_NOMINAL_VOLTAGE,
    XGENE3_UNDERVOLT,
    undervolt_point,
)

__all__ = [
    "ActivityReport",
    "CHECKER_POOL_FULL_POWER",
    "activity_report",
    "mix_energy",
    "recovery_energy_overhead",
    "DYNAMIC_FRACTION",
    "EnergyRow",
    "EnergySummary",
    "OperatingPoint",
    "OverclockScenario",
    "PARADOX_BASE_VOLTAGE",
    "THRESHOLD_VOLTAGE",
    "UndervoltPoint",
    "XGENE3_NOMINAL_FREQUENCY_HZ",
    "XGENE3_NOMINAL_VOLTAGE",
    "XGENE3_UNDERVOLT",
    "boost_performance",
    "checker_pool_power",
    "energy_delay_product",
    "energy_row",
    "frequency_for_voltage",
    "main_core_power",
    "paramedic_edp_ratio",
    "restore_performance",
    "summarise",
    "undervolt_point",
    "voltage_for_frequency",
]
