"""Section VI-E's overclocking trade-off analysis.

ParaDox's slowdown can be traded against its power savings by moving
along the ``f proportional to V - V_th`` line:

* **Restore performance**: raise the clock by the slowdown fraction and
  the voltage by just enough to sustain it.  The paper: "a 4.5% clock
  frequency increase to mitigate the slowdown could be achieved with
  around 0.019 V (at a base of .872 V and threshold .45 V), increasing
  power consumption by 9% relative to the slower case, but reducing it by
  15% relative to the voltage-margined baseline".
* **Restore power / boost performance**: spend the entire power saving on
  frequency: "we could increase voltage by 0.06 V from the undervolted
  3.2 GHz value, increasing clock frequency by 13% to around 3.6 GHz".
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import OperatingPoint, frequency_for_voltage, main_core_power
from .xgene import XGENE3_NOMINAL_FREQUENCY_HZ, XGENE3_NOMINAL_VOLTAGE

#: Operating point of the undervolted-but-not-overclocked ParaDox system
#: used as the section's base case.
PARADOX_BASE_VOLTAGE = 0.872
THRESHOLD_VOLTAGE = 0.45


@dataclass(frozen=True)
class OverclockScenario:
    """One point in the voltage/frequency trade-off space."""

    name: str
    voltage: float
    frequency_hz: float
    #: Power relative to the undervolted 3.2 GHz ParaDox point.
    power_vs_undervolted: float
    #: Power relative to the margined baseline.
    power_vs_margined: float
    #: Performance relative to the margined baseline (1.0 = parity).
    performance: float

    @property
    def frequency_increase_percent(self) -> float:
        return (self.frequency_hz / XGENE3_NOMINAL_FREQUENCY_HZ - 1.0) * 100.0

    @property
    def voltage_increase(self) -> float:
        return self.voltage - PARADOX_BASE_VOLTAGE


def _relative_power(point: OperatingPoint, reference: OperatingPoint) -> float:
    return main_core_power(point, reference) / main_core_power(reference, reference)


def restore_performance(slowdown: float = 1.045) -> OverclockScenario:
    """Overclock just enough to cancel ParaDox's slowdown."""
    base = OperatingPoint(PARADOX_BASE_VOLTAGE, XGENE3_NOMINAL_FREQUENCY_HZ)
    margined = OperatingPoint(XGENE3_NOMINAL_VOLTAGE, XGENE3_NOMINAL_FREQUENCY_HZ)
    target_frequency = XGENE3_NOMINAL_FREQUENCY_HZ * slowdown
    # f proportional to V - V_th: scale the headroom by the same factor.
    voltage = THRESHOLD_VOLTAGE + (PARADOX_BASE_VOLTAGE - THRESHOLD_VOLTAGE) * slowdown
    point = OperatingPoint(voltage, target_frequency)
    return OverclockScenario(
        name="restore-performance",
        voltage=voltage,
        frequency_hz=target_frequency,
        power_vs_undervolted=main_core_power(point, base),
        power_vs_margined=main_core_power(point, margined),
        performance=1.0,
    )


def boost_performance(voltage_increase: float = 0.06, slowdown: float = 1.045) -> OverclockScenario:
    """Spend the remaining margin on frequency above nominal."""
    margined = OperatingPoint(XGENE3_NOMINAL_VOLTAGE, XGENE3_NOMINAL_FREQUENCY_HZ)
    base = OperatingPoint(PARADOX_BASE_VOLTAGE, XGENE3_NOMINAL_FREQUENCY_HZ)
    voltage = PARADOX_BASE_VOLTAGE + voltage_increase
    frequency = frequency_for_voltage(
        voltage,
        PARADOX_BASE_VOLTAGE,
        XGENE3_NOMINAL_FREQUENCY_HZ,
        THRESHOLD_VOLTAGE,
    )
    point = OperatingPoint(voltage, frequency)
    performance = (frequency / XGENE3_NOMINAL_FREQUENCY_HZ) / slowdown
    return OverclockScenario(
        name="boost-performance",
        voltage=voltage,
        frequency_hz=frequency,
        power_vs_undervolted=main_core_power(point, base),
        power_vs_margined=main_core_power(point, margined),
        performance=performance,
    )


def paramedic_edp_ratio(
    paramedic_slowdown: float = 1.08, paradox_edp: float = 0.85
) -> float:
    """ParaMedic's EDP relative to ParaDox's (the paper reports 1.27x).

    ParaMedic does not undervolt, so its power is the margined baseline's
    plus the (ungated) checker pool; its EDP is ``(1 + checker) * s^2``.
    """
    from .model import CHECKER_POOL_FULL_POWER

    paramedic_power = 1.0 + CHECKER_POOL_FULL_POWER
    paramedic_edp = paramedic_power * paramedic_slowdown * paramedic_slowdown
    return paramedic_edp / paradox_edp
