"""Per-workload undervolting points (X-Gene 3 substitute data).

Figure 13 combines the paper's simulated ParaDox slowdowns with *measured*
undervolting power data for an Arm X-Gene 3 from Papadimitriou et
al. [51], who report ~22.3% power savings from cutting the voltage margin
(nominal 0.98 V down to a per-workload minimum around 0.87 V, varying
with how hard each workload drives the critical paths).

That dataset is not redistributable, so this module carries a synthetic
per-workload table with the same structure: nominal voltage 0.98 V, and a
safe undervolted point per SPEC workload spanning 0.855-0.89 V.  The
spread follows the paper's qualitative reporting — compute-intense,
FP-heavy workloads (higher di/dt stress) tolerate slightly less
undervolt than memory-bound ones.  DESIGN.md records this substitution;
the *mean* saving is calibrated to the published 22%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: X-Gene 3 nominal supply (Papadimitriou et al.).
XGENE3_NOMINAL_VOLTAGE = 0.98
#: X-Gene 3 nominal clock used in section VI-E's overclocking analysis.
XGENE3_NOMINAL_FREQUENCY_HZ = 3.2e9


@dataclass(frozen=True)
class UndervoltPoint:
    """Safe undervolted operating voltage for one workload."""

    workload: str
    undervolt_voltage: float

    @property
    def voltage_ratio(self) -> float:
        return self.undervolt_voltage / XGENE3_NOMINAL_VOLTAGE


#: Synthetic per-workload safe undervolt voltages (see module docstring).
#: Memory-bound workloads (mcf, lbm, GemsFDTD, bwaves) sit near the low
#: end; branchy/FP-stress workloads (povray, namd, h264ref) near the top.
XGENE3_UNDERVOLT: Dict[str, UndervoltPoint] = {
    point.workload: point
    for point in [
        UndervoltPoint("bzip2", 0.870),
        UndervoltPoint("bwaves", 0.858),
        UndervoltPoint("gcc", 0.872),
        UndervoltPoint("mcf", 0.855),
        UndervoltPoint("milc", 0.865),
        UndervoltPoint("cactusADM", 0.868),
        UndervoltPoint("leslie3d", 0.863),
        UndervoltPoint("namd", 0.885),
        UndervoltPoint("gobmk", 0.874),
        UndervoltPoint("povray", 0.889),
        UndervoltPoint("calculix", 0.872),
        UndervoltPoint("sjeng", 0.876),
        UndervoltPoint("GemsFDTD", 0.858),
        UndervoltPoint("h264ref", 0.882),
        UndervoltPoint("tonto", 0.870),
        UndervoltPoint("lbm", 0.856),
        UndervoltPoint("omnetpp", 0.866),
        UndervoltPoint("astar", 0.864),
        UndervoltPoint("xalancbmk", 0.870),
    ]
}


def undervolt_point(workload: str) -> UndervoltPoint:
    """Look up the safe undervolt voltage for a workload proxy."""
    try:
        return XGENE3_UNDERVOLT[workload]
    except KeyError:
        raise KeyError(f"no undervolt data for workload {workload!r}") from None
