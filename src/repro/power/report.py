"""Energy reporting: the figure 13 row calculator.

For one workload, combine:

* the undervolted main-core power (V^2 f at the workload's safe
  undervolt point, figure 13's "Power" bars),
* the checker-pool power under aggressive gating (from the simulated
  wake rates of figure 12),
* the simulated ParaDox slowdown against an unprotected baseline,

into the three normalised ratios the figure reports: power, slowdown and
energy-delay product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..stats import RunResult
from .model import (
    OperatingPoint,
    checker_pool_power,
    energy_delay_product,
    main_core_power,
)
from .xgene import (
    XGENE3_NOMINAL_FREQUENCY_HZ,
    XGENE3_NOMINAL_VOLTAGE,
    undervolt_point,
)


@dataclass(frozen=True)
class EnergyRow:
    """One workload's row of figure 13 (all relative to baseline = 1.0)."""

    workload: str
    power: float
    slowdown: float
    edp: float
    main_power: float
    checker_power: float
    undervolt_voltage: float

    def as_tuple(self) -> "tuple[str, float, float, float]":
        return (self.workload, self.power, self.slowdown, self.edp)


def energy_row(
    workload: str,
    paradox: RunResult,
    baseline: RunResult,
    undervolt_voltage: Optional[float] = None,
    frequency_hz: float = XGENE3_NOMINAL_FREQUENCY_HZ,
) -> EnergyRow:
    """Compute one figure 13 row.

    ``undervolt_voltage`` defaults to the workload's entry in the
    X-Gene 3 substitute table; pass an explicit value to study other
    operating points.  The analysis holds frequency fixed, like the
    figure ("the analysis assumes a fixed clock frequency").
    """
    if undervolt_voltage is None:
        undervolt_voltage = undervolt_point(workload).undervolt_voltage
    nominal = OperatingPoint(XGENE3_NOMINAL_VOLTAGE, frequency_hz)
    undervolted = OperatingPoint(undervolt_voltage, frequency_hz)

    main_power = main_core_power(undervolted, nominal)
    checker_power = checker_pool_power(paradox.checker_wake_rates, gated=True)
    power = main_power + checker_power
    slowdown = paradox.slowdown_vs(baseline)
    return EnergyRow(
        workload=workload,
        power=power,
        slowdown=slowdown,
        edp=energy_delay_product(power, slowdown),
        main_power=main_power,
        checker_power=checker_power,
        undervolt_voltage=undervolt_voltage,
    )


@dataclass(frozen=True)
class EnergySummary:
    """Suite-level aggregates quoted in the paper's abstract."""

    mean_power: float
    mean_slowdown: float
    mean_edp: float

    @property
    def power_reduction_percent(self) -> float:
        return (1.0 - self.mean_power) * 100.0

    @property
    def edp_reduction_percent(self) -> float:
        return (1.0 - self.mean_edp) * 100.0

    @property
    def slowdown_percent(self) -> float:
        return (self.mean_slowdown - 1.0) * 100.0


def summarise(rows: Sequence[EnergyRow]) -> EnergySummary:
    """Geometric-mean aggregates over the suite (the figure's gmean bar)."""
    if not rows:
        raise ValueError("no rows to summarise")

    def gmean(values: Sequence[float]) -> float:
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values))

    return EnergySummary(
        mean_power=gmean([r.power for r in rows]),
        mean_slowdown=gmean([r.slowdown for r in rows]),
        mean_edp=gmean([r.edp for r in rows]),
    )
