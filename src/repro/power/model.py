"""Power and energy model.

Follows the paper's section VI-E assumptions: dynamic power proportional
to ``V^2 f`` with attainable frequency proportional to ``V - V_th``
(Borkar & Chien [21]), a small static component proportional to ``V``,
and checker-core power bounded by the Rocket-core-derived constant "never
more than 5% in addition" for all sixteen checkers, scaled by the
per-core wake rates that aggressive gating produces (figure 12).

All powers are *relative*: 1.0 is the margined baseline main core at
nominal voltage and frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: Fraction of main-core power that is dynamic (V^2 f); the rest is
#: static leakage (proportional to V).
DYNAMIC_FRACTION = 0.85
#: All sixteen checker cores at full utilisation add this fraction of the
#: main core's power ("never more than 5%", section VI-E, derived from
#: public RISC-V Rocket data scaled to the X-Gene 3's 16 nm process).
CHECKER_POOL_FULL_POWER = 0.05
#: A power-gated checker core and its log SRAM consume effectively zero;
#: an awake-but-idle one still leaks this fraction of its active power.
CHECKER_IDLE_LEAKAGE = 0.10


@dataclass(frozen=True)
class OperatingPoint:
    """A (voltage, frequency) pair, relative to the nominal point."""

    voltage: float
    frequency_hz: float


def main_core_power(
    point: OperatingPoint,
    nominal: OperatingPoint,
) -> float:
    """Main-core power relative to the nominal operating point."""
    v_ratio = point.voltage / nominal.voltage
    f_ratio = point.frequency_hz / nominal.frequency_hz
    dynamic = DYNAMIC_FRACTION * v_ratio * v_ratio * f_ratio
    static = (1.0 - DYNAMIC_FRACTION) * v_ratio
    return dynamic + static


def checker_pool_power(wake_rates: Sequence[float], gated: bool = True) -> float:
    """Checker-pool power relative to the nominal main core.

    With gating (ParaDox), a core contributes its active power times its
    wake rate; without gating (ParaMedic's round-robin keeps all cores and
    their logs powered), every core that was ever used leaks at idle and
    burns active power while awake.
    """
    if not wake_rates:
        return 0.0
    per_core = CHECKER_POOL_FULL_POWER / len(wake_rates)
    total = 0.0
    for rate in wake_rates:
        active = per_core * min(rate, 1.0)
        if gated:
            total += active
        else:
            idle = per_core * CHECKER_IDLE_LEAKAGE * (1.0 - min(rate, 1.0))
            total += active + idle
    if not gated:
        # Ungated pools additionally keep unused cores powered.
        pass
    return total


def energy_delay_product(power: float, slowdown: float) -> float:
    """Relative EDP: ``E * t = (P * t) * t`` with baseline slowdown 1."""
    return power * slowdown * slowdown


def frequency_for_voltage(
    voltage: float,
    reference_voltage: float,
    reference_frequency_hz: float,
    threshold_voltage: float = 0.45,
) -> float:
    """Attainable frequency at ``voltage``: ``f proportional to V - V_th`` [21]."""
    if voltage <= threshold_voltage:
        raise ValueError(f"voltage {voltage} at or below threshold {threshold_voltage}")
    return (
        reference_frequency_hz
        * (voltage - threshold_voltage)
        / (reference_voltage - threshold_voltage)
    )


def voltage_for_frequency(
    frequency_hz: float,
    reference_voltage: float,
    reference_frequency_hz: float,
    threshold_voltage: float = 0.45,
) -> float:
    """Inverse of :func:`frequency_for_voltage`."""
    return threshold_voltage + (reference_voltage - threshold_voltage) * (
        frequency_hz / reference_frequency_hz
    )
