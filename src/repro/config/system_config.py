"""System configuration, encoding Table I of the paper.

Every number in Table I appears here as a default on a frozen dataclass,
so tests can assert the reproduction simulates the published
configuration, and experiments can deviate explicitly (e.g. the
design-space sweeps vary error rates and checkpoint limits without
touching the core model).

All frequencies are in Hz, sizes in bytes, latencies in cycles of the
owning clock domain unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

GHZ = 1_000_000_000
KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class MainCoreConfig:
    """The 3-wide out-of-order main core ("Main Cores", Table I)."""

    frequency_hz: float = 3.2 * GHZ
    commit_width: int = 3
    rob_entries: int = 40
    issue_queue_entries: int = 32
    load_queue_entries: int = 16
    store_queue_entries: int = 16
    int_phys_registers: int = 128
    fp_phys_registers: int = 128
    int_alus: int = 3
    fp_alus: int = 2
    mult_div_alus: int = 1
    #: Cycles commit is blocked while copying the register file at a
    #: checkpoint ("Reg. Checkpoint: 16 cycles latency").
    register_checkpoint_cycles: int = 16

    @property
    def cycle_ns(self) -> float:
        return 1e9 / self.frequency_hz


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Tournament predictor ("Tournament Branch Pred.", Table I)."""

    local_entries: int = 2048
    global_entries: int = 8192
    chooser_entries: int = 2048
    btb_entries: int = 2048
    ras_entries: int = 16
    local_history_bits: int = 11
    global_history_bits: int = 13
    #: Pipeline refill penalty on a mispredict, in main-core cycles.
    mispredict_penalty_cycles: int = 12


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    associativity: int
    hit_latency_cycles: int
    mshrs: int
    line_bytes: int = 64
    prefetcher: str = "none"  # "none" or "stride"

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.associativity}-way sets of {self.line_bytes}B lines"
            )


@dataclass(frozen=True)
class MemoryConfig:
    """Memory hierarchy ("Memory", Table I)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * KIB, 2, 1, mshrs=6)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * KIB, 4, 2, mshrs=6)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1 * MIB, 16, 12, mshrs=16, prefetcher="stride")
    )
    #: DDR3-1600 11-11-11-28 at 800 MHz: ~55 ns average access modelled as
    #: a flat latency in main-core cycles at 3.2 GHz.
    dram_latency_cycles: int = 176
    dram_name: str = "DDR3-1600 11-11-11-28 800MHz"


@dataclass(frozen=True)
class CheckerConfig:
    """Checker cores ("Checker Cores", Table I)."""

    count: int = 16
    frequency_hz: float = 1.0 * GHZ
    pipeline_stages: int = 4
    #: Load-store log SRAM per checker core.
    log_bytes_per_core: int = 6 * KIB
    #: Hard upper bound on instructions per checkpoint.
    max_checkpoint_instructions: int = 5000
    l0_icache_bytes: int = 8 * KIB
    shared_l1_icache_bytes: int = 32 * KIB

    @property
    def cycle_ns(self) -> float:
        return 1e9 / self.frequency_hz


@dataclass(frozen=True)
class CheckpointConfig:
    """AIMD checkpoint-length adaptation (section IV-A)."""

    #: Additive increase per error-free checkpoint.
    additive_increase: int = 10
    #: Multiplicative decrease factor on an observed error.
    multiplicative_decrease: float = 0.5
    #: Cap, equal to the checker log's instruction capacity.
    max_instructions: int = 5000
    #: Floor to avoid degenerate single-instruction checkpoints.
    min_instructions: int = 10
    #: Initial target length.
    initial_instructions: int = 1000
    #: ParaDox also clamps to the observed previous-checkpoint length
    #: (min(half target, observed), section IV-A); ParaMedic does not.
    clamp_to_observed: bool = True


@dataclass(frozen=True)
class DvfsConfig:
    """Dynamic voltage adaptation parameters (section IV-B)."""

    #: Nominal (margined) supply voltage.  Matches the Itanium II 9560
    #: nominal from Tan et al. used for the error model.
    nominal_voltage: float = 1.1
    #: Voltage known safe under margins (errors never observed above it).
    safe_voltage: float = 1.1
    #: Lowest voltage the regulator can produce.
    min_voltage: float = 0.70
    #: Transistor threshold voltage (f proportional to V - Vth) [25].
    threshold_voltage: float = 0.45
    #: On an error the (safe - current) difference shrinks by this factor
    #: ("a multiplicative factor of .875").
    recovery_factor: float = 0.875
    #: Voltage step added to the difference per error-free checkpoint.
    #: The default is compressed for simulation windows of 1e5-1e6
    #: instructions; hardware would step far slower (see DESIGN.md).
    step_volts: float = 0.002
    #: Warm-start difference (volts below safe) at boot.  0 reproduces the
    #: paper's cold start from nominal (figure 11); steady-state studies
    #: (figures 10/13) warm-start near the equilibrium to avoid spending
    #: the whole simulation window descending.
    initial_difference: float = 0.0
    #: Decrease slows by this factor below the highest-error tide mark.
    tide_slowdown: float = 8.0
    #: The tide mark resets after this many errors.
    tide_reset_errors: int = 100
    #: Regulator slew limit (volts per microsecond).
    slew_volts_per_us: float = 0.01


@dataclass(frozen=True)
class FaultConfig:
    """Error-injection defaults (section V-A)."""

    #: Per-event probability for the geometric inter-arrival distribution,
    #: i.e. expected errors per targeted operation.  0 disables injection.
    error_rate: float = 0.0
    #: Checker-to-main detection is symmetric; the paper injects into
    #: checkers only.  Property tests also exercise main-core injection.
    target: str = "checker"
    seed: int = 12345


@dataclass(frozen=True)
class SystemConfig:
    """Complete experimental setup (Table I plus ParaDox parameters)."""

    main_core: MainCoreConfig = field(default_factory=MainCoreConfig)
    branch_predictor: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    checker: CheckerConfig = field(default_factory=CheckerConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    dvfs: DvfsConfig = field(default_factory=DvfsConfig)
    fault: FaultConfig = field(default_factory=FaultConfig)

    def with_error_rate(self, rate: float, seed: int = 12345) -> "SystemConfig":
        """Convenience copy with a different injected error rate."""
        return replace(self, fault=replace(self.fault, error_rate=rate, seed=seed))

    def frequency_ratio(self) -> float:
        """Main-core to checker-core clock ratio (3.2 by default)."""
        return self.main_core.frequency_hz / self.checker.frequency_hz


def table1_config() -> SystemConfig:
    """The exact configuration of Table I."""
    return SystemConfig()


#: Instruction latencies for the main core's functional units, in
#: main-core cycles.  The values follow common 3-wide OoO designs
#: (and gem5's O3 defaults for an A57-class core).
MAIN_FU_LATENCY: "dict[str, int]" = {
    "int_alu": 1,
    "int_mul": 3,
    "int_div": 12,
    "fp_alu": 3,
    "fp_mul": 4,
    "fp_div": 16,
    "load": 2,  # plus cache-miss penalties
    "store": 1,
    "branch": 1,
    "system": 1,
}

#: Checker-core latencies in checker cycles.  In-order scalar cores have
#: relatively slower complex units ("the divide unit of a checker core may
#: be considerably lower performance", section IV-C).
CHECKER_FU_LATENCY: "dict[str, int]" = {
    "int_alu": 1,
    "int_mul": 4,
    "int_div": 24,
    "fp_alu": 4,
    "fp_mul": 6,
    "fp_div": 32,
    "load": 1,  # load-store log hit: a queue read
    "store": 1,  # comparison against the log
    "branch": 1,
    "system": 1,
}

#: Weights (relative dynamic energy per instruction class) used by the
#: power model; normalised to an int ALU op on the main core.
ENERGY_PER_INSTRUCTION: "dict[str, float]" = {
    "int_alu": 1.0,
    "int_mul": 2.2,
    "int_div": 5.0,
    "fp_alu": 2.5,
    "fp_mul": 3.0,
    "fp_div": 7.0,
    "load": 1.8,
    "store": 1.8,
    "branch": 1.1,
    "system": 1.0,
}
