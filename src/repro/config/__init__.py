"""Experimental configuration (Table I of the paper, as code)."""

from .system_config import (
    CHECKER_FU_LATENCY,
    ENERGY_PER_INSTRUCTION,
    GHZ,
    KIB,
    MAIN_FU_LATENCY,
    MIB,
    BranchPredictorConfig,
    CacheConfig,
    CheckerConfig,
    CheckpointConfig,
    DvfsConfig,
    FaultConfig,
    MainCoreConfig,
    MemoryConfig,
    SystemConfig,
    table1_config,
)

__all__ = [
    "BranchPredictorConfig",
    "CHECKER_FU_LATENCY",
    "CacheConfig",
    "CheckerConfig",
    "CheckpointConfig",
    "DvfsConfig",
    "ENERGY_PER_INSTRUCTION",
    "FaultConfig",
    "GHZ",
    "KIB",
    "MAIN_FU_LATENCY",
    "MIB",
    "MainCoreConfig",
    "MemoryConfig",
    "SystemConfig",
    "table1_config",
]
