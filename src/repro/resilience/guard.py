"""Forward-progress guarantees for error-intensive operation.

ParaDox deliberately runs where errors are frequent, so the recovery
machinery must never turn a fault burst into a hard crash.  Historically
the engine raised :class:`~repro.core.engine.LivelockError` once total
execution exceeded its budget — a blunt instrument that aborts runs the
hardware would have saved.  The :class:`ForwardProgressGuard` replaces
that with staged escalation, mirroring what a real power-management unit
would do when the same checkpoint keeps rolling back:

1. **Shrink** — collapse the checkpoint window to its minimum via
   :meth:`~repro.checkpoint.CheckpointLengthController.force_minimum`,
   minimising the work wasted per attempt.
2. **Voltage** — step the supply back toward the margined safe point
   through :meth:`~repro.dvfs.VoltageController.escalate`.  Transient,
   voltage-dependent faults die off as the margin returns.
3. **Fail** — only when the storm persists *at the safe voltage* (the
   signature of a permanent defect, e.g. a stuck-at bit) does the guard
   surface a typed :class:`ForwardProgressFailure` carrying full
   diagnostics: the implicated checker, detection-channel histogram,
   fault-injection stats, persistent-fault descriptions and the recent
   voltage trace.

The guard observes *consecutive rollbacks of the same checkpoint*
(identified by the architectural instruction count at the checkpoint),
the precise signature of a run that is no longer making progress; any
clean commit or a rollback to a different checkpoint resets it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..checkpoint import CheckpointLengthController
from ..dvfs import VoltageController
from ..faults.injector import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry import Tracer


@dataclass(frozen=True)
class ResilienceConfig:
    """Escalation thresholds and quarantine policy."""

    #: Consecutive same-checkpoint rollbacks before the checkpoint window
    #: is collapsed to its minimum length.
    shrink_after: int = 3
    #: Consecutive rollbacks before voltage escalation begins (each
    #: further rollback escalates again until the supply is safe).
    escalate_after: int = 5
    #: Consecutive rollbacks, *with the supply already at the safe
    #: voltage*, before the guard declares forward-progress failure.
    fail_after: int = 12
    #: Per-escalation factor applied to the (safe - target) difference.
    voltage_escalation_factor: float = 0.5
    #: Vindicated false detections before a checker is quarantined.
    quarantine_vindications: int = 3
    #: Master switch for checker health tracking / quarantine.
    quarantine_enabled: bool = True


@dataclass
class EscalationEvent:
    """One guard action, recorded for reports and the campaign runner."""

    at_ns: float
    #: "shrink" | "voltage" | "fail"
    stage: str
    #: Architectural instruction count of the stuck checkpoint.
    checkpoint_instret: int
    #: Consecutive same-checkpoint rollbacks at the time of the action.
    streak: int
    #: Actual supply voltage at the time of the action (nominal if no DVS).
    voltage: float


@dataclass
class ForwardProgressDiagnostics:
    """Everything known about a run that could not make progress."""

    checkpoint_instret: int
    consecutive_rollbacks: int
    #: Checker core most often reporting the storm's detections (None if
    #: the storm came from main-core traps only).
    implicated_checker: Optional[int]
    #: Detection-channel value -> count within the storm.
    channel_counts: Dict[str, int] = field(default_factory=dict)
    #: Supply voltage when the failure was declared.
    voltage: float = 0.0
    at_safe_voltage: bool = True
    #: Tail of the (time_ns, voltage) trace covering the escalation.
    voltage_trace_tail: List[Tuple[float, float]] = field(default_factory=list)
    #: Injector counters at failure time (None when running fault-free).
    fault_stats: Optional[Dict[str, int]] = None
    #: Descriptions of permanent fault models known to the injector —
    #: the "named faulty unit" of a stuck-at diagnosis.
    suspected_faults: List[str] = field(default_factory=list)
    #: Checker cores already quarantined when the failure was declared.
    quarantined_checkers: List[int] = field(default_factory=list)

    def summary(self) -> str:
        parts = [
            f"no forward progress at instruction {self.checkpoint_instret} "
            f"after {self.consecutive_rollbacks} consecutive rollbacks "
            f"at {self.voltage:.3f} V"
            + (" (safe)" if self.at_safe_voltage else ""),
        ]
        if self.implicated_checker is not None:
            parts.append(f"implicated checker: {self.implicated_checker}")
        if self.suspected_faults:
            parts.append("suspected faults: " + "; ".join(self.suspected_faults))
        if self.quarantined_checkers:
            parts.append(
                "quarantined checkers: "
                + ", ".join(str(c) for c in self.quarantined_checkers)
            )
        return " | ".join(parts)


class ForwardProgressFailure(RuntimeError):
    """The run cannot progress even at the safe voltage (typed failure)."""

    def __init__(self, diagnostics: ForwardProgressDiagnostics) -> None:
        super().__init__(diagnostics.summary())
        self.diagnostics = diagnostics


class ForwardProgressGuard:
    """Watches rollbacks and escalates instead of livelocking."""

    def __init__(
        self,
        config: ResilienceConfig,
        length_controller: CheckpointLengthController,
        dvfs: Optional[VoltageController] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config
        self.length_controller = length_controller
        self.dvfs = dvfs
        self.injector = injector
        self.events: List[EscalationEvent] = []
        self._streak = 0
        self._instret: Optional[int] = None
        self._channels: Counter = Counter()
        self._checkers: Counter = Counter()
        #: Set by the engine so failure diagnostics can report quarantines.
        self.quarantined_provider = lambda: []
        #: Telemetry bus (set by the engine when tracing is enabled).
        self.tracer: Optional["Tracer"] = None

    def _trace_escalation(self, event: EscalationEvent) -> None:
        if self.tracer is None:
            return
        self.tracer.emit(
            "resilience",
            "escalation",
            time_ns=event.at_ns,
            value=event.voltage,
            detail=event.stage,
        )
        self.tracer.metrics.inc(f"resilience.escalations.{event.stage}")

    # -- state -------------------------------------------------------------------
    @property
    def streak(self) -> int:
        """Current consecutive same-checkpoint rollback count."""
        return self._streak

    def _reset(self) -> None:
        if self._streak > 0 and self.dvfs is not None:
            # Progress resumed: the escalated voltage may descend again.
            self.dvfs.release_hold()
        self._streak = 0
        self._instret = None
        self._channels.clear()
        self._checkers.clear()

    def on_progress(self) -> None:
        """Unconditional reset: the run is known to be moving again."""
        self._reset()

    def on_commit(self, end_instret: int) -> None:
        """A check committed clean up to ``end_instret``.

        Only a commit reaching *past* the stuck checkpoint counts as
        progress — older segments draining behind a storm do not.
        """
        if self._instret is None or end_instret > self._instret:
            self._reset()

    # -- escalation --------------------------------------------------------------
    def _voltage_now(self) -> float:
        if self.dvfs is not None:
            return self.dvfs.voltage
        return 0.0

    def _at_safe(self) -> bool:
        return self.dvfs is None or self.dvfs.at_safe_voltage

    def on_rollback(
        self,
        checkpoint_instret: int,
        now_ns: float,
        checker_id: Optional[int] = None,
        channel: Optional[str] = None,
    ) -> None:
        """Record a rollback; escalate or raise when the streak demands it.

        Raises :class:`ForwardProgressFailure` when the storm persists at
        the safe voltage — the caller propagates it to a typed
        :class:`~repro.stats.RunResult` outcome.
        """
        if checkpoint_instret != self._instret:
            self._reset()
            self._instret = checkpoint_instret
        self._streak += 1
        if channel is not None:
            self._channels[channel] += 1
        if checker_id is not None:
            self._checkers[checker_id] += 1

        config = self.config
        if self._streak == config.shrink_after:
            self.length_controller.force_minimum()
            event = EscalationEvent(
                now_ns, "shrink", checkpoint_instret, self._streak,
                self._voltage_now(),
            )
            self.events.append(event)
            self._trace_escalation(event)
        if self._streak >= config.escalate_after and self.dvfs is not None:
            if not self.dvfs.at_safe_voltage:
                self.dvfs.escalate(now_ns, config.voltage_escalation_factor)
                event = EscalationEvent(
                    now_ns, "voltage", checkpoint_instret, self._streak,
                    self._voltage_now(),
                )
                self.events.append(event)
                self._trace_escalation(event)
        if self._streak >= config.fail_after and self._at_safe():
            event = EscalationEvent(
                now_ns, "fail", checkpoint_instret, self._streak,
                self._voltage_now(),
            )
            self.events.append(event)
            self._trace_escalation(event)
            raise ForwardProgressFailure(self._diagnostics(checkpoint_instret))

    def on_budget_exhausted(self, instret: int, now_ns: float) -> None:
        """The engine's total execution budget ran out.

        A storm from a *permanent* defect does not have to pin one
        checkpoint: false detections from a pervasive stuck-at let the run
        crawl forward (retries on moments when the bit already holds the
        stuck value commit clean, resetting the streak), so the
        same-checkpoint escalation never reaches ``fail_after`` and the
        livelock budget trips first.  When the injector carries persistent
        fault models and the supply is already safe, that exhaustion *is*
        the permanent-defect signature — surface the typed failure with
        full diagnostics instead of letting the caller raise the blunt
        ``LivelockError``.  Transient storms (no persistent model, or
        still below the safe voltage) fall through untouched.
        """
        if self.injector is None or not self.injector.persistent_descriptions():
            return
        if not self._at_safe():
            return
        event = EscalationEvent(
            now_ns, "fail", instret, self._streak, self._voltage_now()
        )
        self.events.append(event)
        self._trace_escalation(event)
        raise ForwardProgressFailure(self._diagnostics(instret))

    def _diagnostics(self, checkpoint_instret: int) -> ForwardProgressDiagnostics:
        implicated: Optional[int] = None
        if self._checkers:
            implicated = self._checkers.most_common(1)[0][0]
        fault_stats: Optional[Dict[str, int]] = None
        suspected: List[str] = []
        if self.injector is not None:
            stats = self.injector.stats
            fault_stats = {
                "instruction_faults": stats.instruction_faults,
                "load_faults": stats.load_faults,
                "store_faults": stats.store_faults,
                "total": stats.total,
            }
            suspected = self.injector.persistent_descriptions()
        trace_tail: List[Tuple[float, float]] = []
        voltage = 0.0
        if self.dvfs is not None:
            trace_tail = list(self.dvfs.stats.trace[-32:])
            voltage = self.dvfs.voltage
        return ForwardProgressDiagnostics(
            checkpoint_instret=checkpoint_instret,
            consecutive_rollbacks=self._streak,
            implicated_checker=implicated,
            channel_counts=dict(self._channels),
            voltage=voltage,
            at_safe_voltage=self._at_safe(),
            voltage_trace_tail=trace_tail,
            fault_stats=fault_stats,
            suspected_faults=suspected,
            quarantined_checkers=sorted(self.quarantined_provider()),
        )
