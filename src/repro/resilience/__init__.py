"""Resilience subsystem: graceful degradation under sustained faults.

ParaDox's premise is that voltage margins can be removed *because* the
system survives deliberately error-intensive operation.  This package
supplies the machinery that turns "detect + rollback or die" into
graceful degradation, plus the harness that proves it under thousands of
seeded fault campaigns:

* :mod:`repro.resilience.guard` — the forward-progress guarantee:
  staged escalation (shrink checkpoints, raise voltage toward safe) and
  the typed :class:`ForwardProgressFailure` that replaces livelock
  aborts.
* :mod:`repro.resilience.health` — per-checker detection attribution
  and quarantine of checkers whose detections re-execution keeps
  proving false.
* :mod:`repro.resilience.campaign` — a crash-isolated, watchdogged
  injection-campaign runner fanning seeds x rates x fault models across
  worker processes and classifying every run into a six-outcome
  taxonomy.
"""

from .campaign import (
    CampaignReport,
    CampaignSpec,
    RunClass,
    RunRecord,
    run_campaign,
    smoke_spec,
)
from .guard import (
    EscalationEvent,
    ForwardProgressDiagnostics,
    ForwardProgressFailure,
    ForwardProgressGuard,
    ResilienceConfig,
)
from .health import CheckerHealth, CheckerHealthTracker, QuarantineEvent

__all__ = [
    "CampaignReport",
    "CampaignSpec",
    "CheckerHealth",
    "CheckerHealthTracker",
    "EscalationEvent",
    "ForwardProgressDiagnostics",
    "ForwardProgressFailure",
    "ForwardProgressGuard",
    "QuarantineEvent",
    "ResilienceConfig",
    "RunClass",
    "RunRecord",
    "run_campaign",
    "smoke_spec",
]
