"""Crash-isolated fault-injection campaign runner.

A *campaign* fans a grid of seeds × error rates × fault-model mixes over
worker processes, one short simulation per run, and classifies every run
into the standard injection-campaign taxonomy:

* ``masked`` — completed, bit-identical to the golden run, no detections.
* ``detected_recovered`` — completed and bit-identical after one or more
  detect-and-rollback recoveries.
* ``degraded`` — completed and bit-identical, but only after the
  resilience layer intervened (checker quarantine or forward-progress
  escalation): the system is progressing with reduced capability.
* ``sdc`` — completed but the final state diverged from the golden run
  (silent data corruption — the outcome the architecture exists to
  prevent).
* ``hang`` — no forward progress: the per-run watchdog expired, the
  engine hit its livelock budget, or the forward-progress guard declared
  a typed failure at the safe voltage.
* ``crash`` — the worker process died or raised: an unhandled exception
  anywhere in the simulator is a *bug*, never folded into another class.

Each run executes in its own worker process with a private pipe via
:func:`repro.parallel.run_fanout` (extracted from this module), so a
segfaulting or hanging simulation can neither take down the campaign nor
stall it: the fan-out enforces a wall-clock deadline per run and
terminates offenders.  (A pool is deliberately *not* used — a dying pool
worker poisons the whole pool.)

The report is JSON-serialisable and carries the two acceptance signals
of the resilience layer besides the class counts: how many checkers were
quarantined across the campaign, and how many runs recovered after
voltage escalation.

Campaigns can additionally run against a **persistent store**
(:mod:`repro.store`): every classified run is committed to a WAL-mode
SQLite file as it lands, cells are identified by content-addressed run
keys, and a relaunched campaign with ``resume=True`` skips every
recorded cell — the resumed report is bit-identical (in its canonical
form, which excludes wall-clock fields) to an uninterrupted run at any
worker width.  ``shard=(k, n)`` deterministically partitions the grid
by run-key hash so one campaign can be split across machines and the
shard stores merged back into one.
"""

from __future__ import annotations

import enum
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..ioutil import atomic_write_json
from ..parallel import FanoutOutcome, resolve_jobs, run_fanout
from .guard import ResilienceConfig

#: Fault-model mixes a campaign run can use (cycled across runs).
#: ``sram`` replays the run against a per-chip spatially correlated
#: bit-cell fault map (MoRS-style clustering); ``sram-uniform`` is the
#: same map generator with clustering ablated.
MODEL_MIXES = (
    "transient",
    "burst",
    "stuckat",
    "stuckat-global",
    "sram",
    "sram-uniform",
)


#: Override key -> (config section, field, cast) for config-space knobs
#: the explore layer may vary.  The whitelist is the contract between a
#: genome and the engine: an unknown key raises, never silently no-ops
#: (a typo'd gene that changed nothing would corrupt a whole search).
CONFIG_OVERRIDES: Dict[str, Tuple[str, str, Any]] = {
    "checker_count": ("checker", "count", int),
    "ckpt_additive_increase": ("checkpoint", "additive_increase", int),
    "ckpt_multiplicative_decrease": ("checkpoint", "multiplicative_decrease", float),
    "ckpt_initial_instructions": ("checkpoint", "initial_instructions", int),
    "dvfs_step_volts": ("dvfs", "step_volts", float),
    "dvfs_recovery_factor": ("dvfs", "recovery_factor", float),
    "dvfs_tide_slowdown": ("dvfs", "tide_slowdown", float),
    "dvfs_min_voltage": ("dvfs", "min_voltage", float),
}

#: Override key -> (ResilienceConfig field, cast).
RESILIENCE_OVERRIDES: Dict[str, Tuple[str, Any]] = {
    "guard_shrink_after": ("shrink_after", int),
    "guard_escalate_after": ("escalate_after", int),
    "quarantine_vindications": ("quarantine_vindications", int),
}


def apply_config_overrides(
    config: Any, resilience: ResilienceConfig, overrides: Mapping[str, Any]
) -> Tuple[Any, ResilienceConfig]:
    """Apply a whitelisted override dict onto (SystemConfig, ResilienceConfig)."""
    from dataclasses import replace

    for key in sorted(overrides):
        value = overrides[key]
        if key in CONFIG_OVERRIDES:
            section, field_name, cast = CONFIG_OVERRIDES[key]
            sub = getattr(config, section)
            config = replace(
                config, **{section: replace(sub, **{field_name: cast(value)})}
            )
        elif key in RESILIENCE_OVERRIDES:
            field_name, cast = RESILIENCE_OVERRIDES[key]
            resilience = replace(resilience, **{field_name: cast(value)})
        else:
            known = sorted(CONFIG_OVERRIDES) + sorted(RESILIENCE_OVERRIDES)
            raise ValueError(f"unknown config override {key!r}; known: {known}")
    return config, resilience


class RunClass(enum.Enum):
    """Six-outcome classification of one campaign run."""

    MASKED = "masked"
    DETECTED_RECOVERED = "detected_recovered"
    DEGRADED = "degraded"
    SDC = "sdc"
    HANG = "hang"
    CRASH = "crash"


@dataclass
class CampaignSpec:
    """Everything needed to reproduce a campaign."""

    workload: str = "bitcount"
    scale: float = 0.4
    #: Number of seeds; run ``seeds × len(rates)`` simulations total.
    seeds: int = 24
    first_seed: int = 0
    rates: Tuple[float, ...] = (1e-4,)
    #: Fault-model mixes, cycled run by run (see :data:`MODEL_MIXES`).
    models: Tuple[str, ...] = ("transient", "burst", "stuckat")
    #: Run the DVS controller (undervolted warm start) so the voltage
    #: escalation stage of the forward-progress guard is exercised.
    dvs: bool = True
    #: Warm-start undervolt below the safe point when ``dvs`` is on.
    initial_margin: float = 0.15
    #: Simulated chips for the ``sram``/``sram-uniform`` mixes: the grid
    #: gains a chip-seed axis so a sweep samples a *population* of dies,
    #: each with its own bit-cell map.  1 keeps the grid unchanged.
    chip_seeds: int = 1
    first_chip_seed: int = 0
    #: Pin the supply voltage of ``sram`` runs when ``dvs`` is off
    #: (None derives it from the run's rate through the voltage→rate
    #: curve, so geometric and sram runs sweep the same axis).
    voltage: Optional[float] = None
    #: Per-run wall-clock watchdog (seconds).
    timeout_s: float = 60.0
    #: Concurrent worker processes (0 = auto).
    workers: int = 0
    #: Record telemetry for every run: each worker ships its trace and
    #: metrics back through the result pipe, and the report can merge
    #: them into one metrics summary / one Perfetto artifact.
    tracing: bool = False
    #: Fault drills: run_id -> "crash" | "hang" | "error".  The worker
    #: misbehaves accordingly, proving the campaign's isolation without
    #: waiting for a real simulator bug.
    hooks: Dict[int, str] = field(default_factory=dict)
    #: Config-space overrides applied to every run (the explore layer's
    #: genome, mapped onto engine knobs by :func:`apply_config_overrides`
    #: — an unknown key is a hard error).  ``None`` leaves Table I
    #: untouched and, deliberately, serialises to *nothing*: campaigns
    #: without overrides keep their pre-overrides campaign and run keys,
    #: so existing stores keep resuming.
    overrides: Optional[Dict[str, Any]] = None
    #: Main cores sharing one checker pool per run.  1 (the default) is
    #: the classic single-producer campaign and — like ``overrides`` —
    #: serialises to *nothing*, so pre-multicore campaign and run keys
    #: (and golden reports) are untouched.
    main_cores: int = 1
    #: Shared-pool arbitration when ``main_cores > 1``: one of
    #: ``static`` / ``steal`` / ``reserve`` (None means ``steal``).
    pool_policy: Optional[str] = None

    def resolved_workers(self) -> int:
        return resolve_jobs(self.workers)

    def expand(self) -> List[Dict[str, Any]]:
        """One payload dict per run, model mixes cycled across run IDs."""
        unknown = [m for m in self.models if m not in MODEL_MIXES]
        if unknown:
            raise ValueError(
                f"unknown fault-model mixes {unknown}; choose from {MODEL_MIXES}"
            )
        policy = None
        if self.main_cores > 1:
            from ..scheduling.shared import POOL_POLICIES

            policy = self.pool_policy or "steal"
            if policy not in POOL_POLICIES:
                raise ValueError(
                    f"unknown pool policy {policy!r}; "
                    f"choose from {sorted(POOL_POLICIES)}"
                )
        payloads: List[Dict[str, Any]] = []
        for chip in range(max(1, self.chip_seeds)):
            for index in range(self.seeds):
                for rate in self.rates:
                    run_id = len(payloads)
                    payload = {
                        "run_id": run_id,
                        "workload": self.workload,
                        "scale": self.scale,
                        "seed": self.first_seed + index,
                        "rate": rate,
                        "model": self.models[run_id % len(self.models)],
                        "dvs": self.dvs,
                        "initial_margin": self.initial_margin,
                        "chip_seed": self.first_chip_seed + chip,
                        "tracing": self.tracing,
                    }
                    if self.voltage is not None:
                        payload["voltage"] = self.voltage
                    if policy is not None:
                        # Present only for multi-main campaigns: the
                        # single-core grid keeps its golden run keys.
                        payload["main_cores"] = self.main_cores
                        payload["pool_policy"] = policy
                    if self.overrides:
                        payload["overrides"] = dict(self.overrides)
                    if run_id in self.hooks:
                        payload["hook"] = self.hooks[run_id]
                    payloads.append(payload)
        return payloads

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["rates"] = list(self.rates)
        data["models"] = list(self.models)
        if not self.overrides:
            # Omitted, not null: a no-overrides spec must hash to its
            # pre-overrides campaign key (see store.runkey).
            data.pop("overrides", None)
        if self.main_cores <= 1:
            # Same contract: a single-main spec must hash to its
            # pre-multicore campaign key.
            data.pop("main_cores", None)
            data.pop("pool_policy", None)
        return data


def smoke_spec() -> CampaignSpec:
    """Small campaign used by CI: finishes in well under a minute."""
    return CampaignSpec(seeds=6, scale=0.3, rates=(3e-4,), timeout_s=30.0)


@dataclass
class RunRecord:
    """One classified campaign run."""

    run_id: int
    seed: int
    rate: float
    model: str
    workload: str
    run_class: RunClass
    #: Simulated die the run executed on (sram mixes; 0 otherwise).
    chip_seed: int = 0
    detail: str = ""
    #: Engine outcome value ("completed" etc.); None for crash/watchdog.
    outcome: Optional[str] = None
    recoveries: int = 0
    faults_injected: int = 0
    instructions: int = 0
    quarantined: List[int] = field(default_factory=list)
    #: Guard stage -> count ("shrink" / "voltage" / "fail").
    escalations: Dict[str, int] = field(default_factory=dict)
    #: Simulated wall time (ns) — deterministic, unlike ``duration_s``.
    wall_ns: float = 0.0
    #: Time-weighted mean supply voltage over the run (0.0 pre-overrides
    #: records / crashed workers).
    mean_voltage: float = 0.0
    #: Per-checker wake rates over the run window (power-model input).
    wake_rates: List[float] = field(default_factory=list)
    duration_s: float = 0.0
    #: Per-main fairness summary (``FairnessReport.to_dict()``), present
    #: only for multi-main-core runs — single-core records serialise
    #: byte-identically to their pre-multicore form.
    fairness: Optional[Dict[str, Any]] = None
    #: Worker traceback for ``crash`` records.
    traceback: Optional[str] = None
    #: Telemetry artifacts, present only when the campaign traced runs.
    metrics: Optional[Dict[str, Any]] = None
    trace: Optional[List[Dict[str, Any]]] = None

    @property
    def voltage_escalations(self) -> int:
        return self.escalations.get("voltage", 0)

    def to_dict(self, canonical: bool = False) -> Dict[str, Any]:
        data = asdict(self)
        data["run_class"] = self.run_class.value
        # The raw event stream is exported separately (JSONL/Perfetto);
        # inlining thousands of events would bloat the report JSON.
        data.pop("trace", None)
        if self.fairness is None:
            # Omitted, not null: single-core records keep their
            # pre-multicore byte-identical report form.
            data.pop("fairness", None)
        else:
            # Sorted key order so a fresh record and one round-tripped
            # through the store (which canonicalises JSON with
            # ``sort_keys``) serialise byte-identically.
            data["fairness"] = {
                key: self.fairness[key] for key in sorted(self.fairness)
            }
        if canonical:
            # Wall-clock duration is the one field a bit-identical
            # re-execution cannot reproduce.
            data.pop("duration_s", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output (store round-trip)."""
        return cls(
            run_id=int(data["run_id"]),
            seed=int(data["seed"]),
            rate=float(data["rate"]),
            model=data["model"],
            workload=data["workload"],
            run_class=RunClass(data["run_class"]),
            chip_seed=int(data.get("chip_seed", 0)),
            detail=data.get("detail", ""),
            outcome=data.get("outcome"),
            recoveries=int(data.get("recoveries", 0)),
            faults_injected=int(data.get("faults_injected", 0)),
            instructions=int(data.get("instructions", 0)),
            quarantined=list(data.get("quarantined") or []),
            escalations=dict(data.get("escalations") or {}),
            wall_ns=float(data.get("wall_ns", 0.0)),
            mean_voltage=float(data.get("mean_voltage", 0.0)),
            wake_rates=list(data.get("wake_rates") or []),
            duration_s=float(data.get("duration_s", 0.0)),
            fairness=data.get("fairness"),
            traceback=data.get("traceback"),
            metrics=data.get("metrics"),
            trace=data.get("trace"),
        )


@dataclass
class CampaignReport:
    """Aggregated, JSON-serialisable campaign outcome."""

    spec: Dict[str, Any]
    records: List[RunRecord]
    wall_s: float = 0.0

    @property
    def counts(self) -> Dict[str, int]:
        counts = {cls.value: 0 for cls in RunClass}
        for record in self.records:
            counts[record.run_class.value] += 1
        return counts

    @property
    def quarantine_event_count(self) -> int:
        return sum(len(record.quarantined) for record in self.records)

    @property
    def voltage_escalation_recoveries(self) -> int:
        """Runs that completed *after* the guard stepped the voltage up."""
        return sum(
            1
            for record in self.records
            if record.outcome == "completed" and record.voltage_escalations > 0
        )

    @property
    def crash_tracebacks(self) -> List[str]:
        return [r.traceback for r in self.records if r.traceback]

    def merged_metrics(self) -> Dict[str, Any]:
        """One metrics report aggregating every traced run.

        Untraced runs (and crashed workers, which shipped nothing) are
        counted in the report's ``skipped_runs``.
        """
        from ..telemetry import merge_metrics

        return merge_metrics([record.metrics for record in self.records])

    def merged_trace(self) -> Dict[str, Any]:
        """One Perfetto-loadable artifact: each traced run as a process."""
        from ..telemetry import events_from_dicts, merge_traces

        runs = [
            (
                f"run-{record.run_id} seed={record.seed} {record.model}",
                events_from_dicts(record.trace),
            )
            for record in self.records
            if record.trace
        ]
        return merge_traces(runs)

    def write_metrics_json(self, path: str) -> None:
        atomic_write_json(path, self.merged_metrics())

    def write_perfetto(self, path: str) -> None:
        atomic_write_json(path, self.merged_trace(), indent=None)

    def to_dict(self, canonical: bool = False) -> Dict[str, Any]:
        """The JSON report; ``canonical=True`` drops wall-clock fields.

        The canonical form is a pure function of the campaign's content:
        execution-only spec fields (worker width, watchdog deadline) and
        wall-clock timings are excluded, so an interrupted-and-resumed
        campaign serialises byte-identically to an uninterrupted one.
        """
        spec = self.spec
        if canonical:
            from ..store.runkey import EXECUTION_ONLY_SPEC_FIELDS

            spec = {
                key: value
                for key, value in self.spec.items()
                if key not in EXECUTION_ONLY_SPEC_FIELDS
            }
        data = {
            "spec": spec,
            "counts": self.counts,
            "quarantine_events": self.quarantine_event_count,
            "voltage_escalation_recoveries": self.voltage_escalation_recoveries,
            "records": [record.to_dict(canonical) for record in self.records],
        }
        if not canonical:
            data["wall_s"] = self.wall_s
        return data

    def write_json(self, path: str, canonical: bool = False) -> None:
        atomic_write_json(path, self.to_dict(canonical))

    def summary_table(self) -> str:
        counts = self.counts
        total = len(self.records) or 1
        lines = [
            f"campaign: {total if self.records else 0} runs in {self.wall_s:.1f} s "
            f"({self.spec.get('workload', '?')}, rates {self.spec.get('rates')})",
            f"  {'class':<20s} {'runs':>6s} {'share':>7s}",
        ]
        for cls in RunClass:
            count = counts[cls.value]
            lines.append(
                f"  {cls.value:<20s} {count:>6d} {100.0 * count / total:>6.1f}%"
            )
        lines.append(f"  quarantine events: {self.quarantine_event_count}")
        lines.append(
            f"  voltage-escalation recoveries: {self.voltage_escalation_recoveries}"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------- worker side --


def _initial_voltage(payload: Dict[str, Any]) -> float:
    """Supply voltage an ``sram`` run starts at.

    An explicit ``voltage`` in the payload wins.  Otherwise, with DVS
    on, the run starts where the controller warm-starts (safe point
    minus the initial margin) and follows every subsequent voltage move
    through the engine's re-thresholding hook; with DVS off the
    operating point is derived from the run's rate through the
    voltage→rate curve, so geometric and sram runs sweep one shared
    axis.
    """
    from ..config import table1_config
    from ..faults.voltage_model import VoltageErrorModel

    if payload.get("voltage") is not None:
        return float(payload["voltage"])
    safe = table1_config().dvfs.safe_voltage
    if payload["dvs"]:
        return float(safe) - float(payload["initial_margin"])
    rate = float(payload["rate"])
    if rate <= 0.0:
        return float(safe)
    return VoltageErrorModel.itanium_9560().voltage_for_rate(min(rate, 0.5))


def _build_injector(payload: Dict[str, Any], checker_count: int):
    """Compose the run's fault models from its mix name."""
    import numpy as np

    from ..faults.injector import FaultInjector, default_injector
    from ..faults.models import (
        BurstFaultModel,
        RegisterFaultModel,
        StuckAtFaultModel,
    )
    from ..isa import FunctionalUnit

    seed = int(payload["seed"])
    rate = float(payload["rate"])
    model = payload["model"]
    if model == "transient":
        return default_injector(rate, seed=seed, target="checker")
    if model in ("sram", "sram-uniform"):
        from ..faults.sram import sram_injector

        # The map belongs to the *chip*, not the run: every seed on the
        # same chip replays against the identical bit-cell map, which
        # is what makes the faults persistent and address-correlated.
        return sram_injector(
            int(payload.get("chip_seed", 0)),
            checkers=checker_count,
            mode="uniform" if model == "sram-uniform" else "mors",
            voltage=_initial_voltage(payload),
            target="checker",
        )
    rng = np.random.default_rng(seed + 0x5EED)
    if model == "burst":
        # Longer, denser bursts than the model's defaults so a burst can
        # stall one checkpoint across several retries — the scenario the
        # guard's voltage stage exists for.
        return FaultInjector(
            [
                RegisterFaultModel(rate, rng),
                BurstFaultModel(rate, rng, burst_rate=0.08, mean_burst_ops=600.0),
            ],
            target="checker",
        )
    if model in ("stuckat", "stuckat-global"):
        bound = seed % checker_count if model == "stuckat" else None
        return FaultInjector(
            [
                RegisterFaultModel(rate, rng),
                StuckAtFaultModel(
                    rng,
                    unit=FunctionalUnit.INT_ALU,
                    bit=int(rng.integers(48)),
                    bound_checker_id=bound,
                ),
            ],
            target="checker",
        )
    raise ValueError(f"unknown fault-model mix {model!r}")


def execute_run(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one campaign run in-process and return a result dict.

    Exposed for tests; :func:`run_campaign` always calls it inside a
    worker process so a crash here cannot take the campaign down.
    """
    hook = payload.get("hook")
    if hook == "crash":  # test hook: die without a Python traceback
        os._exit(17)
    if hook == "hang":  # test hook: trip the parent's watchdog
        time.sleep(3600)
    if hook == "error":  # test hook: unhandled worker exception
        raise RuntimeError("campaign error hook")

    if int(payload.get("main_cores", 1)) > 1:
        return _execute_multicore_run(payload)

    from dataclasses import replace

    import numpy as np

    from ..cli import resolve_workload
    from ..config import table1_config
    from ..core.engine import EngineOptions, SimulationEngine
    from ..lslog.segment import RollbackGranularity
    from ..scheduling import SchedulingPolicy
    from ..stats import RunOutcome
    from ..workloads import golden_run

    started = time.perf_counter()
    workload = resolve_workload(payload["workload"], payload["scale"])
    golden = golden_run(workload)

    config = table1_config()
    resilience_config = ResilienceConfig()
    overrides = payload.get("overrides")
    if overrides:
        config, resilience_config = apply_config_overrides(
            config, resilience_config, overrides
        )
    if payload["dvs"]:
        # Warm-start below the safe voltage: campaigns probe the
        # error-intensive region the production controller converges to.
        config = replace(
            config,
            dvfs=replace(
                config.dvfs, initial_difference=float(payload["initial_margin"])
            ),
        )
    injector = _build_injector(payload, config.checker.count)
    options = EngineOptions(
        granularity=RollbackGranularity.LINE,
        scheduling=SchedulingPolicy.LOWEST_FREE_ID,
        adaptive_checkpoints=True,
        dvs=bool(payload["dvs"]),
        # No voltage->rate model: the campaign pins the requested rate so
        # runs are comparable across the rate grid.
        voltage_model=None,
        tracing=bool(payload.get("tracing", False)),
        resilience=resilience_config,
    )
    engine = SimulationEngine(
        workload.program,
        config,
        options,
        injector=injector,
        memory=workload.create_memory(),
        system_name="paradox-resilient",
        rng=np.random.default_rng(int(payload["seed"])),
    )
    if engine.pool is not None:
        # Lowest-free-ID scheduling starts at the pool's randomised boot
        # offset, so rebind core-bound defects to the core that actually
        # replays segments — a defect on a never-selected checker would
        # be vacuously benign and test nothing.
        for model in injector.models:
            if model.bound_checker_id is not None:
                model.bound_checker_id = engine.pool.boot_offset
    result = engine.run(workload.max_instructions)

    stages: Dict[str, int] = {}
    for event in result.escalations:
        stages[event.stage] = stages.get(event.stage, 0) + 1
    matches = (
        result.outcome is RunOutcome.COMPLETED
        and engine.memory == golden.memory
        and result.program_output == golden.output
    )
    return {
        "status": "ok",
        "outcome": result.outcome.value,
        "matches_golden": bool(matches),
        "recoveries": len(result.recoveries),
        "faults_injected": result.faults_injected,
        "instructions": result.instructions,
        "quarantined": [event.core_id for event in result.quarantine_events],
        "escalations": stages,
        # Deterministic fitness inputs for the explore layer: simulated
        # wall time, time-weighted supply voltage, per-checker wake rates.
        "wall_ns": float(result.wall_ns),
        "mean_voltage": float(result.mean_voltage),
        "wake_rates": [float(rate) for rate in result.checker_wake_rates],
        "failure": result.failure.summary() if result.failure else None,
        "duration_s": time.perf_counter() - started,
        "metrics": result.metrics,
        "trace": result.trace,
    }


def _execute_multicore_run(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one multi-main-core campaign run (shared checker pool).

    Every main core runs the campaign's workload against its own
    derived-seed injector while sharing one checker pool under the
    payload's ``pool_policy``; the run's class is the *worst* outcome
    across mains (one SDC anywhere is an SDC for the run), and the
    result carries the pool's fairness summary.
    """
    from dataclasses import replace

    import numpy as np

    from ..cli import resolve_workload
    from ..config import table1_config
    from ..core.engine import EngineOptions, SimulationEngine
    from ..core.multicore import fairness_trace_events, run_shared_engines
    from ..lslog.segment import RollbackGranularity
    from ..parallel import derive_seed
    from ..scheduling import SchedulingPolicy
    from ..scheduling.shared import POOL_POLICIES, SharedCheckerPool
    from ..stats import RunOutcome
    from ..stats.fairness import FairnessReport
    from ..workloads import golden_run

    started = time.perf_counter()
    mains = int(payload["main_cores"])
    policy = POOL_POLICIES[payload.get("pool_policy") or "steal"]
    workload = resolve_workload(payload["workload"], payload["scale"])
    golden = golden_run(workload)

    config = table1_config()
    resilience_config = ResilienceConfig()
    overrides = payload.get("overrides")
    if overrides:
        config, resilience_config = apply_config_overrides(
            config, resilience_config, overrides
        )
    if payload["dvs"]:
        config = replace(
            config,
            dvfs=replace(
                config.dvfs, initial_difference=float(payload["initial_margin"])
            ),
        )

    base_seed = int(payload["seed"])
    pool_size = config.checker.count
    boot_rng = np.random.default_rng(derive_seed(base_seed, "mc-boot"))
    pool = SharedCheckerPool(
        mains,
        pool_size,
        policy=policy,
        boot_offset=int(boot_rng.integers(pool_size)),
    )
    tracing = bool(payload.get("tracing", False))

    engines: List[SimulationEngine] = []
    for main_id in range(mains):
        core_payload = dict(payload)
        core_payload["seed"] = derive_seed(base_seed, "mc", main_id)
        injector = _build_injector(core_payload, pool_size)
        options = EngineOptions(
            granularity=RollbackGranularity.LINE,
            scheduling=SchedulingPolicy.LOWEST_FREE_ID,
            adaptive_checkpoints=True,
            dvs=bool(payload["dvs"]),
            voltage_model=None,
            tracing=tracing,
            resilience=resilience_config,
        )
        view = pool.view(main_id, config.checker, workload.program)
        engine = SimulationEngine(
            workload.program,
            config,
            options,
            injector=injector,
            memory=workload.create_memory(),
            system_name="paradox-resilient",
            rng=np.random.default_rng(int(core_payload["seed"])),
            pool=view,
            main_id=main_id,
        )
        # Rebind core-bound defects to the first checker this main's
        # policy order actually prefers (same rationale as the
        # single-core path: a defect on a never-selected checker would
        # be vacuously benign).
        for model in injector.models:
            if model.bound_checker_id is not None:
                model.bound_checker_id = pool._candidates[main_id][0]
        engines.append(engine)

    results = run_shared_engines(engines, pool, [workload.max_instructions] * mains)

    stages: Dict[str, int] = {}
    quarantined: set = set()
    failure = None
    for result in results:
        for event in result.escalations:
            stages[event.stage] = stages.get(event.stage, 0) + 1
        quarantined.update(event.core_id for event in result.quarantine_events)
        if failure is None and result.failure is not None:
            failure = result.failure.summary()
    severity = {"completed": 0, "livelock": 1, "forward_progress_failure": 2}
    outcome = max(
        (result.outcome.value for result in results),
        key=lambda value: severity.get(value, 3),
    )
    matches = all(
        result.outcome is RunOutcome.COMPLETED for result in results
    ) and all(
        engine.memory == golden.memory and result.program_output == golden.output
        for engine, result in zip(engines, results)
    )
    wall_ns = max(result.wall_ns for result in results)
    fairness = FairnessReport.from_pool(pool, wall_ns)

    metrics = None
    trace = None
    if tracing:
        from ..telemetry import merge_metrics

        metrics = merge_metrics([result.metrics for result in results])
        trace = fairness_trace_events(
            results, fairness, wall_ns, seed=base_seed, policy=policy
        )
    return {
        "status": "ok",
        "outcome": outcome,
        "matches_golden": bool(matches),
        "recoveries": sum(len(result.recoveries) for result in results),
        "faults_injected": sum(result.faults_injected for result in results),
        "instructions": sum(result.instructions for result in results),
        "quarantined": sorted(quarantined),
        "escalations": stages,
        "wall_ns": float(wall_ns),
        # Unweighted mean across mains: each core's mean_voltage is
        # already time-weighted over its own run.
        "mean_voltage": float(
            sum(result.mean_voltage for result in results) / len(results)
        ),
        # Pool-wide wake rates: all mains' dispatches per physical core.
        "wake_rates": [float(rate) for rate in pool.wake_rates(wall_ns)],
        "failure": failure,
        "duration_s": time.perf_counter() - started,
        "fairness": fairness.to_dict(),
        "metrics": metrics,
        "trace": trace,
    }


# ---------------------------------------------------------------- parent side --


def classify_result(message: Dict[str, Any]) -> Tuple[RunClass, str]:
    """Map a successful worker result onto the six-outcome taxonomy."""
    outcome = message["outcome"]
    if outcome == "livelock":
        return RunClass.HANG, "livelock budget exhausted"
    if outcome == "forward_progress_failure":
        return RunClass.HANG, message.get("failure") or "forward-progress failure"
    if not message["matches_golden"]:
        return RunClass.SDC, "final state diverged from the golden run"
    if message["quarantined"] or message["escalations"]:
        parts = []
        if message["quarantined"]:
            cores = ", ".join(str(c) for c in message["quarantined"])
            parts.append(f"quarantined checker(s) {cores}")
        if message["escalations"]:
            stages = ", ".join(
                f"{stage} x{count}" for stage, count in message["escalations"].items()
            )
            parts.append(f"guard escalations: {stages}")
        return RunClass.DEGRADED, "; ".join(parts)
    if message["recoveries"]:
        return RunClass.DETECTED_RECOVERED, (
            f"{message['recoveries']} detection(s), all rolled back"
        )
    return RunClass.MASKED, (
        f"{message['faults_injected']} fault(s) injected, none architecturally visible"
    )


def _base_record(payload: Dict[str, Any]) -> RunRecord:
    return RunRecord(
        run_id=payload["run_id"],
        seed=payload["seed"],
        rate=payload["rate"],
        model=payload["model"],
        workload=payload["workload"],
        run_class=RunClass.CRASH,
        chip_seed=int(payload.get("chip_seed", 0)),
    )


def _record_from_message(
    payload: Dict[str, Any], message: Optional[Dict[str, Any]]
) -> RunRecord:
    record = _base_record(payload)
    if message is None:
        record.detail = "worker closed the pipe without a result"
        return record
    if message.get("status") != "ok":
        record.detail = "unhandled exception in worker"
        record.traceback = message.get("traceback")
        return record
    record.run_class, record.detail = classify_result(message)
    record.outcome = message["outcome"]
    record.recoveries = message["recoveries"]
    record.faults_injected = message["faults_injected"]
    record.instructions = message["instructions"]
    record.quarantined = list(message["quarantined"])
    record.escalations = dict(message["escalations"])
    record.wall_ns = float(message.get("wall_ns", 0.0))
    record.mean_voltage = float(message.get("mean_voltage", 0.0))
    record.wake_rates = list(message.get("wake_rates") or [])
    record.duration_s = message["duration_s"]
    record.fairness = message.get("fairness")
    record.metrics = message.get("metrics")
    record.trace = message.get("trace")
    return record


def _record_from_outcome(
    spec: CampaignSpec, payload: Dict[str, Any], outcome: FanoutOutcome
) -> RunRecord:
    """Classify one fan-out outcome (any status) into a RunRecord."""
    if outcome.status == "ok":
        return _record_from_message(payload, outcome.value)
    record = _base_record(payload)
    if outcome.status == "error":
        record.detail = "unhandled exception in worker"
        record.traceback = outcome.traceback
    elif outcome.status == "died":
        record.detail = f"worker died with exit code {outcome.exitcode}"
    else:  # timeout: the fan-out's watchdog terminated the worker
        record.run_class = RunClass.HANG
        record.detail = f"watchdog timeout after {spec.timeout_s:.0f} s"
    return record


def run_campaign(
    spec: CampaignSpec,
    progress: Optional[Callable[[RunRecord], None]] = None,
    *,
    store_path: Optional[str] = None,
    resume: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    on_cached: Optional[Callable[[RunRecord], None]] = None,
    on_start: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> CampaignReport:
    """Execute every run of ``spec`` with per-run crash isolation.

    Never raises on account of a run: worker deaths become ``crash``
    records, deadline overruns become ``hang`` records.  ``progress`` is
    invoked with each :class:`RunRecord` as it is classified.

    With ``store_path``, the campaign registers its full grid in a
    :class:`repro.store.CampaignStore` up front and commits each record
    the moment it is classified (one transaction per run), so a campaign
    killed at any instant leaves only complete records behind.  With
    ``resume=True`` cells already recorded in the store are loaded
    instead of re-executed (``on_cached``, or ``progress`` if unset, is
    invoked for each).  ``shard=(k, n)`` (1-based ``k``) restricts
    execution to the cells whose run-key hashes into shard ``k`` of
    ``n``; the full grid stays registered so coverage queries see the
    whole campaign and shard stores merge cleanly.
    """
    from ..store import CampaignStore, StoreError
    from ..store import campaign_key as spec_campaign_key
    from ..store import run_key as cell_run_key
    from ..store import shard_of

    started = time.perf_counter()
    payloads = spec.expand()
    keys = [cell_run_key(payload) for payload in payloads]
    selected = list(range(len(payloads)))
    if shard is not None:
        k, n = shard
        selected = [i for i in selected if shard_of(keys[i], n) == k - 1]
    records: List[Optional[RunRecord]] = [None] * len(payloads)

    store: Optional[CampaignStore] = None
    campaign_key: Optional[str] = None
    try:
        if store_path is not None:
            store = CampaignStore(store_path)
            campaign_key = spec_campaign_key(spec.to_dict())
            store.register_campaign(
                campaign_key,
                spec.to_dict(),
                [(keys[i], i, payloads[i]) for i in range(len(payloads))],
            )
            done = store.completed_keys(campaign_key)
            if done and not resume:
                raise StoreError(
                    f"store {store_path!r} already holds {len(done)} record(s) "
                    "for this campaign; pass resume=True (--resume) to skip "
                    "completed cells, or use a fresh store"
                )
            notify_cached = on_cached if on_cached is not None else progress
            for i in selected:
                if keys[i] in done:
                    record_dict = store.load_record(keys[i])
                    if record_dict is not None:
                        records[i] = RunRecord.from_dict(record_dict)
                        if notify_cached is not None:
                            notify_cached(records[i])

        pending = [i for i in selected if records[i] is None]

        def handle_outcome(outcome: FanoutOutcome) -> None:
            index = pending[outcome.index]
            payload = payloads[index]
            record = _record_from_outcome(spec, payload, outcome)
            records[index] = record
            if store is not None:
                store.record_run(
                    campaign_key,
                    keys[index],
                    record.to_dict(),
                    metrics=record.metrics,
                    trace=record.trace,
                    voltage=payload.get("voltage"),
                )
            if progress is not None:
                progress(record)

        handle_start = None
        if on_start is not None:
            handle_start = lambda index: on_start(payloads[pending[index]])

        run_fanout(
            execute_run,
            [payloads[i] for i in pending],
            jobs=spec.resolved_workers(),
            timeout_s=spec.timeout_s,
            on_outcome=handle_outcome,
            on_start=handle_start,
        )
    finally:
        if store is not None:
            store.close()
    final = [record for record in records if record is not None]
    return CampaignReport(
        spec=spec.to_dict(), records=final, wall_s=time.perf_counter() - started
    )
