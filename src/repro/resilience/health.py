"""Checker health tracking and quarantine.

With error injection "restricted to the checker cores only", a detection
means *either* the main core or the checker diverged — the channels
cannot tell which.  Re-execution disambiguates after the fact: when the
rolled-back region re-runs and a *different* checker passes it clean,
the main core has been vindicated and the original detection was a
checker-side fault.  Transient checker faults scatter vindications
thinly across the pool; a checker with a permanent defect concentrates
them, and after :attr:`ResilienceConfig.quarantine_vindications` of them
it is quarantined: the scheduler stops selecting it and its segments
redistribute across the survivors.  A shrunken pool naturally shows up
in timing (more checker-wait stalls) and in the wake-rate statistics.

A retry that *also* fails on the second checker instead absolves the
first — the fault followed the work, so it lives in the main core or the
log, not in the checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry import Tracer


@dataclass
class QuarantineEvent:
    """One checker core pulled from service."""

    core_id: int
    at_ns: float
    #: Vindicated false detections that triggered the quarantine.
    vindications: int
    #: Total detections the core had reported by then.
    detections: int


@dataclass
class CheckerHealth:
    """Per-core counters feeding the quarantine decision."""

    detections: int = 0
    clean_checks: int = 0
    #: Detections later proven false by a clean re-run elsewhere.
    vindications: int = 0
    #: Detections later confirmed (the retry failed elsewhere too).
    absolved: int = 0
    quarantined: bool = False


class CheckerHealthTracker:
    """Attributes detections to checkers and quarantines repeat offenders."""

    def __init__(self, core_count: int, quarantine_vindications: int = 3) -> None:
        if core_count < 1:
            raise ValueError("need at least one checker core")
        self.core_count = core_count
        self.quarantine_vindications = quarantine_vindications
        self.health: Dict[int, CheckerHealth] = {
            core_id: CheckerHealth() for core_id in range(core_count)
        }
        self.events: List[QuarantineEvent] = []
        #: Telemetry bus (set by the engine when tracing is enabled).
        self.tracer: Optional["Tracer"] = None

    # -- queries -----------------------------------------------------------------
    def is_quarantined(self, core_id: int) -> bool:
        return self.health[core_id].quarantined

    @property
    def quarantined(self) -> Set[int]:
        return {cid for cid, h in self.health.items() if h.quarantined}

    @property
    def active_count(self) -> int:
        return self.core_count - len(self.quarantined)

    # -- recording ---------------------------------------------------------------
    def record_detection(self, core_id: int) -> None:
        self.health[core_id].detections += 1

    def record_clean(self, core_id: int) -> None:
        self.health[core_id].clean_checks += 1

    def record_absolution(self, core_id: int) -> None:
        """The retry failed elsewhere too: the detection was genuine."""
        health = self.health[core_id]
        health.absolved += 1
        # A confirmed detection outweighs past suspicion: reset the
        # vindication count so an honest checker near the threshold is
        # not quarantined for doing its job during a main-core storm.
        health.vindications = 0
        if self.tracer is not None:
            self.tracer.emit("resilience", "absolution", core=core_id)
            self.tracer.metrics.inc("resilience.absolutions")

    def record_vindication(self, core_id: int, at_ns: float) -> "QuarantineEvent | None":
        """A clean re-run elsewhere proved this core's detection false.

        Returns the quarantine event if this vindication crossed the
        threshold (never quarantines the last healthy core).
        """
        health = self.health[core_id]
        health.vindications += 1
        if self.tracer is not None:
            self.tracer.emit("resilience", "vindication", time_ns=at_ns, core=core_id)
            self.tracer.metrics.inc("resilience.vindications")
        if health.quarantined:
            return None
        if health.vindications < self.quarantine_vindications:
            return None
        if self.active_count <= 1:
            return None  # someone has to keep checking
        health.quarantined = True
        event = QuarantineEvent(
            core_id=core_id,
            at_ns=at_ns,
            vindications=health.vindications,
            detections=health.detections,
        )
        self.events.append(event)
        if self.tracer is not None:
            self.tracer.emit(
                "resilience",
                "quarantine",
                time_ns=at_ns,
                core=core_id,
                value=float(health.vindications),
            )
            self.tracer.metrics.inc("resilience.quarantines")
        return event
