"""A checker pool shared by several main cores (multi-main ParaDox).

The single-core model gives each main core a private
:class:`~repro.scheduling.pool.CheckerPool`.  Real multiprogrammed parts
share the detection hardware: M hungry producers compete for one set of
checker cores, and how that contention is arbitrated decides both the
fairness story and how much of the pool can stay power gated.

Three allocation policies (beyond the two single-core ones):

* ``static`` — the pool is partitioned into M contiguous slices of the
  boot-rotated ID ring; each main core schedules lowest-free-ID inside
  its own slice and never crosses the fence.  Perfect isolation, worst
  peak throughput.
* ``steal`` — each main core prefers its own slice but steals the
  lowest-free core from the rest of the ring when its slice is fully
  busy, and when everything is busy it waits for the globally earliest
  free core.  Best throughput, weakest isolation.
* ``reserve`` — an EnSuRe/deadline-style reservation: every main core
  owns a small reserved stripe (never lent out, so its wait for a
  checker is bounded by one in-flight check on its own hardware) and
  the remainder of the pool is a first-come-first-served overflow
  region shared by everyone.

Replay is program-bound — each main core re-executes *its own*
instruction stream — while occupancy is physical.
:class:`SharedCheckerCore` splits the two: per-main facades carry the
program, and busy state delegates to one shared slot per physical
checker, so every producer sees a single timeline per core.

Determinism: each engine runs on its own thread, and every pool
interaction (select / dispatch / abort) gates through a
:class:`_Turnstile` that only lets the globally earliest blocked
interaction proceed, and only once *no* engine is freely running.
Because each engine's interaction times are nondecreasing, interactions
execute in globally sorted ``(time_ns, main_id)`` order — a conservative
discrete-event co-simulation, bit-identical on every run.  ``select``
holds the turn until the matching ``dispatch`` so the select-to-dispatch
pair is one atomic reservation (two mains can never claim the same free
checker for overlapping intervals).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..cores.checker_core import CheckerCore
from .pool import DispatchRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import CheckerConfig
    from ..isa import Program
    from ..resilience.health import CheckerHealthTracker
    from ..telemetry import Tracer

import enum


class PoolPolicy(enum.Enum):
    """How a shared pool arbitrates between main cores."""

    STATIC = "static"
    WORK_STEALING = "steal"
    RESERVATION = "reserve"


POOL_POLICIES: Dict[str, PoolPolicy] = {p.value: p for p in PoolPolicy}
DEFAULT_POOL_POLICY = PoolPolicy.WORK_STEALING


@dataclass
class _CheckerSlot:
    """Physical occupancy of one checker core, shared by all facades."""

    core_id: int
    busy_until_ns: float = 0.0
    busy_ns_total: float = 0.0


class SharedCheckerCore(CheckerCore):
    """Per-main facade over one physical checker slot.

    Carries the owning main core's program (replay is program-bound)
    while ``busy_until_ns`` / ``busy_ns_total`` delegate to the shared
    slot (occupancy is physical).
    """

    def __init__(self, slot: _CheckerSlot, config: "CheckerConfig", program) -> None:
        self._slot = slot
        super().__init__(slot.core_id, config, program)

    @property
    def busy_until_ns(self) -> float:  # type: ignore[override]
        return self._slot.busy_until_ns

    @busy_until_ns.setter
    def busy_until_ns(self, value: float) -> None:
        self._slot.busy_until_ns = value

    @property
    def busy_ns_total(self) -> float:  # type: ignore[override]
        return self._slot.busy_ns_total

    @busy_ns_total.setter
    def busy_ns_total(self, value: float) -> None:
        self._slot.busy_ns_total = value


class _Turnstile:
    """Deterministic turn-taking across the engine threads.

    States per main: ``running`` (executing between pool interactions),
    ``waiting`` (blocked at an interaction stamped with its simulated
    time), ``holding`` (the granted interaction is in progress), and
    ``done`` (the engine finished or died).  A waiter is granted only
    when nobody holds, nobody is freely running, and it carries the
    minimum ``(time_ns, main_id)`` — so interactions execute in global
    simulated-time order regardless of OS thread scheduling.
    """

    _RUNNING, _WAITING, _HOLDING, _DONE = range(4)

    def __init__(self, parties: int) -> None:
        self._cond = threading.Condition()
        self._state = [self._RUNNING] * parties
        self._time = [0.0] * parties

    def _grantable(self, main_id: int) -> bool:
        states = self._state
        if any(s == self._HOLDING for s in states):
            return False
        if any(s == self._RUNNING for s in states):
            return False
        best = min(
            (i for i, s in enumerate(states) if s == self._WAITING),
            key=lambda i: (self._time[i], i),
        )
        return best == main_id

    def acquire(self, main_id: int, at_ns: float) -> None:
        with self._cond:
            assert self._state[main_id] == self._RUNNING, "nested pool interaction"
            self._state[main_id] = self._WAITING
            self._time[main_id] = at_ns
            self._cond.notify_all()
            while not self._grantable(main_id):
                self._cond.wait()
            self._state[main_id] = self._HOLDING

    def release(self, main_id: int) -> None:
        with self._cond:
            self._state[main_id] = self._RUNNING
            self._cond.notify_all()

    def finish(self, main_id: int) -> None:
        """Mark ``main_id`` done (normal exit or exception) forever."""
        with self._cond:
            self._state[main_id] = self._DONE
            self._cond.notify_all()


class SharedCheckerPool:
    """One physical pool of checker cores shared by ``main_count`` producers."""

    def __init__(
        self,
        main_count: int,
        size: int,
        policy: PoolPolicy = DEFAULT_POOL_POLICY,
        boot_offset: int = 0,
    ) -> None:
        if main_count < 1:
            raise ValueError("a shared pool needs at least one main core")
        if size < main_count:
            raise ValueError(
                f"pool of {size} checkers cannot serve {main_count} main cores"
            )
        self.main_count = main_count
        self.policy = policy
        self.slots = [_CheckerSlot(i) for i in range(size)]
        self.boot_offset = boot_offset % size
        #: Anti-ageing boot rotation of the physical ID ring; every
        #: policy's candidate order is defined over this ring so which
        #: cores age fastest varies chip to chip.
        self._order = [(self.boot_offset + i) % size for i in range(size)]
        self._candidates = [self._candidate_order(m) for m in range(main_count)]
        self.dispatches: List[DispatchRecord] = []
        self.turnstile = _Turnstile(main_count)
        #: Per-main cumulative checker-wait, accumulated at select time.
        self.wait_ns = [0.0] * main_count
        self.views: List["SharedPoolView"] = []

    def __len__(self) -> int:
        return len(self.slots)

    # -- policy geometry ---------------------------------------------------------
    def _candidate_order(self, main_id: int) -> List[int]:
        """Physical core IDs ``main_id`` may use, in preference order."""
        order, m, k = self._order, self.main_count, len(self.slots)
        if self.policy is PoolPolicy.STATIC:
            lo, hi = main_id * k // m, (main_id + 1) * k // m
            return order[lo:hi]
        if self.policy is PoolPolicy.WORK_STEALING:
            lo, hi = main_id * k // m, (main_id + 1) * k // m
            return order[lo:hi] + order[hi:] + order[:lo]
        # RESERVATION: a private stripe per main plus a shared overflow.
        reserved = max(1, k // (2 * m))
        return order[main_id * reserved : (main_id + 1) * reserved] + order[m * reserved :]

    def reserved_per_main(self) -> int:
        """Size of each main's private stripe under ``reserve`` (else 0)."""
        if self.policy is not PoolPolicy.RESERVATION:
            return 0
        return max(1, len(self.slots) // (2 * self.main_count))

    # -- views -------------------------------------------------------------------
    def view(
        self,
        main_id: int,
        config: "CheckerConfig",
        program: "Program",
    ) -> "SharedPoolView":
        """Build the per-main facade the engine schedules through."""
        if main_id != len(self.views):
            raise ValueError("views must be created in main_id order")
        view = SharedPoolView(self, main_id, config, program)
        self.views.append(view)
        return view

    # -- shared-state mutators (turnstile held by the caller) --------------------
    def select_for(
        self,
        view: "SharedPoolView",
        now_ns: float,
        avoid: Optional[Set[int]],
    ) -> Tuple[SharedCheckerCore, float]:
        cores = view._eligible(avoid)
        for core in cores:
            if core.busy_until_ns <= now_ns:
                return core, now_ns
        chosen = min(cores, key=lambda c: c.busy_until_ns)
        return chosen, chosen.busy_until_ns

    def dispatch_for(
        self,
        view: "SharedPoolView",
        core: SharedCheckerCore,
        segment_seq: int,
        start_ns: float,
        duration_ns: float,
    ) -> DispatchRecord:
        end_ns = start_ns + duration_ns
        core.busy_until_ns = end_ns
        core.busy_ns_total += duration_ns
        record = DispatchRecord(
            core.core_id, segment_seq, start_ns, end_ns, main_id=view.main_id
        )
        self.dispatches.append(record)
        return record

    def abort_for(self, record: DispatchRecord, at_ns: float) -> float:
        """Squash an in-flight check; returns the reclaimed busy time."""
        slot = self.slots[record.core_id]
        if record.end_ns <= at_ns:
            return 0.0
        reclaimed = record.end_ns - max(at_ns, record.start_ns)
        # Same float-drift guard as CheckerPool.abort.
        slot.busy_ns_total = max(slot.busy_ns_total - reclaimed, 0.0)
        record.end_ns = max(at_ns, record.start_ns)
        # Same clamp as CheckerPool.abort: never rewind the slot below a
        # remaining (possibly another main's) dispatch end.
        slot.busy_until_ns = max(
            (r.end_ns for r in self.dispatches if r.core_id == record.core_id),
            default=record.end_ns,
        )
        return reclaimed

    # -- pool-wide statistics ----------------------------------------------------
    def wake_rates(self, total_ns: float) -> List[float]:
        """Fraction of wall time each physical core spent awake, all mains."""
        if total_ns <= 0:
            return [0.0] * len(self.slots)
        busy = [0.0] * len(self.slots)
        for record in self.dispatches:
            start = min(max(record.start_ns, 0.0), total_ns)
            end = min(max(record.end_ns, 0.0), total_ns)
            if end > start:
                busy[record.core_id] += end - start
        return [min(b / total_ns, 1.0) for b in busy]

    def per_main_dispatches(self) -> List[int]:
        counts = [0] * self.main_count
        for record in self.dispatches:
            counts[record.main_id] += 1
        return counts

    def per_main_busy_ns(self) -> List[float]:
        busy = [0.0] * self.main_count
        for record in self.dispatches:
            busy[record.main_id] += max(record.end_ns - record.start_ns, 0.0)
        return busy


class SharedPoolView:
    """What one main core's engine sees of the shared pool.

    Duck-types the private :class:`~repro.scheduling.pool.CheckerPool`
    surface the engine uses (``select`` / ``dispatch`` / ``abort``,
    ``cores``, ``dispatches``, ``wake_rates``, ``peak_concurrency``,
    ``last_core_id``, ``tracer``, ``boot_offset``, ``_eligible``) so the
    engine's scheduling path is unchanged.  Per-main statistics filter
    the shared record stream by ``main_id``.
    """

    def __init__(
        self,
        shared: SharedCheckerPool,
        main_id: int,
        config: "CheckerConfig",
        program: "Program",
    ) -> None:
        self.shared = shared
        self.main_id = main_id
        self.cores: List[SharedCheckerCore] = [
            SharedCheckerCore(slot, config, program) for slot in shared.slots
        ]
        self.health: Optional["CheckerHealthTracker"] = None
        self.tracer: Optional["Tracer"] = None
        self.last_core_id: Optional[int] = None

    def __len__(self) -> int:
        return len(self.cores)

    @property
    def boot_offset(self) -> int:
        return self.shared.boot_offset

    @property
    def policy(self) -> PoolPolicy:
        return self.shared.policy

    @property
    def dispatches(self) -> List[DispatchRecord]:
        return [r for r in self.shared.dispatches if r.main_id == self.main_id]

    # -- eligibility -------------------------------------------------------------
    def _eligible(self, avoid: Optional[Set[int]]) -> List[SharedCheckerCore]:
        """This main's candidate cores, in policy preference order.

        Health and ``avoid`` filters relax rather than deadlock, exactly
        like the private pool; the policy fence itself never relaxes (a
        ``static`` main with a fully quarantined slice waits on it).
        """
        cores = [self.cores[i] for i in self.shared._candidates[self.main_id]]
        if self.health is not None:
            healthy = [c for c in cores if not self.health.is_quarantined(c.core_id)]
            if healthy:
                cores = healthy
        if avoid:
            preferred = [c for c in cores if c.core_id not in avoid]
            if preferred:
                cores = preferred
        return cores

    def earliest_free_ns(self, avoid: Optional[Set[int]] = None) -> float:
        return min(core.busy_until_ns for core in self._eligible(avoid))

    # -- scheduling (turnstile-gated) --------------------------------------------
    def select(
        self, now_ns: float, avoid: Optional[Set[int]] = None
    ) -> Tuple[SharedCheckerCore, float]:
        """Reserve a core; the turn is held until :meth:`dispatch`."""
        shared = self.shared
        shared.turnstile.acquire(self.main_id, now_ns)
        core, start_ns = shared.select_for(self, now_ns, avoid)
        if start_ns > now_ns:
            shared.wait_ns[self.main_id] += start_ns - now_ns
        return core, start_ns

    def dispatch(
        self,
        core: SharedCheckerCore,
        segment_seq: int,
        start_ns: float,
        duration_ns: float,
    ) -> DispatchRecord:
        shared = self.shared
        try:
            record = shared.dispatch_for(self, core, segment_seq, start_ns, duration_ns)
            self.last_core_id = core.core_id
            if self.tracer is not None:
                self.tracer.emit(
                    "scheduling",
                    "busy",
                    time_ns=start_ns,
                    segment=segment_seq,
                    core=core.core_id,
                    value=duration_ns,
                )
                self.tracer.metrics.inc("scheduling.dispatches")
                self.tracer.metrics.observe("scheduling.busy_ns", duration_ns)
            return record
        finally:
            shared.turnstile.release(self.main_id)

    def abort(self, record: DispatchRecord, at_ns: float) -> None:
        shared = self.shared
        shared.turnstile.acquire(self.main_id, at_ns)
        try:
            reclaimed = shared.abort_for(record, at_ns)
            if reclaimed > 0 and self.tracer is not None:
                self.tracer.emit(
                    "scheduling",
                    "abort",
                    time_ns=at_ns,
                    segment=record.segment_seq,
                    core=record.core_id,
                    value=reclaimed,
                )
                self.tracer.metrics.inc("scheduling.aborts")
        finally:
            shared.turnstile.release(self.main_id)

    # -- per-main statistics -----------------------------------------------------
    def wake_rates(self, total_ns: float) -> List[float]:
        """This main's contribution to each physical core's wake rate."""
        if total_ns <= 0:
            return [0.0] * len(self.cores)
        busy = [0.0] * len(self.cores)
        for record in self.dispatches:
            start = min(max(record.start_ns, 0.0), total_ns)
            end = min(max(record.end_ns, 0.0), total_ns)
            if end > start:
                busy[record.core_id] += end - start
        return [min(b / total_ns, 1.0) for b in busy]

    def cores_ever_used(self) -> int:
        return len({r.core_id for r in self.dispatches if r.end_ns > r.start_ns})

    def peak_concurrency(self) -> int:
        """Maximum simultaneously busy cores among this main's dispatches."""
        events: List[Tuple[float, int]] = []
        for record in self.dispatches:
            if record.end_ns > record.start_ns:
                events.append((record.start_ns, 1))
                events.append((record.end_ns, -1))
        events.sort()
        peak = current = 0
        for _time, delta in events:
            current += delta
            peak = max(peak, current)
        return peak
