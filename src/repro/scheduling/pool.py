"""Checker-core scheduling and power gating (section IV-C, figure 5).

ParaMedic allocates checker cores round-robin, which spreads work across
all sixteen cores and keeps them (and their log SRAM) powered.  ParaDox
instead allocates "the lowest-indexed free checker core", concentrating
work on low IDs so the high-ID cores and their log segments can be power
gated; "to avoid uneven ageing, ID 0 is chosen at random at boot time"
(a rotation applied to the ID ordering).

The pool tracks per-core busy intervals, from which figure 12's wake
rates and the power model's gating savings are derived.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Set, Tuple

from ..cores.checker_core import CheckerCore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.health import CheckerHealthTracker
    from ..telemetry import Tracer


class SchedulingPolicy(enum.Enum):
    """How the next checker core is chosen."""

    ROUND_ROBIN = "round-robin"  # ParaMedic
    LOWEST_FREE_ID = "lowest-free-id"  # ParaDox


@dataclass
class DispatchRecord:
    """One segment's stay on a checker core."""

    core_id: int
    segment_seq: int
    start_ns: float
    end_ns: float
    #: Main core that produced the segment (always 0 for a private pool;
    #: the shared pool stamps the owning producer for attribution).
    main_id: int = 0


class CheckerPool:
    """The sixteen checker cores of one main core."""

    def __init__(
        self,
        cores: Sequence[CheckerCore],
        policy: SchedulingPolicy,
        boot_offset: int = 0,
        health: Optional["CheckerHealthTracker"] = None,
    ) -> None:
        if not cores:
            raise ValueError("a checker pool needs at least one core")
        self.cores: List[CheckerCore] = list(cores)
        self.policy = policy
        #: Random rotation of core IDs applied at boot (anti-ageing).
        self.boot_offset = boot_offset % len(self.cores)
        #: Optional health tracker: quarantined cores are never selected,
        #: so their segments redistribute across the survivors (degraded
        #: pool throughput shows up as checker-wait stalls).
        self.health = health
        self._rr_pointer = 0
        self.dispatches: List[DispatchRecord] = []
        #: Telemetry bus (set by the engine when tracing is enabled);
        #: emits one busy interval per dispatch, one event per squash.
        self.tracer: Optional["Tracer"] = None
        #: ID (physical index) of the previously allocated core, stored at
        #: the end of each log segment for continuity (figure 5).
        self.last_core_id: Optional[int] = None

    def __len__(self) -> int:
        return len(self.cores)

    # -- selection -------------------------------------------------------------
    def _logical_order(self) -> List[int]:
        n = len(self.cores)
        return [(self.boot_offset + i) % n for i in range(n)]

    def _eligible(self, avoid: Optional[Set[int]]) -> List[CheckerCore]:
        """Cores that may take new work: healthy and not in ``avoid``.

        ``avoid`` holds cores suspected by an in-flight retry (so the
        re-check lands on different hardware).  If filtering would empty
        the pool, the constraint is dropped rather than deadlocking.
        """
        cores = self.cores
        if self.health is not None:
            healthy = [c for c in cores if not self.health.is_quarantined(c.core_id)]
            if healthy:
                cores = healthy
        if avoid:
            preferred = [c for c in cores if c.core_id not in avoid]
            if preferred:
                cores = preferred
        return cores

    def earliest_free_ns(self, avoid: Optional[Set[int]] = None) -> float:
        """Wall time at which at least one selectable core is free.

        Shares :meth:`_eligible` with :meth:`select` so wait-time
        accounting and the core actually chosen agree during retries
        (an ``avoid`` set narrows both views identically).
        """
        return min(core.busy_until_ns for core in self._eligible(avoid))

    def select(
        self, now_ns: float, avoid: Optional[Set[int]] = None
    ) -> Tuple[CheckerCore, float]:
        """Pick a core per policy; returns ``(core, start_ns)``.

        ``start_ns`` is ``now_ns`` if the chosen core is free, otherwise
        the time the main core must wait for ("if all checkers are busy
        ... the main core has to wait for a checker to finish").
        """
        eligible = self._eligible(avoid)
        if self.policy is SchedulingPolicy.ROUND_ROBIN:
            return self._select_round_robin(now_ns, eligible)
        return self._select_lowest_free(now_ns, eligible)

    def _select_round_robin(
        self, now_ns: float, eligible: List[CheckerCore]
    ) -> Tuple[CheckerCore, float]:
        order = self._logical_order()
        n = len(order)
        allowed = {core.core_id for core in eligible}
        # The round-robin pointer walks *logical* positions so the
        # anti-ageing boot rotation applies to both policies.
        for probe in range(n):
            pos = (self._rr_pointer + probe) % n
            core = self.cores[order[pos]]
            if core.core_id in allowed and core.busy_until_ns <= now_ns:
                self._rr_pointer = (pos + 1) % n
                return core, now_ns
        core = min(eligible, key=lambda c: c.busy_until_ns)
        self._rr_pointer = (order.index(core.core_id) + 1) % n
        return core, core.busy_until_ns

    def _select_lowest_free(
        self, now_ns: float, eligible: List[CheckerCore]
    ) -> Tuple[CheckerCore, float]:
        allowed = {core.core_id for core in eligible}
        for core_id in self._logical_order():
            if core_id not in allowed:
                continue
            core = self.cores[core_id]
            if core.busy_until_ns <= now_ns:
                return core, now_ns
        core = min(eligible, key=lambda c: c.busy_until_ns)
        return core, core.busy_until_ns

    # -- dispatch ------------------------------------------------------------------
    def dispatch(
        self, core: CheckerCore, segment_seq: int, start_ns: float, duration_ns: float
    ) -> DispatchRecord:
        """Occupy ``core`` with a segment for ``duration_ns`` from ``start_ns``."""
        end_ns = start_ns + duration_ns
        core.busy_until_ns = end_ns
        core.busy_ns_total += duration_ns
        record = DispatchRecord(core.core_id, segment_seq, start_ns, end_ns)
        self.dispatches.append(record)
        self.last_core_id = core.core_id
        if self.tracer is not None:
            self.tracer.emit(
                "scheduling",
                "busy",
                time_ns=start_ns,
                segment=segment_seq,
                core=core.core_id,
                value=duration_ns,
            )
            self.tracer.metrics.inc("scheduling.dispatches")
            self.tracer.metrics.observe("scheduling.busy_ns", duration_ns)
        return record

    def abort(self, record: DispatchRecord, at_ns: float) -> None:
        """Squash an in-flight check at ``at_ns`` (rollback of its segment)."""
        core = self.cores[record.core_id]
        if record.end_ns > at_ns:
            reclaimed = record.end_ns - max(at_ns, record.start_ns)
            # max() guards float drift: reclaiming the whole of a check
            # whose end was computed as start + duration can overshoot
            # the accumulated total by an ulp.
            core.busy_ns_total = max(core.busy_ns_total - reclaimed, 0.0)
            record.end_ns = max(at_ns, record.start_ns)
            # Clamp against the ends of the *remaining* dispatches on this
            # core: a squash that lands before the check even began must
            # not rewind the core below an earlier, unaborted check.
            core.busy_until_ns = max(
                (
                    r.end_ns
                    for r in self.dispatches
                    if r.core_id == record.core_id
                ),
                default=record.end_ns,
            )
            if self.tracer is not None:
                self.tracer.emit(
                    "scheduling",
                    "abort",
                    time_ns=at_ns,
                    segment=record.segment_seq,
                    core=record.core_id,
                    value=reclaimed,
                )
                self.tracer.metrics.inc("scheduling.aborts")

    # -- gating statistics -------------------------------------------------------------
    def wake_rates(self, total_ns: float) -> List[float]:
        """Fraction of wall time each physical core spent awake (fig. 12).

        Computed from the dispatch records with every busy interval
        clamped to ``[0, total_ns]``: checks still in flight when the
        main core finishes overrun the run's end, and counting that
        overhang (as the old ``busy_ns_total / total_ns`` did) could
        report a physically meaningless wake rate above 1.0.
        """
        if total_ns <= 0:
            return [0.0] * len(self.cores)
        busy = [0.0] * len(self.cores)
        for record in self.dispatches:
            start = min(max(record.start_ns, 0.0), total_ns)
            end = min(max(record.end_ns, 0.0), total_ns)
            if end > start:
                busy[record.core_id] += end - start
        return [min(b / total_ns, 1.0) for b in busy]

    def cores_ever_used(self) -> int:
        return sum(1 for core in self.cores if core.busy_ns_total > 0)

    def peak_concurrency(self) -> int:
        """Maximum number of simultaneously busy cores over the run."""
        events: List[Tuple[float, int]] = []
        for record in self.dispatches:
            if record.end_ns > record.start_ns:
                events.append((record.start_ns, 1))
                events.append((record.end_ns, -1))
        events.sort()
        peak = current = 0
        for _time, delta in events:
            current += delta
            peak = max(peak, current)
        return peak
