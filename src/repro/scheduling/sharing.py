"""Shared checker pools between multiple main cores.

Figure 12's conclusion: since no workload keeps more than eight of its
sixteen checkers busy on average, "this suggests that this could be
reduced by half through sharing checker cores between multiple main
cores, without affecting performance".

This module evaluates that claim trace-driven: take the checker dispatch
traces (arrival time, checking duration) recorded by independent
single-core simulations, replay the merged arrival stream against one
shared pool of a chosen size with lowest-free-ID allocation, and measure
how much extra queueing delay sharing introduces relative to each core
having had its private sixteen.

A delayed *start* does not slow the main core down directly (checking is
asynchronous); it matters when the main core would have had to wait for
a free checker, so we report both the added start delay and the
probability that a dispatch found no checker free — the condition that
stalls a main core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

Trace = Sequence[Tuple[float, float]]  # (arrival_ns, duration_ns)


@dataclass
class SharedPoolReport:
    """Outcome of replaying merged traces on one shared pool."""

    pool_size: int
    dispatches: int
    #: Dispatches that found no free checker (would stall a main core).
    blocked_dispatches: int
    total_added_delay_ns: float
    max_added_delay_ns: float
    #: Per-core wake rates of the shared pool.
    wake_rates: List[float] = field(default_factory=list)

    @property
    def blocked_fraction(self) -> float:
        return self.blocked_dispatches / self.dispatches if self.dispatches else 0.0

    @property
    def mean_added_delay_ns(self) -> float:
        return self.total_added_delay_ns / self.dispatches if self.dispatches else 0.0


def merge_traces(traces: Sequence[Trace]) -> List[Tuple[float, float]]:
    """Merge per-core dispatch traces into one arrival-ordered stream."""
    merged: List[Tuple[float, float]] = []
    for trace in traces:
        merged.extend(trace)
    merged.sort(key=lambda item: item[0])
    return merged


def replay_shared_pool(
    traces: Sequence[Trace], pool_size: int
) -> SharedPoolReport:
    """Replay merged traces against ``pool_size`` shared checkers.

    Allocation is lowest-free-ID (ParaDox's gating-friendly policy).  A
    dispatch that arrives with no checker free is *blocked*: it starts
    when the earliest checker frees, and the difference is its added
    delay.
    """
    if pool_size <= 0:
        raise ValueError("pool size must be positive")
    merged = merge_traces(traces)
    free_at = [0.0] * pool_size
    busy_total = [0.0] * pool_size
    blocked = 0
    total_delay = 0.0
    max_delay = 0.0
    for arrival, duration in merged:
        # Lowest-free-ID: first core already free at the arrival time.
        chosen = None
        for core_id in range(pool_size):
            if free_at[core_id] <= arrival:
                chosen = core_id
                start = arrival
                break
        if chosen is None:
            blocked += 1
            chosen = min(range(pool_size), key=free_at.__getitem__)
            start = free_at[chosen]
            delay = start - arrival
            total_delay += delay
            max_delay = max(max_delay, delay)
        free_at[chosen] = start + duration
        busy_total[chosen] += duration
    horizon = max(free_at) if merged else 0.0
    wake_rates = [busy / horizon if horizon else 0.0 for busy in busy_total]
    return SharedPoolReport(
        pool_size=pool_size,
        dispatches=len(merged),
        blocked_dispatches=blocked,
        total_added_delay_ns=total_delay,
        max_added_delay_ns=max_delay,
        wake_rates=wake_rates,
    )


def sharing_study(
    traces: Sequence[Trace],
    pool_sizes: Sequence[int] = (32, 16, 12, 8, 6, 4),
) -> List[SharedPoolReport]:
    """Sweep shared-pool sizes over the merged traces.

    With two main cores, 32 is the unshared total; 16 is the paper's
    halved suggestion.  The claim holds when the 16-core report shows a
    (near-)zero blocked fraction.
    """
    return [replay_shared_pool(traces, size) for size in pool_sizes]


def minimum_adequate_pool(
    traces: Sequence[Trace],
    max_blocked_fraction: float = 0.01,
    ceiling: int = 64,
) -> int:
    """Smallest pool keeping the blocked fraction under the threshold."""
    for size in range(1, ceiling + 1):
        if replay_shared_pool(traces, size).blocked_fraction <= max_blocked_fraction:
            return size
    raise ValueError(f"no pool up to {ceiling} meets the threshold")
