"""Checker-core scheduling policies and power-gating accounting."""

from .pool import CheckerPool, DispatchRecord, SchedulingPolicy
from .sharing import (
    SharedPoolReport,
    merge_traces,
    minimum_adequate_pool,
    replay_shared_pool,
    sharing_study,
)

__all__ = [
    "CheckerPool",
    "DispatchRecord",
    "SchedulingPolicy",
    "SharedPoolReport",
    "merge_traces",
    "minimum_adequate_pool",
    "replay_shared_pool",
    "sharing_study",
]
