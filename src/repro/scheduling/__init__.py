"""Checker-core scheduling policies and power-gating accounting."""

from .pool import CheckerPool, DispatchRecord, SchedulingPolicy
from .shared import (
    DEFAULT_POOL_POLICY,
    POOL_POLICIES,
    PoolPolicy,
    SharedCheckerCore,
    SharedCheckerPool,
    SharedPoolView,
)
from .sharing import (
    SharedPoolReport,
    merge_traces,
    minimum_adequate_pool,
    replay_shared_pool,
    sharing_study,
)

__all__ = [
    "CheckerPool",
    "DEFAULT_POOL_POLICY",
    "DispatchRecord",
    "POOL_POLICIES",
    "PoolPolicy",
    "SchedulingPolicy",
    "SharedCheckerCore",
    "SharedCheckerPool",
    "SharedPoolView",
    "SharedPoolReport",
    "merge_traces",
    "minimum_adequate_pool",
    "replay_shared_pool",
    "sharing_study",
]
