"""Genome codec and variation operators for the config-space search.

A *genome* is a plain dict mapping gene names to values — exactly the
``overrides`` dict the campaign layer applies onto ``table1_config()``
and :class:`~repro.resilience.guard.ResilienceConfig` (see
``CONFIG_OVERRIDES`` / ``RESILIENCE_OVERRIDES`` in
:mod:`repro.resilience.campaign`).  The gene table below is the whole
search space: every knob the paper hand-picks that the explorer may
vary, with its paper default and the range the search samples.

Determinism rules (the search's byte-identity guarantee rests on them):

* every gene value is **quantised** to a fixed grid (ints to 1, floats
  to the gene's ``quantum``), so a genome's JSON — and therefore its
  content-addressed key — never depends on float noise from arithmetic
  order;
* all randomness flows through a ``numpy`` generator the caller seeds
  (the loop derives one per generation via ``derive_seed``);
* genomes are *repaired* after every variation: values clamped into
  range, and ``guard_escalate_after`` kept strictly above
  ``guard_shrink_after`` (the guard stages are ordered).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

import numpy as np

#: Salt folded into every genome key.  Bump when gene semantics change
#: (a stored evaluation would no longer describe what the current code
#: simulates for the same gene values).
GENOME_IDENTITY = "paradox-repro/genome/v1"


@dataclass(frozen=True)
class Gene:
    """One dimension of the search space."""

    name: str
    #: "int" or "float" — fixes the JSON type and the mutation grid.
    kind: str
    low: float
    high: float
    #: The paper's hand-picked value (Table I / sections IV-A, IV-B).
    default: float
    #: Quantisation grid for float genes (ints always snap to 1).
    quantum: float = 1.0
    description: str = ""

    def clamp(self, value: float) -> Any:
        """Snap ``value`` onto the gene's grid inside [low, high]."""
        value = min(max(float(value), self.low), self.high)
        if self.kind == "int":
            return int(round(value))
        # Round to the quantum grid, then kill float dust with a final
        # decimal round (quanta are powers of ten times small ints, so
        # 12 digits is far finer than any grid in the table).
        return round(round(value / self.quantum) * self.quantum, 12)


#: The search space.  Ranges bracket the paper defaults generously but
#: stay inside what the simulator accepts (e.g. the voltage floor stays
#: above the 0.45 V transistor threshold the frequency model divides by).
GENES: Tuple[Gene, ...] = (
    Gene(
        "checker_count", "int", 4, 24, 16,
        description="checker cores sharing the checkpoint load (Table I: 16)",
    ),
    Gene(
        "ckpt_additive_increase", "int", 2, 50, 10,
        description="AIMD additive increase per clean checkpoint (IV-A: 10)",
    ),
    Gene(
        "ckpt_multiplicative_decrease", "float", 0.25, 0.8, 0.5, 0.01,
        description="AIMD multiplicative decrease on an error (IV-A: 0.5)",
    ),
    Gene(
        "ckpt_initial_instructions", "int", 100, 3000, 1000,
        description="initial checkpoint-length target (IV-A: 1000)",
    ),
    Gene(
        "dvfs_step_volts", "float", 0.0005, 0.008, 0.002, 0.0001,
        description="voltage-difference step per clean checkpoint (IV-B)",
    ),
    Gene(
        "dvfs_recovery_factor", "float", 0.75, 0.95, 0.875, 0.005,
        description="difference shrink factor on an error (IV-B: 0.875)",
    ),
    Gene(
        "dvfs_tide_slowdown", "float", 1.0, 16.0, 8.0, 0.5,
        description="descent slowdown below the error tide mark (IV-B: 8)",
    ),
    Gene(
        "dvfs_min_voltage", "float", 0.55, 0.95, 0.70, 0.01,
        description="regulator voltage floor (Table I: 0.70 V)",
    ),
    Gene(
        "guard_shrink_after", "int", 2, 6, 3,
        description="stuck-checkpoint rollbacks before window shrink",
    ),
    Gene(
        "guard_escalate_after", "int", 3, 10, 5,
        description="rollbacks before the guard escalates voltage",
    ),
    Gene(
        "quarantine_vindications", "int", 1, 8, 3,
        description="vindicated false detections before quarantine",
    ),
)

GENE_BY_NAME: Dict[str, Gene] = {gene.name: gene for gene in GENES}

Genome = Dict[str, Any]


def paper_default_genome() -> Genome:
    """The genome encoding exactly the paper's hand-picked configuration."""
    return {gene.name: gene.clamp(gene.default) for gene in GENES}


def repair(genome: Mapping[str, Any]) -> Genome:
    """Clamp/quantise every gene and restore ordering constraints."""
    fixed = {
        gene.name: gene.clamp(genome.get(gene.name, gene.default))
        for gene in GENES
    }
    # The guard's stages are ordered: shrink must fire before voltage
    # escalation can.
    if fixed["guard_escalate_after"] <= fixed["guard_shrink_after"]:
        fixed["guard_escalate_after"] = min(
            int(GENE_BY_NAME["guard_escalate_after"].high),
            fixed["guard_shrink_after"] + 1,
        )
    return fixed


def genome_key(genome: Mapping[str, Any]) -> str:
    """SHA-256 hex digest identifying one (repaired) genome."""
    payload = {"identity": GENOME_IDENTITY}
    payload.update(repair(genome))
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def random_genome(rng: np.random.Generator) -> Genome:
    """Uniform sample of the whole space, repaired onto the grid."""
    draft = {
        gene.name: gene.low + float(rng.random()) * (gene.high - gene.low)
        for gene in GENES
    }
    return repair(draft)


def crossover(
    a: Mapping[str, Any], b: Mapping[str, Any], rng: np.random.Generator
) -> Genome:
    """Uniform crossover: each gene from one parent with equal odds."""
    child = {
        gene.name: (a if rng.random() < 0.5 else b)[gene.name] for gene in GENES
    }
    return repair(child)


def mutate(
    genome: Mapping[str, Any],
    rng: np.random.Generator,
    rate: float = 0.25,
    scale: float = 0.15,
) -> Genome:
    """Gaussian creep mutation: each gene perturbed with probability
    ``rate`` by ``N(0, scale * range)``, then repaired onto the grid."""
    child = dict(genome)
    for gene in GENES:
        if rng.random() < rate:
            sigma = scale * (gene.high - gene.low)
            child[gene.name] = float(child[gene.name]) + float(rng.normal()) * sigma
    return repair(child)
