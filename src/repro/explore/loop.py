"""The seeded NSGA-II search loop over the ParaDox config space.

One *generation* is one evaluation wave: generation 0 evaluates the
initial population (the paper-default genome plus uniform random
samples); every later generation breeds ``population`` offspring by
binary-tournament selection, uniform crossover and Gaussian creep
mutation, evaluates them, and keeps the best ``population`` of
parents ∪ offspring by non-dominated rank and crowding distance
(μ+λ survivor selection).  ``--generations N`` therefore means N waves,
at most ``N × population`` genome evaluations.

Each genome is scored by a small fault-injection campaign — the genome
*is* the campaign's ``overrides`` dict — executed through the existing
:func:`repro.resilience.campaign.run_campaign` fan-out.  Parallelism
lives entirely inside that fan-out: genomes are evaluated sequentially,
so the search trajectory is independent of ``--workers`` by
construction (the campaign layer already guarantees record-level
bit-identity at any width).

Resume works by replay: the loop's decisions are a pure function of
the spec's seed and the (deterministic) objective values, so a killed
search relaunched with ``--resume`` walks the identical trajectory,
finds every finished campaign cell in the store by content-addressed
run key, finishes any half-done generation, and continues — the final
report is byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..parallel import derive_seed
from ..resilience.campaign import CampaignSpec, run_campaign
from .archive import (
    crowding_distances,
    hypervolume,
    non_dominated_sort,
    pareto_front_indices,
    select_survivors,
)
from .fitness import (
    HYPERVOLUME_REFERENCE,
    OBJECTIVE_NAMES,
    objective_vector,
    objectives_from_records,
)
from .genome import (
    GENES,
    Genome,
    crossover,
    genome_key,
    mutate,
    paper_default_genome,
    random_genome,
)

#: Salt folded into every explore key (bump with search semantics).
EXPLORE_IDENTITY = "paradox-repro/explore/v1"

#: Spec fields that change how fast the search runs, never what it
#: computes — excluded from the explore key, mirroring the campaign key.
EXECUTION_ONLY_EXPLORE_FIELDS = ("workers", "timeout_s")


@dataclass
class ExploreSpec:
    """Everything needed to reproduce a design-space search."""

    workload: str = "bitcount"
    scale: float = 0.3
    #: Evaluation waves, including the initial population (see module doc).
    generations: int = 4
    #: Genomes per wave (and survivors kept between waves).
    population: int = 8
    #: Master seed: every random draw of the search derives from it.
    seed: int = 0
    #: Injection seeds per genome evaluation (the campaign's grid).
    eval_seeds: int = 4
    first_eval_seed: int = 0
    #: Injected error rate and fault-model mix for evaluation campaigns.
    rate: float = 3e-4
    model: str = "transient"
    #: DVS warm-start margin for evaluation campaigns.
    initial_margin: float = 0.15
    #: Per-run watchdog (execution-only, like the campaign's).
    timeout_s: float = 60.0
    #: Worker processes inside each evaluation campaign (0 = auto).
    workers: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def campaign_spec(self, genome: Genome) -> CampaignSpec:
        """The evaluation campaign for one genome (= its overrides)."""
        return CampaignSpec(
            workload=self.workload,
            scale=self.scale,
            seeds=self.eval_seeds,
            first_seed=self.first_eval_seed,
            rates=(self.rate,),
            models=(self.model,),
            dvs=True,
            initial_margin=self.initial_margin,
            timeout_s=self.timeout_s,
            workers=self.workers,
            overrides=dict(genome),
        )


def explore_key(spec: ExploreSpec) -> str:
    """SHA-256 hex digest identifying one search (content-addressed)."""
    payload = {
        key: value
        for key, value in spec.to_dict().items()
        if key not in EXECUTION_ONLY_EXPLORE_FIELDS
    }
    payload["identity"] = EXPLORE_IDENTITY
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class Evaluation:
    """One genome, scored."""

    genome_key: str
    genome: Genome
    #: Generation the genome was first evaluated in.
    generation: int
    objectives: Dict[str, float]
    campaign_key: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "genome_key": self.genome_key,
            "generation": self.generation,
            "genome": dict(self.genome),
            "objectives": dict(self.objectives),
            "campaign_key": self.campaign_key,
        }


@dataclass
class ExploreResult:
    """The search outcome: archive, front, and per-generation history."""

    spec: ExploreSpec
    key: str
    evaluations: List[Evaluation] = field(default_factory=list)
    #: Final Pareto front over *every* evaluation, sorted by genome key.
    front_keys: List[str] = field(default_factory=list)
    #: Per-wave history: evaluated/cached counts, front size, hypervolume.
    generations: List[Dict[str, Any]] = field(default_factory=list)
    default_key: str = ""

    def front(self) -> List[Evaluation]:
        front_set = set(self.front_keys)
        return [e for e in self.evaluations if e.genome_key in front_set]

    def default_evaluation(self) -> Optional[Evaluation]:
        for evaluation in self.evaluations:
            if evaluation.genome_key == self.default_key:
                return evaluation
        return None

    def improves_on_default(self) -> List[str]:
        """Objectives where some front genome strictly beats the default."""
        default = self.default_evaluation()
        if default is None:
            return []
        improved = []
        for name in OBJECTIVE_NAMES:
            best = min(e.objectives[name] for e in self.front())
            if best < default.objectives[name]:
                improved.append(name)
        return improved

    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON report — a pure function of the search.

        Execution-only spec fields are dropped, so interrupted-and-
        resumed searches (and any ``--workers`` width) serialise
        byte-identically.
        """
        spec = {
            key: value
            for key, value in self.spec.to_dict().items()
            if key not in EXECUTION_ONLY_EXPLORE_FIELDS
        }
        return {
            "spec": spec,
            "explore_key": self.key,
            "objective_names": list(OBJECTIVE_NAMES),
            "hypervolume_reference": list(HYPERVOLUME_REFERENCE),
            "genes": [
                {
                    "name": gene.name,
                    "kind": gene.kind,
                    "low": gene.low,
                    "high": gene.high,
                    "default": gene.clamp(gene.default),
                    "description": gene.description,
                }
                for gene in GENES
            ],
            "paper_default": {
                "genome_key": self.default_key,
                "objectives": (
                    dict(self.default_evaluation().objectives)
                    if self.default_evaluation()
                    else None
                ),
            },
            "improves_on_default": self.improves_on_default(),
            "generations": [dict(entry) for entry in self.generations],
            "front": [e.to_dict() for e in self.front()],
            "evaluations": [e.to_dict() for e in self.evaluations],
        }


def run_explore(
    spec: ExploreSpec,
    *,
    store_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Callable[[Evaluation, bool], None]] = None,
    on_generation: Optional[Callable[[Dict[str, Any]], None]] = None,
    tracer: Optional[Any] = None,
) -> ExploreResult:
    """Run the seeded search; see the module docstring for semantics.

    With ``store_path`` every campaign cell and every genome evaluation
    is persisted; a search whose key already has evaluations in the
    store refuses to run unless ``resume=True`` (mirroring the campaign
    layer's contract).  ``progress(evaluation, cached)`` fires per
    genome; ``on_generation(summary)`` per wave.
    """
    from ..store import CampaignStore, StoreError
    from ..store import campaign_key as campaign_key_of

    key = explore_key(spec)
    if spec.generations < 1 or spec.population < 2:
        raise ValueError("explore needs generations >= 1 and population >= 2")

    store: Optional[CampaignStore] = None
    try:
        if store_path is not None:
            store = CampaignStore(store_path)
            if store.load_evaluations(key) and not resume:
                raise StoreError(
                    f"store {store_path!r} already holds evaluations for "
                    "this search; pass resume=True (--resume) to continue "
                    "it, or use a fresh store"
                )
            store.register_explore(key, spec.to_dict())

        result = ExploreResult(spec=spec, key=key)
        evaluations: Dict[str, Evaluation] = {}
        genomes: Dict[str, Genome] = {}

        def evaluate(genome: Genome, generation: int) -> Tuple[Evaluation, bool]:
            gkey = genome_key(genome)
            if gkey in evaluations:
                return evaluations[gkey], True
            campaign = spec.campaign_spec(genome)
            report = run_campaign(
                campaign,
                store_path=store_path,
                # Always resume inside a search: a store hit on a cell
                # another search (or an earlier attempt) already ran is
                # exactly the caching the store exists for.
                resume=store_path is not None,
            )
            objectives = objectives_from_records(report.records, scale=spec.scale)
            evaluation = Evaluation(
                genome_key=gkey,
                genome=dict(genome),
                generation=generation,
                objectives=objectives,
                campaign_key=campaign_key_of(campaign.to_dict()),
            )
            evaluations[gkey] = evaluation
            result.evaluations.append(evaluation)
            if store is not None:
                store.record_evaluation(
                    key, gkey, generation, genome, objectives,
                    evaluation.campaign_key,
                )
            if tracer is not None:
                tracer.emit(
                    "explore",
                    "evaluation",
                    time_ns=float(generation),
                    value=float(objectives["energy"]),
                    detail=f"{gkey[:12]} {json.dumps(objectives, sort_keys=True)}",
                )
            return evaluation, False

        def archive_front() -> List[str]:
            keys = sorted(evaluations)
            points = [objective_vector(evaluations[k].objectives) for k in keys]
            return [keys[i] for i in pareto_front_indices(points)]

        def close_generation(generation: int, fresh: int, cached: int) -> None:
            front = archive_front()
            volume = hypervolume(
                [objective_vector(evaluations[k].objectives) for k in front],
                HYPERVOLUME_REFERENCE,
            )
            summary = {
                "generation": generation,
                "evaluated": fresh,
                "cached": cached,
                "archive_size": len(evaluations),
                "front_size": len(front),
                "hypervolume": round(volume, 9),
            }
            result.generations.append(summary)
            if tracer is not None:
                tracer.emit(
                    "explore",
                    "generation",
                    time_ns=float(generation),
                    value=float(len(front)),
                    detail=json.dumps(summary, sort_keys=True),
                )
            if on_generation is not None:
                on_generation(summary)

        # Generation 0: the paper's design point plus uniform samples.
        default = paper_default_genome()
        result.default_key = genome_key(default)
        rng = np.random.default_rng(derive_seed(spec.seed, "explore", "init"))
        population: List[str] = []
        candidates: List[Genome] = [default]
        while len(candidates) < spec.population * 8:
            candidates.append(random_genome(rng))
        for genome in candidates:
            gkey = genome_key(genome)
            if gkey not in genomes:
                genomes[gkey] = genome
                population.append(gkey)
            if len(population) >= spec.population:
                break
        fresh = cached = 0
        for gkey in population:
            evaluation, was_cached = evaluate(genomes[gkey], 0)
            cached += was_cached
            fresh += not was_cached
            if progress is not None:
                progress(evaluation, was_cached)
        close_generation(0, fresh, cached)

        for generation in range(1, spec.generations):
            rng = np.random.default_rng(
                derive_seed(spec.seed, "explore", "gen", generation)
            )
            # Rank the current population once for tournament selection.
            points = [objective_vector(evaluations[k].objectives) for k in population]
            rank: Dict[str, int] = {}
            for front_rank, front in enumerate(non_dominated_sort(points)):
                for i in front:
                    rank[population[i]] = front_rank
            crowding = crowding_distances(points)
            crowd = {population[i]: crowding[i] for i in range(len(population))}

            def better(a: str, b: str) -> str:
                score_a = (rank[a], -crowd[a], a)
                score_b = (rank[b], -crowd[b], b)
                return a if score_a <= score_b else b

            def tournament() -> str:
                i = int(rng.integers(len(population)))
                j = int(rng.integers(len(population)))
                return better(population[i], population[j])

            children: List[str] = []
            attempts = 0
            while len(children) < spec.population and attempts < spec.population * 16:
                attempts += 1
                child = mutate(
                    crossover(genomes[tournament()], genomes[tournament()], rng),
                    rng,
                )
                ckey = genome_key(child)
                if ckey in children:
                    continue
                genomes[ckey] = child
                children.append(ckey)

            fresh = cached = 0
            for ckey in children:
                evaluation, was_cached = evaluate(genomes[ckey], generation)
                cached += was_cached
                fresh += not was_cached
                if progress is not None:
                    progress(evaluation, was_cached)
            pool = sorted(set(population) | set(children))
            population = select_survivors(
                pool,
                {k: objective_vector(evaluations[k].objectives) for k in pool},
                spec.population,
            )
            close_generation(generation, fresh, cached)

        result.front_keys = archive_front()
        if tracer is not None:
            tracer.emit(
                "explore",
                "front",
                time_ns=float(spec.generations - 1),
                value=float(result.generations[-1]["hypervolume"]),
                detail=",".join(k[:12] for k in result.front_keys),
            )
        return result
    finally:
        if store is not None:
            store.close()
