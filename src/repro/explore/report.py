"""Pareto-front report artifacts: canonical JSON and a static HTML page.

The JSON report is :meth:`ExploreResult.to_dict` verbatim — a pure
function of the search content (see the byte-identity notes there) —
published atomically like every CLI artifact.

The HTML page follows the ``repro report`` dashboard idiom: one
self-contained file, inline CSS and SVG, no scripts, no external
assets.  It shows stat tiles, the objective-space scatter (slowdown ×
energy, failure rate as ring markers), the generation-by-generation
hypervolume trend, and a per-genome drill-down for every front member
(gene values against the paper defaults).  Color never carries meaning
without a text label; dark mode is an explicit custom-property set.
"""

from __future__ import annotations

import html
from typing import Any, List, Sequence, Tuple

from ..ioutil import atomic_write_json, atomic_write_text
from .fitness import OBJECTIVE_NAMES
from .genome import GENES
from .loop import Evaluation, ExploreResult

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; background: var(--page);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--ink);
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb; --ink: #0b0b0b;
  --ink-2: #52514e; --muted: #898781; --grid: #e1e0d9;
  --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --front: #2a78d6; --dominated: #c3c2b7; --default: #fab219;
  --fail: #d03b3b;
  max-width: 1080px; margin: 0 auto; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19; --ink: #ffffff;
    --ink-2: #c3c2b7; --muted: #898781; --grid: #2c2c2a;
    --axis: #383835; --border: rgba(255,255,255,0.10);
    --front: #3987e5; --dominated: #52514e;
  }
}
h1 { font-size: 20px; font-weight: 650; margin: 8px 0 2px; }
h2 { font-size: 15px; font-weight: 650; margin: 24px 0 8px; }
.sub { color: var(--ink-2); font-size: 12.5px; margin: 0 0 16px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 16px 18px; margin: 14px 0;
}
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 10px 0 4px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 108px;
}
.tile .v { font-size: 22px; font-weight: 650; }
.tile .k { font-size: 11.5px; color: var(--ink-2); margin-top: 2px; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 14px; font-size: 12px;
  color: var(--ink-2); margin: 6px 0 2px; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 5px; margin-right: 5px; vertical-align: -1px; }
table { border-collapse: collapse; font-size: 12.5px; margin-top: 8px; }
th, td { text-align: right; padding: 3px 12px 3px 0;
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
tbody tr { border-top: 1px solid var(--grid); }
svg text { fill: var(--muted); font-size: 11px;
  font-variant-numeric: tabular-nums; }
svg .lbl { fill: var(--ink-2); }
details { margin: 8px 0; }
summary { cursor: pointer; font-size: 13px; color: var(--ink-2); }
.delta { color: var(--fail); font-weight: 600; }
.note { color: var(--muted); font-size: 12px; }
code { font-size: 11.5px; color: var(--ink-2); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def write_report_json(result: ExploreResult, path: str) -> None:
    """Publish the canonical Pareto-front JSON report atomically."""
    atomic_write_json(path, result.to_dict())


def _axis_range(values: Sequence[float]) -> Tuple[float, float]:
    low, high = min(values), max(values)
    if high <= low:
        high = low + 1.0
    pad = 0.08 * (high - low)
    return low - pad, high + pad


def _scatter_svg(result: ExploreResult) -> str:
    """Objective-space scatter: slowdown (x) × energy (y).

    Front members in series blue, dominated genomes in muted gray, the
    paper default as a labelled diamond; genomes with a nonzero failure
    rate get a critical-color ring.  Every marker carries a ``<title>``
    tooltip with its key and full objective vector.
    """
    width, height = 640, 360
    margin = 46
    evaluations = result.evaluations
    if not evaluations:
        return '<p class="note">no evaluations</p>'
    xs = [e.objectives["slowdown"] for e in evaluations]
    ys = [e.objectives["energy"] for e in evaluations]
    x_lo, x_hi = _axis_range(xs)
    y_lo, y_hi = _axis_range(ys)

    def px(x: float) -> float:
        return margin + (x - x_lo) / (x_hi - x_lo) * (width - 2 * margin)

    def py(y: float) -> float:
        return height - margin - (y - y_lo) / (y_hi - y_lo) * (height - 2 * margin)

    front = set(result.front_keys)
    parts: List[str] = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="Pareto front scatter">'
    ]
    # Axes and gridlines (4 ticks each).
    for tick in range(5):
        x = x_lo + tick * (x_hi - x_lo) / 4
        y = y_lo + tick * (y_hi - y_lo) / 4
        parts.append(
            f'<line x1="{px(x):.1f}" y1="{margin}" x2="{px(x):.1f}" '
            f'y2="{height - margin}" stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{px(x):.1f}" y="{height - margin + 16}" '
            f'text-anchor="middle">{_fmt(x)}</text>'
        )
        parts.append(
            f'<line x1="{margin}" y1="{py(y):.1f}" x2="{width - margin}" '
            f'y2="{py(y):.1f}" stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{margin - 8}" y="{py(y):.1f}" text-anchor="end" '
            f'dominant-baseline="middle">{_fmt(y)}</text>'
        )
    parts.append(
        f'<text class="lbl" x="{width / 2:.0f}" y="{height - 8}" '
        f'text-anchor="middle">slowdown vs fault-free baseline</text>'
        f'<text class="lbl" x="14" y="{height / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {height / 2:.0f})">relative energy</text>'
    )
    # Dominated first so the front draws on top.
    ordered = sorted(
        evaluations, key=lambda e: (e.genome_key in front, e.genome_key)
    )
    for e in ordered:
        x = px(e.objectives["slowdown"])
        y = py(e.objectives["energy"])
        is_front = e.genome_key in front
        fill = "var(--front)" if is_front else "var(--dominated)"
        ring = (
            ' stroke="var(--fail)" stroke-width="2"'
            if e.objectives["failure_rate"] > 0
            else ""
        )
        tooltip = _esc(
            f"{e.genome_key[:12]} gen {e.generation} — "
            + ", ".join(f"{n}={e.objectives[n]:.4g}" for n in OBJECTIVE_NAMES)
        )
        if e.genome_key == result.default_key:
            size = 7
            parts.append(
                f'<path d="M {x:.1f} {y - size:.1f} L {x + size:.1f} {y:.1f} '
                f'L {x:.1f} {y + size:.1f} L {x - size:.1f} {y:.1f} Z" '
                f'fill="var(--default)"{ring}><title>paper default: '
                f"{tooltip}</title></path>"
            )
        else:
            radius = 5 if is_front else 3.5
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}" '
                f'fill="{fill}"{ring}><title>{tooltip}</title></circle>'
            )
    parts.append("</svg>")
    legend = (
        '<div class="legend">'
        '<span><span class="sw" style="background:var(--front)"></span>'
        "Pareto front</span>"
        '<span><span class="sw" style="background:var(--dominated)"></span>'
        "dominated</span>"
        '<span><span class="sw" style="background:var(--default)"></span>'
        "paper default</span>"
        '<span><span class="sw" style="border:2px solid var(--fail);'
        'background:transparent"></span>forward-progress failures &gt; 0</span>'
        "</div>"
    )
    return "".join(parts) + legend


def _hypervolume_svg(result: ExploreResult) -> str:
    """Generation-by-generation hypervolume trend as a polyline."""
    width, height = 640, 180
    margin = 46
    series = [entry["hypervolume"] for entry in result.generations]
    if not series:
        return '<p class="note">no generations</p>'
    y_lo, y_hi = _axis_range(series)
    n = len(series)

    def px(i: int) -> float:
        if n == 1:
            return width / 2
        return margin + i / (n - 1) * (width - 2 * margin)

    def py2(v: float) -> float:
        return height - margin - (v - y_lo) / (y_hi - y_lo) * (height - 2 * margin)

    points = " ".join(f"{px(i):.1f},{py2(v):.1f}" for i, v in enumerate(series))
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="hypervolume per generation">',
        f'<polyline points="{points}" fill="none" stroke="var(--front)" '
        f'stroke-width="2"/>',
    ]
    for i, v in enumerate(series):
        parts.append(
            f'<circle cx="{px(i):.1f}" cy="{py2(v):.1f}" r="3.5" '
            f'fill="var(--front)"><title>generation {i}: '
            f"hypervolume {v:.6g}</title></circle>"
            f'<text x="{px(i):.1f}" y="{height - margin + 16}" '
            f'text-anchor="middle">{i}</text>'
        )
    parts.append(
        f'<text x="{margin - 8}" y="{py2(y_lo):.1f}" text-anchor="end" '
        f'dominant-baseline="middle">{_fmt(y_lo)}</text>'
        f'<text x="{margin - 8}" y="{py2(y_hi):.1f}" text-anchor="end" '
        f'dominant-baseline="middle">{_fmt(y_hi)}</text>'
        f'<text class="lbl" x="{width / 2:.0f}" y="{height - 6}" '
        f'text-anchor="middle">generation</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _genome_details(result: ExploreResult, evaluation: Evaluation) -> str:
    """One front member's drill-down: genes against the paper default."""
    rows = []
    for gene in GENES:
        value = evaluation.genome[gene.name]
        default = gene.clamp(gene.default)
        cell = _esc(value)
        if value != default:
            cell = f'<span class="delta">{cell}</span>'
        rows.append(
            f"<tr><td><code>{_esc(gene.name)}</code></td>"
            f"<td>{cell}</td><td>{_esc(default)}</td>"
            f"<td>{_esc(gene.low)}–{_esc(gene.high)}</td></tr>"
        )
    objectives = ", ".join(
        f"{name} {evaluation.objectives[name]:.4g}" for name in OBJECTIVE_NAMES
    )
    marker = (
        " (paper default)" if evaluation.genome_key == result.default_key else ""
    )
    return (
        f"<details><summary><code>{_esc(evaluation.genome_key[:12])}</code>"
        f"{_esc(marker)} — generation {evaluation.generation}, "
        f"{_esc(objectives)}</summary>"
        '<table><thead><tr><th>gene</th><th>value</th><th>default</th>'
        "<th>range</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
        f'<p class="note">campaign <code>'
        f"{_esc(evaluation.campaign_key[:16])}</code>; deviations from the "
        "paper default are highlighted.</p></details>"
    )


def render_explore_report(result: ExploreResult) -> str:
    """The whole page as one self-contained HTML string."""
    spec = result.spec
    final = result.generations[-1] if result.generations else {}
    improves = result.improves_on_default()
    tiles = [
        (str(spec.generations), "generations"),
        (str(len(result.evaluations)), "genomes evaluated"),
        (str(len(result.front_keys)), "front size"),
        (_fmt(float(final.get("hypervolume", 0.0))), "final hypervolume"),
        (", ".join(improves) if improves else "none", "improves on default"),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(label)}</div></div>'
        for value, label in tiles
    )
    front_rows = "".join(
        f"<tr><td><code>{_esc(e.genome_key[:12])}</code></td>"
        f"<td>{e.generation}</td>"
        + "".join(
            f"<td>{e.objectives[name]:.4g}</td>" for name in OBJECTIVE_NAMES
        )
        + "</tr>"
        for e in result.front()
    )
    details = "".join(_genome_details(result, e) for e in result.front())
    default = result.default_evaluation()
    default_note = ""
    if default is not None:
        objectives = ", ".join(
            f"{name} {default.objectives[name]:.4g}" for name in OBJECTIVE_NAMES
        )
        default_note = (
            f'<p class="sub">paper default '
            f"<code>{_esc(default.genome_key[:12])}</code>: {_esc(objectives)}"
            "</p>"
        )
    generation_rows = "".join(
        f"<tr><td>{entry['generation']}</td><td>{entry['evaluated']}</td>"
        f"<td>{entry['cached']}</td><td>{entry['archive_size']}</td>"
        f"<td>{entry['front_size']}</td><td>{entry['hypervolume']:.6g}</td></tr>"
        for entry in result.generations
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro explore — {_esc(spec.workload)}</title>
<style>{_CSS}</style>
</head>
<body>
<div class="viz-root">
<h1>Design-space search — {_esc(spec.workload)}</h1>
<p class="sub">search <code>{_esc(result.key[:16])}</code> · seed
{spec.seed} · population {spec.population} ·
{spec.eval_seeds} injection seed(s) × rate {_esc(spec.rate)} per genome</p>
<div class="tiles">{tile_html}</div>
{default_note}
<div class="card">
<h2>Objective space</h2>
{_scatter_svg(result)}
</div>
<div class="card">
<h2>Hypervolume trend</h2>
{_hypervolume_svg(result)}
<table><thead><tr><th>generation</th><th>evaluated</th><th>cached</th>
<th>archive</th><th>front</th><th>hypervolume</th></tr></thead>
<tbody>{generation_rows}</tbody></table>
</div>
<div class="card">
<h2>Pareto front</h2>
<table><thead><tr><th>genome</th><th>gen</th>
{"".join(f"<th>{_esc(name)}</th>" for name in OBJECTIVE_NAMES)}
</tr></thead><tbody>{front_rows}</tbody></table>
<h2>Per-genome drill-down</h2>
{details}
</div>
<p class="note">Deterministic artifact: byte-identical for the same
search spec and store at any worker width. See docs/EXPLORE.md.</p>
</div>
</body>
</html>
"""


def write_explore_report(result: ExploreResult, path: str) -> None:
    """Render and atomically publish the HTML page."""
    atomic_write_text(path, render_explore_report(result))
