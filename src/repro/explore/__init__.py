"""Evolutionary design-space exploration over the ParaDox config space.

The paper hand-picks its configuration — 16 checkers, AIMD constants,
checkpoint-length policy, the voltage floor — yet its central claim is
a multi-objective trade-off over exactly that space.  This package
searches it (``repro explore``):

* :mod:`repro.explore.genome` — the gene table (every knob, range, and
  paper default), content-addressed genome keys, and the seeded
  crossover/mutation operators.
* :mod:`repro.explore.archive` — NSGA-II machinery: fast non-dominated
  sorting, crowding distance, survivor selection, exact 3-D
  hypervolume.
* :mod:`repro.explore.fitness` — campaign records → the (energy,
  slowdown, failure-rate) objective vector, via the power model and the
  six-outcome taxonomy.
* :mod:`repro.explore.loop` — the deterministic generation loop; each
  genome is scored by a small campaign through the ``repro.parallel``
  fan-out and persisted in the PR 8 store, so re-encounters are store
  hits and interrupted searches resume generation-exactly.
* :mod:`repro.explore.report` — the canonical JSON Pareto report and
  the self-contained HTML page (front scatter, hypervolume trend,
  per-genome drill-down).

See ``docs/EXPLORE.md`` for the encoding table, the fitness formulas,
and a worked end-to-end example.
"""

from .archive import (
    crowding_distances,
    dominates,
    hypervolume,
    non_dominated_sort,
    pareto_front_indices,
    select_survivors,
)
from .fitness import (
    HYPERVOLUME_REFERENCE,
    OBJECTIVE_NAMES,
    PENALTY,
    baseline_wall_ns,
    objective_vector,
    objectives_from_records,
)
from .genome import (
    GENES,
    GENOME_IDENTITY,
    Gene,
    Genome,
    crossover,
    genome_key,
    mutate,
    paper_default_genome,
    random_genome,
    repair,
)
from .loop import (
    EXPLORE_IDENTITY,
    Evaluation,
    ExploreResult,
    ExploreSpec,
    explore_key,
    run_explore,
)
from .report import render_explore_report, write_explore_report, write_report_json

__all__ = [
    "EXPLORE_IDENTITY",
    "Evaluation",
    "ExploreResult",
    "ExploreSpec",
    "GENES",
    "GENOME_IDENTITY",
    "Gene",
    "Genome",
    "HYPERVOLUME_REFERENCE",
    "OBJECTIVE_NAMES",
    "PENALTY",
    "baseline_wall_ns",
    "crossover",
    "crowding_distances",
    "dominates",
    "explore_key",
    "genome_key",
    "hypervolume",
    "mutate",
    "non_dominated_sort",
    "objective_vector",
    "objectives_from_records",
    "paper_default_genome",
    "pareto_front_indices",
    "random_genome",
    "render_explore_report",
    "repair",
    "run_explore",
    "select_survivors",
    "write_explore_report",
    "write_report_json",
]
