"""Multi-objective fitness: campaign records → an objective vector.

Three objectives, all **minimised** (see ``docs/EXPLORE.md`` for the
derivation and worked numbers):

``energy``
    Relative energy of the protected, undervolted system against the
    margined baseline: ``(P_main(V_mean) + P_checkers(wake rates)) *
    slowdown``, averaged over the runs that completed correctly.
    ``P_main`` follows the paper's section VI-E model (V^2 f dynamic
    plus static leakage, frequency scaling as ``V - V_th``); the
    checker pool adds its gated wake-rate-scaled share of the "never
    more than 5%" bound.  1.0 is the margined baseline; below 1.0 the
    genome is saving energy net of its slowdown.

``slowdown``
    Simulated wall time relative to the fault-free, checker-less
    baseline run of the same workload (cached per workload × scale —
    the baseline does not depend on the genome).

``failure_rate``
    Fraction of the campaign's runs that lost forward progress or
    correctness: the ``sdc`` + ``hang`` + ``crash`` share of the
    six-outcome taxonomy.

Runs that failed are excluded from the energy/slowdown means (their
wall clock is a watchdog artefact, not a measurement); a genome whose
every run failed gets the explicit :data:`PENALTY` vector so dominance
comparisons still order it behind anything that worked at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..power.model import (
    OperatingPoint,
    checker_pool_power,
    frequency_for_voltage,
    main_core_power,
)
from ..resilience.campaign import RunClass, RunRecord

#: Objective vector order (and the JSON report's key order).
OBJECTIVE_NAMES: Tuple[str, str, str] = ("energy", "slowdown", "failure_rate")

#: Assigned when a genome has no successful run to measure: strictly
#: worse than any physical measurement, so wholly-failing genomes are
#: dominated by anything that completes.
PENALTY: Dict[str, float] = {"energy": 8.0, "slowdown": 16.0, "failure_rate": 1.0}

#: Hypervolume reference point, in OBJECTIVE_NAMES order.  Slightly
#: beyond the penalty vector so even an all-penalty front has volume
#: and the generation trend is monotone non-decreasing from zero.
HYPERVOLUME_REFERENCE: Tuple[float, float, float] = (10.0, 20.0, 1.25)

_FAILED = frozenset({RunClass.SDC, RunClass.HANG, RunClass.CRASH})

_baseline_cache: Dict[Tuple[str, float], float] = {}


def baseline_wall_ns(workload_name: str, scale: float) -> float:
    """Fault-free baseline wall time for one workload, cached per process.

    The baseline is genome-independent (no checkers, no injection, no
    DVS), so one run per (workload, scale) serves the whole search.
    """
    key = (workload_name, float(scale))
    if key not in _baseline_cache:
        from ..cli import resolve_workload
        from ..core import BaselineSystem

        workload = resolve_workload(workload_name, float(scale))
        result = BaselineSystem().run(workload, seed=0)
        _baseline_cache[key] = float(result.wall_ns)
    return _baseline_cache[key]


def objectives_from_records(
    records: Iterable[RunRecord], *, scale: float, nominal_voltage: float = 1.1
) -> Dict[str, float]:
    """Fold one genome's campaign records into its objective dict."""
    records = list(records)
    if not records:
        return dict(PENALTY)
    baseline = baseline_wall_ns(records[0].workload, float(scale))
    completed = [r for r in records if r.run_class not in _FAILED]
    failure_rate = 1.0 - len(completed) / len(records)
    if not completed:
        return {
            "energy": PENALTY["energy"],
            "slowdown": PENALTY["slowdown"],
            "failure_rate": round(failure_rate, 9),
        }
    slowdowns: List[float] = []
    energies: List[float] = []
    for record in completed:
        slowdown = record.wall_ns / baseline
        slowdowns.append(slowdown)
        voltage = float(record.mean_voltage)
        if voltage <= 0.0:
            # Pre-overrides records (or non-DVS runs) carry no voltage;
            # charge the nominal point, i.e. no undervolt saving.
            voltage = nominal_voltage
        nominal = OperatingPoint(nominal_voltage, 1.0)
        point = OperatingPoint(
            voltage, frequency_for_voltage(voltage, nominal_voltage, 1.0)
        )
        power = main_core_power(point, nominal) + checker_pool_power(
            record.wake_rates, gated=True
        )
        energies.append(power * slowdown)
    # round() pins the JSON text: the means are sums of platform-stable
    # float reprs in deterministic (run-id) order, but 9 digits is both
    # far beyond measurement meaning and immune to repr jitter.
    return {
        "energy": round(sum(energies) / len(energies), 9),
        "slowdown": round(sum(slowdowns) / len(slowdowns), 9),
        "failure_rate": round(failure_rate, 9),
    }


def objective_vector(objectives: Dict[str, float]) -> Tuple[float, ...]:
    """The dict as a tuple in :data:`OBJECTIVE_NAMES` order."""
    return tuple(float(objectives[name]) for name in OBJECTIVE_NAMES)
