"""Multi-objective machinery: non-dominated sorting, crowding, hypervolume.

Everything here treats an objective vector as a tuple to **minimise**
(the fitness layer already negates "bigger is better" quantities).  The
functions are deliberately pure and container-free so they unit-test on
toy points; :mod:`repro.explore.loop` owns the genome bookkeeping.

Tie-breaking is everywhere explicit and content-addressed (sort keys end
with the genome key), because the selection pressure these functions
produce feeds a byte-identity guarantee: two runs of the same seeded
search must pick the *same* survivors, not merely equally good ones.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Objectives = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is at least as good everywhere and better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def non_dominated_sort(points: Sequence[Sequence[float]]) -> List[List[int]]:
    """Fast non-dominated sort (Deb et al.): indices grouped into fronts.

    Front 0 is the Pareto front; each later front is the Pareto front of
    what remains.  O(M N^2) — fine for population-scale N.
    """
    n = len(points)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(points[j], points[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(sorted(next_front))
    fronts.pop()  # the loop always leaves one empty trailing front
    return fronts


def crowding_distances(points: Sequence[Sequence[float]]) -> List[float]:
    """Crowding distance of each point within its (single) front.

    Boundary points get ``inf`` so selection always keeps the extremes;
    interior points get the normalised side length sum of the cuboid
    their neighbours span.
    """
    n = len(points)
    if n == 0:
        return []
    if n <= 2:
        return [math.inf] * n
    m = len(points[0])
    distance = [0.0] * n
    for axis in range(m):
        order = sorted(range(n), key=lambda i: (points[i][axis], i))
        low = points[order[0]][axis]
        high = points[order[-1]][axis]
        distance[order[0]] = math.inf
        distance[order[-1]] = math.inf
        span = high - low
        if span <= 0.0:
            continue
        for rank in range(1, n - 1):
            i = order[rank]
            if math.isinf(distance[i]):
                continue
            gap = points[order[rank + 1]][axis] - points[order[rank - 1]][axis]
            distance[i] += gap / span
    return distance


def pareto_front_indices(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points, ascending."""
    if not points:
        return []
    return sorted(non_dominated_sort(points)[0])


def _hv2d(points: Sequence[Tuple[float, float]], ref: Tuple[float, float]) -> float:
    """Area dominated by 2-D minimisation points within the ref box."""
    area = 0.0
    bound = ref[1]
    for y, z in sorted(set(points)):
        if z < bound:
            area += (ref[0] - y) * (bound - z)
            bound = z
    return area


def hypervolume(
    points: Sequence[Sequence[float]], ref: Sequence[float]
) -> float:
    """Exact hypervolume dominated by 3-D minimisation ``points`` vs ``ref``.

    Slicing along the first objective: between consecutive distinct
    x-values, the dominated cross-section is the 2-D hypervolume of the
    points at or below that slab.  Points outside the reference box are
    clipped to it (a point worse than the reference on every axis
    contributes nothing).  O(N^2 log N); populations are small.
    """
    if len(ref) != 3:
        raise ValueError(f"hypervolume expects 3 objectives, got {len(ref)}")
    clipped = [
        tuple(min(float(p[k]), float(ref[k])) for k in range(3))
        for p in points
        if all(float(p[k]) < float(ref[k]) for k in range(3))
    ]
    if not clipped:
        return 0.0
    xs = sorted({p[0] for p in clipped})
    volume = 0.0
    for index, x in enumerate(xs):
        next_x = xs[index + 1] if index + 1 < len(xs) else float(ref[0])
        slab = next_x - x
        if slab <= 0.0:
            continue
        cross = [(p[1], p[2]) for p in clipped if p[0] <= x]
        volume += slab * _hv2d(cross, (float(ref[1]), float(ref[2])))
    return volume


def select_survivors(
    keys: Sequence[str],
    objectives: Dict[str, Objectives],
    count: int,
) -> List[str]:
    """NSGA-II survivor selection: best ``count`` keys by (rank, crowding).

    Ties inside a front break on crowding distance (descending), then on
    the genome key — the content-addressed tiebreak that keeps selection
    a pure function of the candidate set.
    """
    unique = sorted(set(keys))
    points = [objectives[key] for key in unique]
    survivors: List[str] = []
    for front in non_dominated_sort(points):
        front_keys = [unique[i] for i in front]
        front_points = [points[i] for i in front]
        crowding = crowding_distances(front_points)
        ranked = sorted(
            range(len(front_keys)),
            key=lambda i: (-crowding[i], front_keys[i]),
        )
        for i in ranked:
            if len(survivors) >= count:
                return survivors
            survivors.append(front_keys[i])
    return survivors
