"""Error-injection framework (section V-A of the paper)."""

from .arrival import GeometricArrival, MIN_RATE
from .injector import DEFAULT_MODEL_KINDS, FaultInjector, InjectionStats, default_injector
from .models import (
    BurstFaultModel,
    FaultDomain,
    FaultModel,
    FunctionalUnitFaultModel,
    MemoryFaultModel,
    RegisterFaultModel,
    StuckAtFaultModel,
)
from .sram import (
    GENERATION_MODES,
    ChipFaultMap,
    SramFaultModel,
    SramMapConfig,
    SramStructure,
    StructureMap,
    WeakCell,
    generate_chip_map,
    sram_injector,
)
from .voltage_model import VoltageErrorModel

__all__ = [
    "BurstFaultModel",
    "ChipFaultMap",
    "DEFAULT_MODEL_KINDS",
    "FaultDomain",
    "FaultInjector",
    "FaultModel",
    "FunctionalUnitFaultModel",
    "GENERATION_MODES",
    "GeometricArrival",
    "InjectionStats",
    "MIN_RATE",
    "MemoryFaultModel",
    "RegisterFaultModel",
    "SramFaultModel",
    "SramMapConfig",
    "SramStructure",
    "StructureMap",
    "StuckAtFaultModel",
    "VoltageErrorModel",
    "WeakCell",
    "default_injector",
    "generate_chip_map",
    "sram_injector",
]
