"""Error-injection framework (section V-A of the paper)."""

from .arrival import GeometricArrival, MIN_RATE
from .injector import DEFAULT_MODEL_KINDS, FaultInjector, InjectionStats, default_injector
from .models import (
    BurstFaultModel,
    FaultDomain,
    FaultModel,
    FunctionalUnitFaultModel,
    MemoryFaultModel,
    RegisterFaultModel,
    StuckAtFaultModel,
)
from .voltage_model import VoltageErrorModel

__all__ = [
    "BurstFaultModel",
    "DEFAULT_MODEL_KINDS",
    "FaultDomain",
    "FaultInjector",
    "FaultModel",
    "FunctionalUnitFaultModel",
    "GeometricArrival",
    "InjectionStats",
    "MIN_RATE",
    "MemoryFaultModel",
    "RegisterFaultModel",
    "StuckAtFaultModel",
    "VoltageErrorModel",
    "default_injector",
]
