"""Error-injection framework (section V-A of the paper)."""

from .arrival import GeometricArrival, MIN_RATE
from .injector import FaultInjector, InjectionStats, default_injector
from .models import (
    FaultDomain,
    FaultModel,
    FunctionalUnitFaultModel,
    MemoryFaultModel,
    RegisterFaultModel,
)
from .voltage_model import VoltageErrorModel

__all__ = [
    "FaultDomain",
    "FaultInjector",
    "FaultModel",
    "FunctionalUnitFaultModel",
    "GeometricArrival",
    "InjectionStats",
    "MIN_RATE",
    "MemoryFaultModel",
    "RegisterFaultModel",
    "VoltageErrorModel",
    "default_injector",
]
