"""Fault models (section V-A, extended with permanent/intermittent faults).

The paper injects errors "in three ways, to approximate the wide variety
of possible faults that can happen in hardware":

* **Memory faults** — flip one bit of the data carried by a memory
  operation in the load-store log; gaps count targeted operations
  (either only loads or only stores).
* **Combinational (functional-unit) faults** — a defective unit corrupts
  the registers modified by instructions that use it; instructions that
  touch no register inject nothing.
* **Register faults** of unknown origin — flip a single random bit in a
  random register of a targeted category (integers, floats, flags, or
  miscellaneous); gaps count executed instructions.

Each model owns a :class:`~repro.faults.arrival.GeometricArrival` in its
domain and knows how to corrupt checker state when it fires.

Beyond the paper's transient Bernoulli faults, the resilience layer adds
the failure modes that dominate real near-threshold operation:

* :class:`StuckAtFaultModel` — a *permanent* stuck-at bit in a functional
  unit's result path.  It fires on every affected instruction regardless
  of voltage, so rollback-and-retry alone can never clear it; only
  checker quarantine (for a checker-local defect) or a typed
  forward-progress failure resolves the run.
* :class:`BurstFaultModel` — *intermittent* Gilbert–Elliott bursts: a
  two-state Markov chain alternating between a quiet good state and an
  error-dense bad state, modelling voltage droops, temperature transients
  and marginal cells.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

import numpy as np

from ..isa import FunctionalUnit, StepInfo
from ..isa.registers import NUM_FP_REGS, NUM_INT_REGS, RegisterCategory
from ..isa.state import ArchState
from .arrival import GeometricArrival


class FaultDomain(enum.Enum):
    """What the geometric gap counts."""

    INSTRUCTIONS = "instructions"
    UNIT_INSTRUCTIONS = "unit instructions"
    LOADS = "loads"
    STORES = "stores"


class FaultModel:
    """Base class: a geometric arrival plus a corruption action."""

    domain: FaultDomain
    #: Permanent defects survive voltage escalation; the forward-progress
    #: guard names them in its failure diagnostics.
    persistent: bool = False

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rng = rng
        self.arrival = GeometricArrival(rate, rng)
        #: When set, the model only fires while the named checker core is
        #: replaying — a core-local hardware defect.  None = any core.
        self.bound_checker_id: Optional[int] = None

    @property
    def rate(self) -> float:
        return self.arrival.rate

    def set_rate(self, rate: float) -> None:
        self.arrival.set_rate(rate)

    def on_voltage(self, voltage: float) -> bool:
        """React to a supply-voltage change; True if behaviour changed.

        Transient models follow the voltage through ``set_rate`` (the
        voltage→rate curve); map-based models (:class:`~repro.faults.
        sram.SramFaultModel`) instead re-threshold their bit-cell map
        here.  The default is a no-op.
        """
        return False

    def describe(self) -> str:
        """Human-readable identity, used in failure diagnostics."""
        return type(self).__name__

    def describe_last_fire(self) -> Optional[str]:
        """Optional per-fire detail (cell coordinates...) for telemetry."""
        return None

    # -- fast-path support ------------------------------------------------------
    def may_fire_within(self, count: int) -> bool:
        """Could this model fire within the next ``count`` domain operations?"""
        return self.arrival.fires_within(count)

    def may_fire_in_segment(self, segment, count: int) -> bool:
        """Segment-aware fast-path veto.

        Address-correlated models override this to inspect the actual
        rows/addresses the replay would touch; everything else falls
        back to the count-only check.  Returning False asserts the
        replay *cannot* fault and may be skipped.
        """
        return self.may_fire_within(count)

    def advance_clean(self, count: int) -> None:
        """Consume ``count`` operations known (by the caller) to be clean."""
        fired = self.arrival.advance(count)
        if fired is not None:  # pragma: no cover - guarded by caller
            raise RuntimeError("advance_clean consumed a firing arrival")

    # Subclasses implement the hooks relevant to their domain; the rest
    # stay no-ops so an injector can drive a heterogeneous model list.
    def begin_check(
        self, core_id: Optional[int], segment=None
    ) -> None:
        """Called before a segment is replayed (or skipped); ``core_id``
        is the replaying checker, None when the check window closes."""

    def on_instruction(self, state: ArchState, info: StepInfo) -> bool:
        """Called after each executed instruction; True if a fault fired."""
        return False

    def on_load(self, value: int) -> "tuple[int, bool]":
        """Map a replayed load value; True if corrupted."""
        return value, False

    def on_store(self, value: int) -> "tuple[int, bool]":
        """Map a replayed store reference value; True if corrupted."""
        return value, False

    def on_load_at(
        self, op_index: int, address: int, value: int
    ) -> "tuple[int, bool]":
        """Address-aware load hook; defaults to the value-only hook."""
        return self.on_load(value)

    def on_store_at(
        self, op_index: int, address: int, value: int
    ) -> "tuple[int, bool]":
        """Address-aware store hook; defaults to the value-only hook."""
        return self.on_store(value)


class RegisterFaultModel(FaultModel):
    """Random single-bit flip in a register of the targeted category."""

    domain = FaultDomain.INSTRUCTIONS

    #: Candidate categories when none is pinned, weighted roughly by the
    #: amount of state in each.
    _CATEGORIES: Sequence[RegisterCategory] = (
        RegisterCategory.INT,
        RegisterCategory.FLOAT,
        RegisterCategory.FLAGS,
        RegisterCategory.MISC,
    )
    _WEIGHTS = np.array([NUM_INT_REGS * 64, NUM_FP_REGS * 64, 4, 16], dtype=float)

    def __init__(
        self,
        rate: float,
        rng: np.random.Generator,
        category: Optional[RegisterCategory] = None,
    ) -> None:
        super().__init__(rate, rng)
        self.category = category

    def _pick_category(self) -> RegisterCategory:
        if self.category is not None:
            return self.category
        weights = self._WEIGHTS / self._WEIGHTS.sum()
        return self._CATEGORIES[int(self.rng.choice(len(self._CATEGORIES), p=weights))]

    def on_instruction(self, state: ArchState, info: StepInfo) -> bool:
        if not self.arrival.step():
            return False
        category = self._pick_category()
        if category is RegisterCategory.INT:
            index = int(self.rng.integers(NUM_INT_REGS))
        elif category is RegisterCategory.FLOAT:
            index = int(self.rng.integers(NUM_FP_REGS))
        else:
            index = 0
        bit = int(self.rng.integers(64))
        state.flip_bit(category, index, bit)
        return True


class FunctionalUnitFaultModel(FaultModel):
    """A defective functional unit corrupts its destination registers."""

    domain = FaultDomain.UNIT_INSTRUCTIONS

    def __init__(
        self, rate: float, rng: np.random.Generator, unit: FunctionalUnit
    ) -> None:
        super().__init__(rate, rng)
        self.unit = unit

    def on_instruction(self, state: ArchState, info: StepInfo) -> bool:
        if info.instruction.unit is not self.unit:
            return False
        if info.dest is None:
            # "An instruction that has no effect is indistinguishable from
            # a discarded instruction: no error is injected."
            return False
        if not self.arrival.step():
            return False
        reg_file, index = info.dest
        bit = int(self.rng.integers(64))
        if reg_file == "x":
            state.regs.flip_bit(RegisterCategory.INT, index, bit)
        elif reg_file == "f":
            state.regs.flip_bit(RegisterCategory.FLOAT, index, bit)
        else:
            state.regs.flip_bit(RegisterCategory.FLAGS, 0, bit)
        return True


class MemoryFaultModel(FaultModel):
    """Single-bit flip in the data carried by a logged memory operation."""

    def __init__(
        self, rate: float, rng: np.random.Generator, target: str = "load"
    ) -> None:
        if target not in ("load", "store"):
            raise ValueError(f"target must be 'load' or 'store', got {target!r}")
        super().__init__(rate, rng)
        self.target = target
        self.domain = FaultDomain.LOADS if target == "load" else FaultDomain.STORES

    def on_load(self, value: int) -> "tuple[int, bool]":
        if self.target != "load" or not self.arrival.step():
            return value, False
        return value ^ (1 << int(self.rng.integers(64))), True

    def on_store(self, value: int) -> "tuple[int, bool]":
        if self.target != "store" or not self.arrival.step():
            return value, False
        return value ^ (1 << int(self.rng.integers(64))), True


class StuckAtFaultModel(FaultModel):
    """A permanent stuck-at bit in a functional unit's result path.

    Every instruction executed on ``unit`` that writes a register has the
    targeted bit of its destination forced to ``stuck_value``.  The fault
    is *voltage-independent*: raising the supply toward the safe point
    cannot clear it, which is exactly what distinguishes a permanent
    defect from the paper's transient undervolting errors.  Bind it to a
    checker core (``bound_checker_id``) to model a defective checker that
    the health tracker should quarantine; leave it unbound to model a
    pervasive defect that only a forward-progress failure can surface.
    """

    domain = FaultDomain.UNIT_INSTRUCTIONS
    persistent = True

    def __init__(
        self,
        rng: np.random.Generator,
        unit: FunctionalUnit = FunctionalUnit.INT_ALU,
        bit: int = 0,
        stuck_value: int = 1,
        bound_checker_id: Optional[int] = None,
    ) -> None:
        if stuck_value not in (0, 1):
            raise ValueError(f"stuck_value must be 0 or 1, got {stuck_value}")
        # Rate 0: the geometric arrival never drives this model; firing is
        # deterministic per affected instruction.
        super().__init__(0.0, rng)
        self.unit = unit
        self.bit = int(bit) % 64
        self.stuck_value = stuck_value
        self.bound_checker_id = bound_checker_id

    def describe(self) -> str:
        where = (
            f"checker {self.bound_checker_id}"
            if self.bound_checker_id is not None
            else "all cores"
        )
        return (
            f"stuck-at-{self.stuck_value} bit {self.bit} of "
            f"{self.unit.value} ({where})"
        )

    def set_rate(self, rate: float) -> None:
        """Permanent defects do not follow the voltage-dependent rate."""

    def may_fire_within(self, count: int) -> bool:
        return count > 0

    def advance_clean(self, count: int) -> None:
        """A skipped segment has no affected instructions; nothing to do."""

    def on_instruction(self, state: ArchState, info: StepInfo) -> bool:
        if info.instruction.unit is not self.unit or info.dest is None:
            return False
        reg_file, index = info.dest
        mask = 1 << self.bit
        if reg_file == "x":
            if index == 0:
                return False  # x0 is hard-wired; the flip lands nowhere
            value = state.regs.read_x(index)
            forced = (value | mask) if self.stuck_value else (value & ~mask)
            if forced == value:
                return False  # the bit already held the stuck value: masked
            state.regs.write_x(index, forced)
        elif reg_file == "f":
            value = state.regs.read_f_bits(index)
            forced = (value | mask) if self.stuck_value else (value & ~mask)
            if forced == value:
                return False
            state.regs.write_f_bits(index, forced)
        else:
            mask = 1 << (self.bit % 4)
            value = state.regs.flags
            forced = (value | mask) if self.stuck_value else (value & ~mask)
            if forced == value:
                return False
            state.regs.flags = forced
        return True


class BurstFaultModel(FaultModel):
    """Gilbert–Elliott intermittent bursts of register corruption.

    A two-state Markov chain advances one step per executed instruction:
    in the *good* state nothing fires and each step enters the *bad*
    state with probability ``rate * entry_scale``; in the bad state each
    instruction faults with probability ``burst_rate`` (a single-bit flip
    in the destination register, or a random register when the
    instruction writes none) and the burst ends with probability
    ``1 / mean_burst_ops``.  ``set_rate`` keeps the entry probability
    coupled to the voltage-dependent base rate, so escalating the supply
    voltage makes new bursts (but not an in-flight one) vanishingly rare.
    """

    domain = FaultDomain.INSTRUCTIONS

    def __init__(
        self,
        rate: float,
        rng: np.random.Generator,
        burst_rate: float = 0.05,
        mean_burst_ops: float = 400.0,
        entry_scale: float = 10.0,
    ) -> None:
        super().__init__(0.0, rng)  # the arrival process is unused
        if not 0 <= burst_rate <= 1:
            raise ValueError(f"burst_rate must be within [0, 1], got {burst_rate}")
        if mean_burst_ops <= 0:
            raise ValueError("mean_burst_ops must be positive")
        self.burst_rate = float(burst_rate)
        self.exit_probability = min(1.0, 1.0 / float(mean_burst_ops))
        self.entry_scale = float(entry_scale)
        self._base_rate = float(rate)
        self.in_burst = False
        self.bursts_entered = 0

    @property
    def rate(self) -> float:
        return self._base_rate

    @property
    def entry_probability(self) -> float:
        return min(1.0, self._base_rate * self.entry_scale)

    def set_rate(self, rate: float) -> None:
        self._base_rate = float(rate)

    def describe(self) -> str:
        return (
            f"gilbert-elliott bursts (entry {self.entry_probability:.2e}, "
            f"burst rate {self.burst_rate:.2e})"
        )

    def may_fire_within(self, count: int) -> bool:
        if count <= 0:
            return False
        return self.in_burst or self.entry_probability > 0

    def advance_clean(self, count: int) -> None:
        """Only reachable when the model cannot fire at all; stay quiet."""

    def _step_chain(self) -> bool:
        """Advance one operation; True if this operation faults."""
        if self.in_burst:
            if self.rng.random() < self.burst_rate:
                fired = True
            else:
                fired = False
            if self.rng.random() < self.exit_probability:
                self.in_burst = False
            return fired
        if self.entry_probability > 0 and self.rng.random() < self.entry_probability:
            self.in_burst = True
            self.bursts_entered += 1
        return False

    def on_instruction(self, state: ArchState, info: StepInfo) -> bool:
        if not self._step_chain():
            return False
        bit = int(self.rng.integers(64))
        if info.dest is not None:
            reg_file, index = info.dest
            if reg_file == "x":
                state.regs.flip_bit(RegisterCategory.INT, index, bit)
            elif reg_file == "f":
                state.regs.flip_bit(RegisterCategory.FLOAT, index, bit)
            else:
                state.regs.flip_bit(RegisterCategory.FLAGS, 0, bit)
        else:
            index = int(self.rng.integers(NUM_INT_REGS))
            state.regs.flip_bit(RegisterCategory.INT, index, bit)
        return True
