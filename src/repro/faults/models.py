"""Fault models (section V-A).

The paper injects errors "in three ways, to approximate the wide variety
of possible faults that can happen in hardware":

* **Memory faults** — flip one bit of the data carried by a memory
  operation in the load-store log; gaps count targeted operations
  (either only loads or only stores).
* **Combinational (functional-unit) faults** — a defective unit corrupts
  the registers modified by instructions that use it; instructions that
  touch no register inject nothing.
* **Register faults** of unknown origin — flip a single random bit in a
  random register of a targeted category (integers, floats, flags, or
  miscellaneous); gaps count executed instructions.

Each model owns a :class:`~repro.faults.arrival.GeometricArrival` in its
domain and knows how to corrupt checker state when it fires.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

import numpy as np

from ..isa import FunctionalUnit, StepInfo
from ..isa.registers import NUM_FP_REGS, NUM_INT_REGS, RegisterCategory
from ..isa.state import ArchState
from .arrival import GeometricArrival


class FaultDomain(enum.Enum):
    """What the geometric gap counts."""

    INSTRUCTIONS = "instructions"
    UNIT_INSTRUCTIONS = "unit instructions"
    LOADS = "loads"
    STORES = "stores"


class FaultModel:
    """Base class: a geometric arrival plus a corruption action."""

    domain: FaultDomain

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rng = rng
        self.arrival = GeometricArrival(rate, rng)

    @property
    def rate(self) -> float:
        return self.arrival.rate

    def set_rate(self, rate: float) -> None:
        self.arrival.set_rate(rate)

    # Subclasses implement the hooks relevant to their domain; the rest
    # stay no-ops so an injector can drive a heterogeneous model list.
    def on_instruction(self, state: ArchState, info: StepInfo) -> bool:
        """Called after each executed instruction; True if a fault fired."""
        return False

    def on_load(self, value: int) -> "tuple[int, bool]":
        """Map a replayed load value; True if corrupted."""
        return value, False

    def on_store(self, value: int) -> "tuple[int, bool]":
        """Map a replayed store reference value; True if corrupted."""
        return value, False


class RegisterFaultModel(FaultModel):
    """Random single-bit flip in a register of the targeted category."""

    domain = FaultDomain.INSTRUCTIONS

    #: Candidate categories when none is pinned, weighted roughly by the
    #: amount of state in each.
    _CATEGORIES: Sequence[RegisterCategory] = (
        RegisterCategory.INT,
        RegisterCategory.FLOAT,
        RegisterCategory.FLAGS,
        RegisterCategory.MISC,
    )
    _WEIGHTS = np.array([NUM_INT_REGS * 64, NUM_FP_REGS * 64, 4, 16], dtype=float)

    def __init__(
        self,
        rate: float,
        rng: np.random.Generator,
        category: Optional[RegisterCategory] = None,
    ) -> None:
        super().__init__(rate, rng)
        self.category = category

    def _pick_category(self) -> RegisterCategory:
        if self.category is not None:
            return self.category
        weights = self._WEIGHTS / self._WEIGHTS.sum()
        return self._CATEGORIES[int(self.rng.choice(len(self._CATEGORIES), p=weights))]

    def on_instruction(self, state: ArchState, info: StepInfo) -> bool:
        if not self.arrival.step():
            return False
        category = self._pick_category()
        if category is RegisterCategory.INT:
            index = int(self.rng.integers(NUM_INT_REGS))
        elif category is RegisterCategory.FLOAT:
            index = int(self.rng.integers(NUM_FP_REGS))
        else:
            index = 0
        bit = int(self.rng.integers(64))
        state.flip_bit(category, index, bit)
        return True


class FunctionalUnitFaultModel(FaultModel):
    """A defective functional unit corrupts its destination registers."""

    domain = FaultDomain.UNIT_INSTRUCTIONS

    def __init__(
        self, rate: float, rng: np.random.Generator, unit: FunctionalUnit
    ) -> None:
        super().__init__(rate, rng)
        self.unit = unit

    def on_instruction(self, state: ArchState, info: StepInfo) -> bool:
        if info.instruction.unit is not self.unit:
            return False
        if info.dest is None:
            # "An instruction that has no effect is indistinguishable from
            # a discarded instruction: no error is injected."
            return False
        if not self.arrival.step():
            return False
        reg_file, index = info.dest
        bit = int(self.rng.integers(64))
        if reg_file == "x":
            state.regs.flip_bit(RegisterCategory.INT, index, bit)
        elif reg_file == "f":
            state.regs.flip_bit(RegisterCategory.FLOAT, index, bit)
        else:
            state.regs.flip_bit(RegisterCategory.FLAGS, 0, bit)
        return True


class MemoryFaultModel(FaultModel):
    """Single-bit flip in the data carried by a logged memory operation."""

    def __init__(
        self, rate: float, rng: np.random.Generator, target: str = "load"
    ) -> None:
        if target not in ("load", "store"):
            raise ValueError(f"target must be 'load' or 'store', got {target!r}")
        super().__init__(rate, rng)
        self.target = target
        self.domain = FaultDomain.LOADS if target == "load" else FaultDomain.STORES

    def on_load(self, value: int) -> "tuple[int, bool]":
        if self.target != "load" or not self.arrival.step():
            return value, False
        return value ^ (1 << int(self.rng.integers(64))), True

    def on_store(self, value: int) -> "tuple[int, bool]":
        if self.target != "store" or not self.arrival.step():
            return value, False
        return value ^ (1 << int(self.rng.integers(64))), True
