"""Per-chip, spatially correlated SRAM bit-cell fault maps.

The paper's injection framework (section V-A, :mod:`repro.faults.models`)
draws *memoryless* geometric arrivals: every targeted operation faults
independently with one global probability.  Measured reduced-voltage
SRAM behaves nothing like that.  MoRS (arXiv 2110.05855) and Soyturk et
al. (arXiv 1912.00154) characterise real chips below Vmin and find
per-bit failures that are

* **persistent** — the same cell fails on every access at the same
  voltage, run after run;
* **spatially clustered** — weak cells bunch along rows and columns
  (shared wordline/bitline weaknesses), not uniformly;
* **chip-dependent** — process variation gives every die its own map
  and its own effective Vmin.

This module supplies that topology for the three structures ParaDox
exposes to reduced voltage: the checker cores' register files, the
load-store log SRAM, and the L1 data-cache data array.

A *chip* is a seeded sample from the process-variation model:
:func:`generate_chip_map` expands a ``chip_seed`` into one
:class:`ChipFaultMap` holding every weak cell with its per-cell minimum
functional voltage (Vmin).  Generation modes:

* ``"mors"`` — MoRS-style: a configurable fraction of weak cells lie in
  row/column runs sharing a cluster id and a correlated Vmin; the rest
  are isolated background cells.
* ``"uniform"`` — ablation baseline: the same expected cell count and
  Vmin distribution, but positions drawn uniformly with no clustering.

:class:`SramFaultModel` consumes the map plus the *current supply
voltage*: a weak cell is **active** exactly when the supply is below its
Vmin, so a DVFS voltage change is a map **re-thresholding**, not a rate
change.  All randomness is spent at map-generation time; whether a read
corrupts — and which bits flip — is afterwards a pure function of the
touched address and the voltage.  Faults are therefore persistent and
address-correlated: the same access pattern at the same voltage fails
identically on every run, every retry, and every ``--jobs`` width.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..isa import StepInfo
from ..isa.state import ArchState
from ..lslog.segment import LogSegment
from .models import FaultDomain, FaultModel

__all__ = [
    "GENERATION_MODES",
    "ChipFaultMap",
    "SramFaultModel",
    "SramMapConfig",
    "SramStructure",
    "StructureMap",
    "WeakCell",
    "generate_chip_map",
    "sram_injector",
]

#: Supported map-generation modes (see module docstring).
GENERATION_MODES = ("mors", "uniform")


class SramStructure(enum.Enum):
    """Undervolted SRAM arrays the paper exposes to reduced voltage."""

    #: Per-checker architectural register file: 32 int + 32 fp rows of
    #: 64 bits.  A weak cell corrupts the destination register of every
    #: instruction that writes its row while the cell is active.
    CHECKER_REGFILE = "regfile"
    #: Per-checker load-store log slice (6 KiB = 768 words).  Loads fill
    #: value words from the bottom (word ``2i + 1`` for load ``i``),
    #: stores from the top (word ``capacity - 2 - 2j`` for store ``j``);
    #: address words are compared, not forwarded, so only value-word
    #: cells corrupt data.
    LOAD_STORE_LOG = "lslog"
    #: Shared L1 data array, direct line-indexed by memory address.
    CACHE_DATA = "cache"


#: Stable per-structure stream index: seeds the per-instance RNG so maps
#: are independent across structures and order-independent to generate.
_STRUCT_STREAM: Dict[SramStructure, int] = {
    SramStructure.CHECKER_REGFILE: 1,
    SramStructure.LOAD_STORE_LOG: 2,
    SramStructure.CACHE_DATA: 3,
}


@dataclass(frozen=True)
class WeakCell:
    """One marginal bit cell."""

    row: int
    col: int
    #: Minimum functional supply voltage: the cell reads wrong whenever
    #: the supply drops strictly below this.
    vmin: float
    #: MoRS cluster the cell belongs to (0 = isolated background cell).
    cluster: int


@dataclass(frozen=True)
class SramMapConfig:
    """Process-variation parameters of the map generator."""

    # -- geometries (defaults match the table-1 system configuration) --
    regfile_rows: int = 64
    regfile_cols: int = 64
    #: 6 KiB per-checker log slice / 8-byte words.
    log_words: int = 768
    #: 32 KiB L1D / 64-byte lines.
    cache_lines: int = 512
    cache_line_bits: int = 512
    #: Expected weak cells as a fraction of each instance's bit count.
    weak_cell_rate: float = 3e-4
    #: Population mean of the weak-cell Vmin distribution (volts); sits
    #: just above the transient model's error cliff so the two regimes
    #: overlap across the paper's sweep range.
    mean_vmin: float = 0.96
    #: Per-cell Vmin spread for isolated cells.
    sigma_cell: float = 0.02
    #: Chip-to-chip shift of the whole Vmin distribution (the chip-seed
    #: axis samples this).
    sigma_chip: float = 0.012
    #: Manufacturer screening: cells with Vmin above this were binned
    #: out at test, so every chip is clean at nominal voltage.
    vmin_cap: float = 1.02
    #: Fraction of weak cells placed in row/column clusters (mors mode).
    cluster_fraction: float = 0.7
    #: Mean run length of a cluster along its row/column.
    mean_cluster_len: float = 6.0
    #: Cluster-centre Vmin spread (clusters share a wordline/bitline
    #: weakness, so their cells are correlated).
    sigma_cluster: float = 0.015
    #: Within-cluster per-cell Vmin spread.
    sigma_within_cluster: float = 0.004


@dataclass(frozen=True)
class StructureMap:
    """Weak cells of one structure instance, sorted weakest-first."""

    structure: SramStructure
    instance: int
    rows: int
    cols: int
    cells: Tuple[WeakCell, ...]

    def failing_cells(self, voltage: float) -> List[WeakCell]:
        """Cells active (failing) at ``voltage``."""
        return [cell for cell in self.cells if voltage < cell.vmin]

    def failing_count(self, voltage: float) -> int:
        return sum(1 for cell in self.cells if voltage < cell.vmin)


@dataclass(frozen=True)
class ChipFaultMap:
    """One simulated die: every weak cell of every modelled structure."""

    chip_seed: int
    mode: str
    #: Chip-wide Vmin shift sampled from the process-variation model.
    chip_offset_v: float
    structures: Dict[Tuple[SramStructure, int], StructureMap] = field(
        default_factory=dict
    )

    @property
    def total_cells(self) -> int:
        return sum(len(m.cells) for m in self.structures.values())

    def failing_count(self, voltage: float) -> int:
        """Active weak cells across the whole chip at ``voltage``."""
        return sum(m.failing_count(voltage) for m in self.structures.values())

    def instances(self, structure: SramStructure) -> List[StructureMap]:
        return [
            m
            for (s, _inst), m in sorted(
                self.structures.items(), key=lambda kv: kv[0][1]
            )
            if s is structure
        ]


def _geometry(structure: SramStructure, config: SramMapConfig) -> Tuple[int, int]:
    if structure is SramStructure.CHECKER_REGFILE:
        return config.regfile_rows, config.regfile_cols
    if structure is SramStructure.LOAD_STORE_LOG:
        return config.log_words, 64
    return config.cache_lines, config.cache_line_bits


def _place(
    cells: Dict[Tuple[int, int], WeakCell],
    row: int,
    col: int,
    vmin: float,
    cluster: int,
    config: SramMapConfig,
) -> None:
    vmin = float(min(vmin, config.vmin_cap))
    existing = cells.get((row, col))
    # Overlapping draws collapse to one cell; the weakest wins.
    if existing is None or vmin > existing.vmin:
        cells[(row, col)] = WeakCell(row, col, vmin, cluster)


def _generate_structure(
    chip_seed: int,
    structure: SramStructure,
    instance: int,
    mode: str,
    config: SramMapConfig,
    chip_offset: float,
) -> StructureMap:
    rows, cols = _geometry(structure, config)
    rng = np.random.default_rng(
        [int(chip_seed), _STRUCT_STREAM[structure], int(instance)]
    )
    count = int(rng.poisson(rows * cols * config.weak_cell_rate))
    cells: Dict[Tuple[int, int], WeakCell] = {}
    mean = config.mean_vmin + chip_offset

    clustered = int(round(count * config.cluster_fraction)) if mode == "mors" else 0
    cluster_id = 0
    placed = 0
    while placed < clustered:
        cluster_id += 1
        along_row = bool(rng.integers(2))
        length = 1 + int(rng.geometric(1.0 / config.mean_cluster_len))
        base = mean + float(rng.normal(0.0, config.sigma_cluster))
        row = int(rng.integers(rows))
        col = int(rng.integers(cols))
        for k in range(length):
            if along_row:
                position = (row, (col + k) % cols)
            else:
                position = ((row + k) % rows, col)
            vmin = base + float(rng.normal(0.0, config.sigma_within_cluster))
            _place(cells, position[0], position[1], vmin, cluster_id, config)
            placed += 1
            if placed >= clustered:
                break
    for _ in range(count - placed):
        row = int(rng.integers(rows))
        col = int(rng.integers(cols))
        vmin = mean + float(rng.normal(0.0, config.sigma_cell))
        _place(cells, row, col, vmin, 0, config)

    ordered = tuple(
        sorted(cells.values(), key=lambda c: (-c.vmin, c.row, c.col))
    )
    return StructureMap(structure, instance, rows, cols, ordered)


def generate_chip_map(
    chip_seed: int,
    checkers: int = 16,
    mode: str = "mors",
    config: Optional[SramMapConfig] = None,
) -> ChipFaultMap:
    """Sample one simulated die from the process-variation model.

    The map is a pure function of ``(chip_seed, checkers, mode,
    config)``: regenerating it in another process yields bit-identical
    cells, which is what makes campaign runs reproducible at any
    ``--jobs`` width.
    """
    if mode not in GENERATION_MODES:
        raise ValueError(
            f"unknown generation mode {mode!r}; choose from {GENERATION_MODES}"
        )
    if chip_seed < 0:
        raise ValueError(f"chip_seed must be non-negative, got {chip_seed}")
    config = config if config is not None else SramMapConfig()
    chip_rng = np.random.default_rng([int(chip_seed), 0])
    chip_offset = float(chip_rng.normal(0.0, config.sigma_chip))
    structures: Dict[Tuple[SramStructure, int], StructureMap] = {}
    for instance in range(checkers):
        for structure in (
            SramStructure.CHECKER_REGFILE,
            SramStructure.LOAD_STORE_LOG,
        ):
            structures[(structure, instance)] = _generate_structure(
                chip_seed, structure, instance, mode, config, chip_offset
            )
    structures[(SramStructure.CACHE_DATA, 0)] = _generate_structure(
        chip_seed, SramStructure.CACHE_DATA, 0, mode, config, chip_offset
    )
    return ChipFaultMap(int(chip_seed), mode, chip_offset, structures)


#: instance -> row -> (xor mask over the 64-bit word, cells on the row).
_ActiveIndex = Dict[int, Dict[int, Tuple[int, Tuple[WeakCell, ...]]]]


class SramFaultModel(FaultModel):
    """Persistent, address-correlated faults from one chip's bit-cell map.

    One instance models one :class:`SramStructure` across all of the
    chip's per-checker copies; :func:`sram_injector` composes the full
    set.  The model is *deterministic at fire time*: it draws nothing
    from its RNG, so results cannot depend on process or scheduling
    interleavings.  ``set_rate`` is a no-op (the voltage→rate coupling
    of the transient models does not apply); the engine instead calls
    :meth:`on_voltage` whenever the DVFS controller moves the supply,
    which re-thresholds the map — cells with Vmin above the new supply
    become active, the rest heal.
    """

    persistent = True

    def __init__(
        self,
        chip_map: ChipFaultMap,
        structure: SramStructure,
        voltage: float = 1.1,
    ) -> None:
        # The arrival process is unused: rate 0, firing is a pure
        # function of map, address, and voltage.
        super().__init__(0.0, np.random.default_rng(chip_map.chip_seed))
        self.chip_map = chip_map
        self.structure = structure
        self.domain = (
            FaultDomain.INSTRUCTIONS
            if structure is SramStructure.CHECKER_REGFILE
            else FaultDomain.LOADS
        )
        self._maps: Dict[int, StructureMap] = {
            inst: m
            for (s, inst), m in chip_map.structures.items()
            if s is structure
        }
        self._instance: Optional[int] = (
            0 if structure is SramStructure.CACHE_DATA else None
        )
        self._voltage: Optional[float] = None
        self._active: _ActiveIndex = {}
        #: Active (failing) cells across all instances at the current
        #: voltage; 0 means the structure is fault-free right now.
        self.active_cell_count = 0
        #: Most recent firing cell, surfaced in telemetry details.
        self.last_fired_cell: Optional[WeakCell] = None
        self.on_voltage(voltage)

    # -- voltage thresholding ---------------------------------------------------
    @property
    def voltage(self) -> Optional[float]:
        return self._voltage

    def set_rate(self, rate: float) -> None:
        """Map-based faults follow the voltage, not the transient rate."""

    def on_voltage(self, voltage: float) -> bool:
        """Re-threshold the map against a new supply voltage."""
        voltage = float(voltage)
        if self._voltage is not None and voltage == self._voltage:
            return False
        self._voltage = voltage
        active: _ActiveIndex = {}
        count = 0
        for instance, smap in self._maps.items():
            failing = smap.failing_cells(voltage)
            if not failing:
                continue
            count += len(failing)
            by_row: Dict[int, List[WeakCell]] = {}
            for cell in failing:
                by_row.setdefault(cell.row, []).append(cell)
            active[instance] = {
                row: (
                    self._row_mask(row_cells),
                    tuple(row_cells),
                )
                for row, row_cells in by_row.items()
            }
        self._active = active
        self.active_cell_count = count
        return True

    def _row_mask(self, cells: List[WeakCell]) -> int:
        # Only meaningful for 64-bit-word structures; the cache data
        # array windows its 512-bit rows per access instead.
        if self.structure is SramStructure.CACHE_DATA:
            return 0
        mask = 0
        for cell in cells:
            mask |= 1 << cell.col
        return mask

    # -- injector plumbing ------------------------------------------------------
    def begin_check(
        self, core_id: Optional[int], segment: Optional[LogSegment] = None
    ) -> None:
        if self.structure is not SramStructure.CACHE_DATA:
            self._instance = core_id

    def may_fire_within(self, count: int) -> bool:
        # Conservative segment-blind fallback; the injector prefers the
        # precise may_fire_in_segment below.
        return count > 0 and self.active_cell_count > 0

    def may_fire_in_segment(self, segment: LogSegment, count: int) -> bool:
        """Exact fast-path veto: could any active cell touch this segment?

        Must never return False when a fault could fire during replay —
        the engine would skip the replay entirely.  The load-store log
        and cache checks are exact (they test the very rows/lines the
        replay will read); the register-file check is conservative (any
        register-writing instruction may land on a weak row).
        """
        if self.active_cell_count == 0:
            return False
        active = self._active.get(self._instance)  # type: ignore[arg-type]
        if not active:
            return False
        if self.structure is SramStructure.CHECKER_REGFILE:
            return sum(segment.unit_dest_histogram.values()) > 0
        if self.structure is SramStructure.LOAD_STORE_LOG:
            words = self._maps[self._instance].rows  # type: ignore[index]
            for row in active:
                if row % 2 == 1 and (row - 1) // 2 < segment.load_count:
                    return True  # load-lane value word in use
                if row % 2 == 0 and 0 <= words - 2 - row:
                    if (words - 2 - row) // 2 < segment.store_count:
                        return True  # store-lane value word in use
            return False
        # CACHE_DATA: exact per-address check over the segment's loads.
        lines = self._maps[0].rows
        for address, _value in segment.loads:
            entry = active.get((address >> 6) % lines)
            if entry is not None and self._window_mask(address, entry[1]):
                return True
        return False

    def advance_clean(self, count: int) -> None:
        """No arrival process to advance; a vetoed skip consumed nothing."""

    # -- fire hooks -------------------------------------------------------------
    def on_instruction(self, state: ArchState, info: StepInfo) -> bool:
        if self.structure is not SramStructure.CHECKER_REGFILE:
            return False
        active = self._active.get(self._instance)  # type: ignore[arg-type]
        if not active or info.dest is None:
            return False
        reg_file, index = info.dest
        if reg_file == "x":
            if index == 0:
                return False  # x0 is hard-wired zero
            row = index
        elif reg_file == "f":
            row = 32 + index
        else:
            return False  # flags live in latches, not the SRAM array
        entry = active.get(row)
        if entry is None:
            return False
        mask, cells = entry
        if reg_file == "x":
            state.regs.write_x(index, state.regs.read_x(index) ^ mask)
        else:
            state.regs.write_f_bits(index, state.regs.read_f_bits(index) ^ mask)
        self.last_fired_cell = cells[0]
        return True

    def on_load_at(
        self, op_index: int, address: int, value: int
    ) -> "tuple[int, bool]":
        if self.structure is SramStructure.LOAD_STORE_LOG:
            active = self._active.get(self._instance)  # type: ignore[arg-type]
            if not active:
                return value, False
            entry = active.get(2 * op_index + 1)
            if entry is None:
                return value, False
            mask, cells = entry
            self.last_fired_cell = cells[0]
            return value ^ mask, True
        if self.structure is SramStructure.CACHE_DATA:
            active = self._active.get(0)
            if not active:
                return value, False
            entry = active.get((address >> 6) % self._maps[0].rows)
            if entry is None:
                return value, False
            mask = self._window_mask(address, entry[1])
            if not mask:
                return value, False
            offset_bits = (address % 64) * 8
            for cell in entry[1]:
                if offset_bits <= cell.col < offset_bits + 64:
                    self.last_fired_cell = cell
                    break
            return value ^ mask, True
        return value, False

    def on_store_at(
        self, op_index: int, address: int, value: int
    ) -> "tuple[int, bool]":
        if self.structure is not SramStructure.LOAD_STORE_LOG:
            return value, False
        active = self._active.get(self._instance)  # type: ignore[arg-type]
        if not active:
            return value, False
        row = self._maps[self._instance].rows - 2 - 2 * op_index  # type: ignore[index]
        entry = active.get(row) if row >= 0 else None
        if entry is None:
            return value, False
        mask, cells = entry
        self.last_fired_cell = cells[0]
        return value ^ mask, True

    def _window_mask(self, address: int, cells: Tuple[WeakCell, ...]) -> int:
        """XOR mask of active line cells overlapping the 64-bit access."""
        offset_bits = (address % 64) * 8
        mask = 0
        for cell in cells:
            if offset_bits <= cell.col < offset_bits + 64:
                mask |= 1 << (cell.col - offset_bits)
        return mask

    # -- diagnostics ------------------------------------------------------------
    def describe(self) -> str:
        voltage = self._voltage if self._voltage is not None else float("nan")
        return (
            f"sram {self.structure.value} map (chip {self.chip_map.chip_seed}, "
            f"{self.chip_map.mode}): {self.active_cell_count} cell(s) failing "
            f"at {voltage:.3f} V"
        )

    def describe_last_fire(self) -> Optional[str]:
        cell = self.last_fired_cell
        if cell is None:
            return None
        return (
            f"cell={cell.row},{cell.col} cluster={cell.cluster} "
            f"vmin={cell.vmin:.3f}"
        )


def sram_injector(
    chip_seed: int,
    checkers: int = 16,
    mode: str = "mors",
    voltage: float = 1.1,
    config: Optional[SramMapConfig] = None,
    target: str = "checker",
):
    """One injector carrying a full chip's worth of SRAM fault models."""
    from .injector import FaultInjector

    chip_map = generate_chip_map(chip_seed, checkers=checkers, mode=mode, config=config)
    models = [
        SramFaultModel(chip_map, structure, voltage=voltage)
        for structure in SramStructure
    ]
    return FaultInjector(models, target=target)
