"""The fault injector: drives fault models against checker execution.

One :class:`FaultInjector` owns a list of fault models sharing one RNG
and applies them to the stream of checked segments, in dispatch order.
It implements the :class:`~repro.cores.checker_core.SegmentFaultHook`
protocol directly, so it can be handed to
:meth:`CheckerCore.check_segment`.

The engine's fast path asks :meth:`fires_within_segment` before replaying
a segment; when no model can fire within the segment's operation counts
the injector *consumes* those counts (:meth:`skip_segment`) and the
replay is skipped — statistically identical to replaying it, since a
correct checker replaying a correct segment cannot fail.

Injection can target the checker cores (the paper's setup: "we choose to
restrict error injection to the checker cores only", which is sound
because "error detection is symmetrical") or the main core, used by the
property tests to demonstrate end-to-end recovery of genuinely corrupted
execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry import Tracer

from ..isa import StepInfo
from ..isa.state import ArchState
from ..lslog.segment import LogSegment
from .models import FaultDomain, FaultModel


@dataclass
class InjectionStats:
    """How many faults each mechanism injected."""

    instruction_faults: int = 0
    load_faults: int = 0
    store_faults: int = 0
    segments_skipped: int = 0
    segments_replayed: int = 0

    @property
    def total(self) -> int:
        return self.instruction_faults + self.load_faults + self.store_faults


class FaultInjector:
    """Applies a set of fault models to checked (or main) execution."""

    def __init__(
        self,
        models: Sequence[FaultModel],
        target: str = "checker",
    ) -> None:
        if target not in ("checker", "main"):
            raise ValueError(f"target must be 'checker' or 'main', got {target!r}")
        self.models: List[FaultModel] = list(models)
        self.target = target
        self.stats = InjectionStats()
        #: ID of the checker core currently replaying, set by the engine
        #: via :meth:`begin_check` so core-bound models only fire on
        #: their own hardware (None during main-core injection).
        self.current_checker_id: int | None = None
        #: The segment currently being replayed (set alongside the
        #: checker ID): address-correlated models resolve the logged
        #: address of each corrupted operation through it.
        self.current_segment: LogSegment | None = None
        #: Telemetry bus (set by the engine when tracing is enabled).
        #: Emission happens only when a fault actually fires — never on
        #: the per-operation clean path.
        self.tracer: "Tracer | None" = None
        #: Sum of arrival clamp events already reported to telemetry.
        self._clamp_events_reported = 0

    def _trace_fault(self, site: str, model: "FaultModel") -> None:
        tracer = self.tracer
        if tracer is None:
            return
        core = self.current_checker_id
        detail = f"{site}:{type(model).__name__}"
        fire_detail = model.describe_last_fire()
        if fire_detail:
            detail = f"{detail} {fire_detail}"
        tracer.emit(
            "faults",
            "inject",
            core=core if core is not None else -1,
            detail=detail,
        )
        tracer.metrics.inc("faults.injected")
        tracer.metrics.inc(f"faults.injected.{site}")

    # -- configuration ---------------------------------------------------------------
    def set_rate(self, rate: float) -> None:
        """Update every model's per-operation fault probability.

        Permanent models (stuck-at defects) ignore the update: a broken
        wire does not heal when the voltage rises.  When the requested
        rate falls inside ``(0, MIN_RATE)`` the arrival process clamps
        it to "never fires" — the ``faults.rate_clamped`` metric counts
        those events so a sweep that silently bottoms out is visible.
        """
        for model in self.models:
            model.set_rate(rate)
        tracer = self.tracer
        if tracer is not None:
            total = sum(model.arrival.clamp_events for model in self.models)
            delta = total - self._clamp_events_reported
            if delta > 0:
                self._clamp_events_reported = total
                tracer.metrics.inc("faults.rate_clamped", float(delta))

    def set_voltage(self, voltage: float) -> None:
        """Propagate a DVFS supply-voltage change to every model.

        For transient models this is a no-op (the engine couples their
        rate through the voltage→rate curve separately); map-based SRAM
        models re-threshold their bit-cell maps.  Emits one
        ``faults/sram_map`` event per model whose active-cell set
        changed, carrying the new count.
        """
        tracer = self.tracer
        for model in self.models:
            if model.on_voltage(voltage) and tracer is not None:
                tracer.emit(
                    "faults",
                    "sram_map",
                    value=float(getattr(model, "active_cell_count", 0)),
                    detail=model.describe(),
                )

    @property
    def enabled(self) -> bool:
        return any(model.rate > 0 or model.persistent for model in self.models)

    def persistent_descriptions(self) -> List[str]:
        """Describe every permanent defect, for failure diagnostics."""
        return [model.describe() for model in self.models if model.persistent]

    def begin_check(
        self, core_id: "int | None", segment: "LogSegment | None" = None
    ) -> None:
        """Note which checker core is about to replay which segment.

        Called with ``(core_id, segment)`` before the fast-path query
        and with ``(None, None)`` when the check window closes, so
        address-correlated models always know whose hardware — and
        whose logged addresses — they are corrupting.
        """
        self.current_checker_id = core_id
        self.current_segment = segment
        for model in self.models:
            model.begin_check(core_id, segment)

    def _applies(self, model: FaultModel) -> bool:
        return (
            model.bound_checker_id is None
            or model.bound_checker_id == self.current_checker_id
        )

    # -- fast-path support --------------------------------------------------------------
    def _domain_count(self, model: FaultModel, segment: LogSegment) -> int:
        if model.domain is FaultDomain.INSTRUCTIONS:
            return segment.instruction_count
        if model.domain is FaultDomain.LOADS:
            return segment.load_count
        if model.domain is FaultDomain.STORES:
            return segment.store_count
        # UNIT_INSTRUCTIONS: only instructions of the unit that write a
        # register count (a no-effect instruction injects nothing).
        return segment.unit_dest_histogram.get(model.unit, 0)  # type: ignore[attr-defined]

    def fires_within_segment(self, segment: LogSegment) -> bool:
        """Could any model fire while checking ``segment``?  Non-consuming.

        Persistent address-correlated models veto the skip through
        :meth:`FaultModel.may_fire_in_segment`, which inspects the
        actual rows/addresses the replay would touch — a segment is
        only ever skipped when *no* model could possibly fire in it.
        """
        return any(
            model.may_fire_in_segment(segment, self._domain_count(model, segment))
            for model in self.models
            if self._applies(model)
        )

    def skip_segment(self, segment: LogSegment) -> None:
        """Consume a segment's operations without replaying it.

        Only valid when :meth:`fires_within_segment` returned False.
        Models bound to a different checker core saw none of the
        segment's operations, so their processes do not advance.
        """
        for model in self.models:
            if self._applies(model):
                model.advance_clean(self._domain_count(model, segment))
        self.stats.segments_skipped += 1

    def note_replay(self) -> None:
        self.stats.segments_replayed += 1

    # -- SegmentFaultHook protocol ----------------------------------------------------------
    def before_instruction(self, state: ArchState, index: int) -> None:
        """No model currently fires before execution; hook kept for API."""

    def after_instruction(self, state: ArchState, info: StepInfo, index: int) -> None:
        for model in self.models:
            if self._applies(model) and model.on_instruction(state, info):
                self.stats.instruction_faults += 1
                self._trace_fault("instruction", model)

    def corrupt_load(self, op_index: int, value: int) -> int:
        # At most one fault per operation: once a model corrupts the
        # value, stop — chaining further models through the already
        # corrupted value double-counts (and can silently cancel) faults.
        segment = self.current_segment
        address = segment.loads[op_index][0] if segment is not None else 0
        for model in self.models:
            if not self._applies(model):
                continue
            value, fired = model.on_load_at(op_index, address, value)
            if fired:
                self.stats.load_faults += 1
                self._trace_fault("load", model)
                break
        return value

    def corrupt_store(self, op_index: int, value: int) -> int:
        segment = self.current_segment
        address = segment.store_addrs[op_index] if segment is not None else 0
        for model in self.models:
            if not self._applies(model):
                continue
            value, fired = model.on_store_at(op_index, address, value)
            if fired:
                self.stats.store_faults += 1
                self._trace_fault("store", model)
                break
        return value


#: Model kinds :func:`default_injector` knows how to build.
DEFAULT_MODEL_KINDS = ("register", "unit", "memory")


def default_injector(
    rate: float,
    seed: int = 12345,
    target: str = "checker",
    models: Sequence[str] = DEFAULT_MODEL_KINDS,
    bound_checker: "int | None" = None,
    stuck_unit: "FunctionalUnit | None" = None,
) -> FaultInjector:
    """The paper's composite setup: one model of each kind, equal rates.

    The default mix is the paper's: register faults over all categories,
    a defective integer multiplier as the combinational-fault
    representative, and load-data log faults as the memory
    representative.  ``models`` composes any subset of ``"register"``,
    ``"unit"``, ``"memory"``, plus the resilience layer's ``"stuckat"``
    (permanent, optionally bound to checker ``bound_checker``) and
    ``"burst"`` (Gilbert–Elliott intermittent) modes.
    """
    from ..isa import FunctionalUnit as FU
    from .models import (
        BurstFaultModel,
        FunctionalUnitFaultModel,
        MemoryFaultModel,
        RegisterFaultModel,
        StuckAtFaultModel,
    )

    rng = np.random.default_rng(seed)
    built: List[FaultModel] = []
    for kind in models:
        if kind == "register":
            built.append(RegisterFaultModel(rate, rng))
        elif kind == "unit":
            built.append(FunctionalUnitFaultModel(rate, rng, FU.INT_MUL))
        elif kind == "memory":
            built.append(MemoryFaultModel(rate, rng, target="load"))
        elif kind == "stuckat":
            built.append(
                StuckAtFaultModel(
                    rng,
                    unit=stuck_unit if stuck_unit is not None else FU.INT_ALU,
                    bit=int(rng.integers(48)),
                    bound_checker_id=bound_checker,
                )
            )
        elif kind == "burst":
            built.append(BurstFaultModel(rate, rng))
        else:
            raise ValueError(f"unknown fault model kind {kind!r}")
    return FaultInjector(built, target=target)
