"""Voltage-to-error-rate model (Tan et al., section V-A).

"Errors due to undervolting are generated using an exponential model
following the formula from Tan et al.  Its parameters correspond to the
Intel Itanium II 9560 8-core processor with a nominal voltage of 1.1 V."
The paper uses the exponential *shape* — error rate grows exponentially
as supply voltage drops — to link a voltage level to an injection rate;
it does not claim to match the absolute Itanium numbers for its simulated
Arm core, and neither do we.

Model::

    rate(V) = r_nominal * exp((V_nominal - V) / scale)

Real silicon is error-free across almost the entire voltage margin and
then hits a steep exponential cliff near the minimum functional voltage
(this is exactly what Tan et al. measure).  The constants encode that: a
vanishingly small nominal rate (1e-25 per instruction) with a steep slope
(one e-fold per 3 mV) puts the cliff 10-13% below the 1.1 V nominal —
the margin width Papadimitriou et al. measure on Arm servers — so the
AIMD controller's equilibrium sits just above the cliff, deeply
undervolted but erring only every ~1e5-1e6 instructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class VoltageErrorModel:
    """Exponential error-rate model ``rate(V) = r_nom * exp((v_nom - V)/scale)``."""

    nominal_voltage: float = 1.1
    nominal_rate: float = 1e-25
    #: Volts per e-fold of error rate: a steep cliff (one decade of error
    #: rate per ~7 mV) whose knee sits ~0.11-0.13 V below nominal.
    scale: float = 0.003
    #: Rates are clamped here: a core below this is non-functional anyway.
    max_rate: float = 0.5

    def rate(self, voltage: float) -> float:
        """Per-instruction error probability at ``voltage``."""
        raw = self.nominal_rate * math.exp((self.nominal_voltage - voltage) / self.scale)
        return min(raw, self.max_rate)

    def voltage_for_rate(self, rate: float) -> float:
        """Inverse: the voltage at which the model yields ``rate``."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        rate = min(rate, self.max_rate)
        return self.nominal_voltage - self.scale * math.log(rate / self.nominal_rate)

    def first_error_voltage(self, instructions: float) -> float:
        """Voltage at which one error is expected within ``instructions``.

        A useful anchor: the "point of first error" the paper's dynamic
        controller deliberately dips below.
        """
        return self.voltage_for_rate(1.0 / instructions)

    @classmethod
    def itanium_9560(cls) -> "VoltageErrorModel":
        """The parameterisation used throughout the evaluation."""
        return cls()
