"""Geometric fault-arrival process.

The paper injects independent errors with geometrically distributed gaps
("we thus choose the geometric probability distribution to govern the gap
between two error injections", section V-A), the discrete analogue of a
Poisson process: each targeted operation independently faults with
probability ``rate``.

:class:`GeometricArrival` maintains the countdown to the next fault in
its own *domain* (instructions, loads, stores, or unit-specific
instructions).  It supports both per-operation stepping and bulk
advancing over a whole segment, which the engine's fast path uses to skip
functional replay of segments in which no fault can fire — the process
remains *exactly* geometric either way.

Rates may change between segments (dynamic voltage adaptation changes the
underlying physical rate); the countdown is resampled on a rate change,
which is exact thanks to the geometric distribution's memorylessness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Rates below this are treated as "never fires" to avoid numerical trouble
#: (a 1e-30 geometric sample overflows int64 in numpy).  A *non-zero*
#: rate hitting this floor is an explicit, observable clamp: the
#: :attr:`GeometricArrival.clamped` property reports it and
#: :attr:`GeometricArrival.clamp_events` counts every resample that
#: applied it (the injector surfaces the count as the
#: ``faults.rate_clamped`` telemetry metric).
MIN_RATE = 1e-15


class GeometricArrival:
    """Countdown to the next fault, geometric with parameter ``rate``."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if rate < 0 or rate > 1:
            raise ValueError(f"rate must be within [0, 1], got {rate}")
        self._rng = rng
        self._rate = float(rate)
        self._remaining: Optional[int] = None
        #: Resamples that clamped a non-zero sub-``MIN_RATE`` rate to
        #: "never fires".  Rate 0 is an exact request, not a clamp.
        self.clamp_events = 0
        self._resample()

    # -- configuration ------------------------------------------------------------
    @property
    def rate(self) -> float:
        return self._rate

    @property
    def clamped(self) -> bool:
        """True when the current rate is non-zero but below ``MIN_RATE``,
        so the process silently never fires unless made explicit here."""
        return 0.0 < self._rate < MIN_RATE

    def set_rate(self, rate: float) -> None:
        """Change the per-operation fault probability (memoryless resample)."""
        if rate < 0 or rate > 1:
            raise ValueError(f"rate must be within [0, 1], got {rate}")
        if rate != self._rate:
            self._rate = float(rate)
            self._resample()

    def _resample(self) -> None:
        if self._rate < MIN_RATE:
            if self._rate > 0.0:
                self.clamp_events += 1
            self._remaining = None  # never fires
        else:
            # Number of trials up to and including the first success.
            self._remaining = int(self._rng.geometric(self._rate))

    # -- queries --------------------------------------------------------------------
    def fires_within(self, count: int) -> bool:
        """Would any of the next ``count`` operations fault?  (No state change.)"""
        return self._remaining is not None and self._remaining <= count

    # -- consumption -------------------------------------------------------------------
    def step(self) -> bool:
        """Consume one operation; return True if it faults."""
        if self._remaining is None:
            return False
        self._remaining -= 1
        if self._remaining <= 0:
            self._resample()
            return True
        return False

    def advance(self, count: int) -> Optional[int]:
        """Consume up to ``count`` operations in bulk.

        If a fault falls within them, returns its 1-based offset and
        leaves the process positioned *at* the fault (the caller is
        expected to handle the remaining ``count - offset`` operations,
        e.g. by calling :meth:`advance` again); otherwise consumes all
        ``count`` and returns None.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if self._remaining is None or self._remaining > count:
            if self._remaining is not None:
                self._remaining -= count
            return None
        offset = self._remaining
        self._resample()
        return offset
