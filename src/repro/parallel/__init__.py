"""Parallel execution layer: deterministic process fan-out + seed derivation.

``repro.parallel`` owns everything needed to shard independent
simulations across worker processes while keeping results bit-identical
to a serial run:

* :func:`run_fanout` / :func:`parallel_map` — crash-isolated process
  fan-out with ordered results (see :mod:`repro.parallel.fanout`);
* :func:`derive_seed` — stable per-run seed derivation, so a run's
  randomness is a pure function of ``(base seed, run key)`` and never of
  scheduling order, worker identity or platform hash randomisation.
"""

from __future__ import annotations

import hashlib

from .fanout import (
    FanoutError,
    FanoutOutcome,
    parallel_map,
    resolve_jobs,
    run_fanout,
)

__all__ = [
    "FanoutError",
    "FanoutOutcome",
    "derive_seed",
    "parallel_map",
    "resolve_jobs",
    "run_fanout",
]


def derive_seed(base_seed: int, *key: object) -> int:
    """Derive a deterministic 31-bit seed from a base seed and a run key.

    Uses SHA-256 rather than ``hash()`` so the result is identical
    across processes (``PYTHONHASHSEED``-proof), platforms and Python
    versions — a worker computes the same seed the parent would.  The
    31-bit range keeps the value a valid seed for both
    ``numpy.random.default_rng`` and legacy signed-int consumers.
    """
    text = "\x1f".join([repr(int(base_seed))] + [repr(part) for part in key])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
