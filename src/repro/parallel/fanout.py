"""Deterministic, crash-isolated process fan-out.

The primitive under every parallel execution path in the simulator: the
SPEC-suite runner (:func:`repro.experiments.spec_runs.run_spec_suite`
with ``jobs > 1``), the figure harnesses and the fault-injection
campaign (:mod:`repro.resilience.campaign`) all shard independent
payloads over worker processes through :func:`run_fanout`.

Design rules, inherited from the campaign runner this was extracted
from:

* **One process per payload, no pool.**  A dying pool worker poisons
  the whole pool; a dying dedicated process costs exactly one result.
* **Private pipe per run.**  Workers ship one message and exit; the
  parent never blocks on a worker (results are polled, deadlines
  enforced with ``terminate``/``kill``).
* **Determinism is the payload's job.**  Every payload must carry its
  own seed(s); the fan-out guarantees only that results come back in
  payload order, regardless of completion order.  Workers therefore
  produce bit-identical results whether run serially or at any ``jobs``
  width.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

__all__ = [
    "FanoutOutcome",
    "FanoutError",
    "resolve_jobs",
    "run_fanout",
    "parallel_map",
]


def resolve_jobs(jobs: int) -> int:
    """Map a user-facing ``jobs`` value to a concrete worker count.

    ``jobs <= 0`` means "auto": one worker per CPU, capped at 8 so a
    big machine is not saturated by default.
    """
    if jobs > 0:
        return jobs
    return max(1, min(8, os.cpu_count() or 1))


@dataclass
class FanoutOutcome:
    """What happened to one payload."""

    index: int
    #: ``ok`` — worker returned a value; ``error`` — worker raised (the
    #: traceback is attached); ``died`` — the process exited without
    #: sending a result (segfault, ``os._exit``...); ``timeout`` — the
    #: parent's per-run deadline expired and the worker was terminated.
    status: str
    value: Any = None
    traceback: Optional[str] = None
    exitcode: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class FanoutError(RuntimeError):
    """A strict fan-out (:func:`parallel_map`) hit a non-ok outcome."""

    def __init__(self, outcome: FanoutOutcome) -> None:
        detail = outcome.traceback or f"worker exit code {outcome.exitcode}"
        super().__init__(
            f"payload {outcome.index} finished with status "
            f"{outcome.status!r}: {detail}"
        )
        self.outcome = outcome


def _reap(process) -> None:
    """Force a worker down and guarantee it is gone before returning.

    ``terminate`` (SIGTERM) is catchable — a worker stuck in a handler
    or masked section can outlive it — so escalate to ``kill``
    (SIGKILL, uncatchable) and then *assert* the process is reaped.
    Outcomes must never be recorded while the worker might still be
    running: a ``timeout`` slot with a live process behind it leaks a
    zombie per timed-out payload and can keep mutating shared files.
    """
    process.terminate()
    process.join(timeout=5.0)
    if process.is_alive():
        process.kill()
        process.join(timeout=5.0)
    assert not process.is_alive(), (
        f"worker pid {process.pid} survived SIGKILL; refusing to record "
        "an outcome for a process that is still running"
    )


def _fanout_child(worker: Callable[[Any], Any], payload: Any, conn) -> None:
    """Process entry point: run one payload, ship one message, exit."""
    try:
        message = {"status": "ok", "value": worker(payload)}
    except BaseException:
        message = {"status": "error", "traceback": traceback.format_exc()}
    try:
        conn.send(message)
    finally:
        conn.close()


def run_fanout(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    jobs: int = 0,
    timeout_s: Optional[float] = None,
    on_outcome: Optional[Callable[[FanoutOutcome], None]] = None,
    on_start: Optional[Callable[[int], None]] = None,
) -> List[FanoutOutcome]:
    """Run ``worker(payload)`` for every payload across worker processes.

    ``worker`` must be a picklable module-level callable.  Results come
    back ordered by payload index; ``on_outcome`` (if given) fires in
    *completion* order as each run resolves, so callers can stream
    progress, and ``on_start`` (if given) fires with the payload index
    the moment its worker process launches — the hook incremental
    persistence and the job server's event streams hang off.  A worker
    that crashes, raises, or outlives ``timeout_s`` yields a non-``ok``
    outcome without disturbing the other slots.
    """
    ctx = multiprocessing.get_context()
    outcomes: List[Optional[FanoutOutcome]] = [None] * len(payloads)
    workers = resolve_jobs(jobs)
    #: (payload index, process, parent pipe end, absolute deadline).
    running: List[tuple] = []
    next_index = 0

    def finish(outcome: FanoutOutcome) -> None:
        outcomes[outcome.index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    while next_index < len(payloads) or running:
        while next_index < len(payloads) and len(running) < workers:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_fanout_child,
                args=(worker, payloads[next_index], child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            if on_start is not None:
                on_start(next_index)
            deadline = (
                time.monotonic() + timeout_s if timeout_s is not None else None
            )
            running.append((next_index, process, parent_conn, deadline))
            next_index += 1

        still_running: List[tuple] = []
        made_progress = False
        for index, process, conn, deadline in running:
            outcome: Optional[FanoutOutcome] = None
            if conn.poll():
                try:
                    message = conn.recv()
                except EOFError:
                    message = None
                process.join(timeout=5.0)
                if process.is_alive():  # sent a result but refuses to exit
                    _reap(process)
                if message is None:  # EOF: the worker died mid-run
                    outcome = FanoutOutcome(
                        index, "died", exitcode=process.exitcode
                    )
                elif message["status"] != "ok":
                    outcome = FanoutOutcome(
                        index, "error", traceback=message.get("traceback")
                    )
                else:
                    outcome = FanoutOutcome(index, "ok", value=message["value"])
            elif not process.is_alive():
                process.join()
                outcome = FanoutOutcome(index, "died", exitcode=process.exitcode)
            elif deadline is not None and time.monotonic() >= deadline:
                _reap(process)
                outcome = FanoutOutcome(index, "timeout")
            if outcome is None:
                still_running.append((index, process, conn, deadline))
            else:
                conn.close()
                finish(outcome)
                made_progress = True
        running = still_running
        if running and not made_progress:
            time.sleep(0.02)

    return [outcome for outcome in outcomes if outcome is not None]


def parallel_map(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    jobs: int = 0,
    timeout_s: Optional[float] = None,
) -> List[Any]:
    """Strict ordered map over worker processes.

    Like :func:`run_fanout` but returns the bare values and raises
    :class:`FanoutError` on the first payload that crashed, raised or
    timed out — for callers (the suite runner) where any failure is a
    simulator bug rather than an expected campaign outcome.

    With ``jobs == 1`` the payloads run *in this process* with no
    fan-out machinery at all: the serial reference path.  Results are
    bit-identical across every ``jobs`` width because each payload
    carries its own seed.
    """
    if resolve_jobs(jobs) == 1:
        return [worker(payload) for payload in payloads]
    results: List[Any] = []
    for outcome in run_fanout(worker, payloads, jobs=jobs, timeout_s=timeout_s):
        if not outcome.ok:
            raise FanoutError(outcome)
        results.append(outcome.value)
    return results
