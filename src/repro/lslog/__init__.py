"""The load-store log: segments, replay ports, detection, rollback."""

from .detection import (
    CheckerException,
    CheckerTimeout,
    DetectionChannel,
    ErrorDetected,
    FinalStateMismatch,
    LoadAddressMismatch,
    LogExhausted,
    StoreAddressMismatch,
    StoreMismatch,
)
from .ports import CheckerReplayPort, MainMemoryPort, UncheckedConflictStall
from .rollback import (
    LINE_ROLLBACK_CYCLES,
    ROLLBACK_BASE_CYCLES,
    RollbackResult,
    WORD_ROLLBACK_CYCLES,
    rollback_cost_cycles,
    rollback_memory,
)
from .segment import (
    LINE_ENTRY_BYTES,
    LOAD_ENTRY_BYTES,
    LogSegment,
    RollbackGranularity,
    STORE_DETECT_BYTES,
    STORE_OLD_WORD_BYTES,
    SegmentCloseReason,
    SegmentFull,
)

__all__ = [
    "CheckerException",
    "CheckerReplayPort",
    "CheckerTimeout",
    "DetectionChannel",
    "ErrorDetected",
    "FinalStateMismatch",
    "LINE_ENTRY_BYTES",
    "LINE_ROLLBACK_CYCLES",
    "LOAD_ENTRY_BYTES",
    "LoadAddressMismatch",
    "LogExhausted",
    "LogSegment",
    "MainMemoryPort",
    "ROLLBACK_BASE_CYCLES",
    "RollbackGranularity",
    "RollbackResult",
    "STORE_DETECT_BYTES",
    "STORE_OLD_WORD_BYTES",
    "SegmentCloseReason",
    "SegmentFull",
    "StoreAddressMismatch",
    "StoreMismatch",
    "UncheckedConflictStall",
    "WORD_ROLLBACK_CYCLES",
    "rollback_cost_cycles",
    "rollback_memory",
]
