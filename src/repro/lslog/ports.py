"""Data ports: how each core type touches memory.

The main core's port performs real loads and stores against the memory
image while filling the current log segment and maintaining the L1
unchecked-line state.  The checker core's port never touches memory: it
replays the log FIFO ("checkers do not actually have access to main
memory on the data side: their data cache is replaced by a load-store
log", section II-B) and raises a detection exception on any divergence.

Two control-flow exceptions are raised *before* any architectural state
changes, so the engine can handle the condition and re-execute the same
instruction:

* :class:`~repro.lslog.segment.SegmentFull` — the op does not fit in the
  current log segment; the engine must close the segment (take a
  checkpoint) and retry.
* :class:`UncheckedConflictStall` — the store would need to buffer an
  unchecked dirty line in a full L1 set; the engine must let checkers
  drain (and, in ParaDox, shrink the checkpoint target) and retry.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..isa.memory_image import MemoryImage, line_address
from ..memory.unchecked import UncheckedLineTracker
from .detection import (
    LoadAddressMismatch,
    LogExhausted,
    StoreAddressMismatch,
    StoreMismatch,
)
from .segment import LogSegment, RollbackGranularity, SegmentFull


class UncheckedConflictStall(Exception):
    """A store hit an L1 set whose ways all hold unchecked dirty lines."""

    def __init__(self, address: int) -> None:
        super().__init__(f"unchecked-line conflict buffering {address:#x}")
        self.address = address


class MainMemoryPort:
    """Main-core data port: real memory + log fill + unchecked tracking."""

    def __init__(
        self,
        memory: MemoryImage,
        tracker: UncheckedLineTracker,
        granularity: RollbackGranularity,
    ) -> None:
        self.memory = memory
        self.tracker = tracker
        self.granularity = granularity
        #: The engine points this at the currently filling segment.
        self.segment: Optional[LogSegment] = None

    def load(self, address: int) -> int:
        value = self.memory.load(address)
        self.segment.record_load(address, value)  # may raise SegmentFull
        return value

    def store(self, address: int, value: int) -> None:
        segment = self.segment
        if self.granularity is RollbackGranularity.NONE:
            # Detection-only: stores are not buffered for rollback, so
            # there is no unchecked-line state to conflict with.
            if not segment.fits_store(needs_line_copy=False):
                raise SegmentFull
            segment.record_store(address, value, 0, None)
            self.memory.store(address, value)
            return
        if self.tracker.would_conflict(address):
            raise UncheckedConflictStall(address)
        line_copy = None
        if self.granularity is RollbackGranularity.LINE:
            if self.tracker.needs_copy(address, segment.seq):
                line_copy = (line_address(address), self.memory.read_line(address))
            if not segment.fits_store(needs_line_copy=line_copy is not None):
                raise SegmentFull
        else:
            if not segment.fits_store(needs_line_copy=False):
                raise SegmentFull
        old_value = self.memory.load(address)
        segment.record_store(address, value, old_value, line_copy)
        self.tracker.commit_write(address, segment.seq)
        self.memory.store(address, value)


class CheckerReplayPort:
    """Checker-core data port: replays one segment's log FIFOs.

    ``load_corruptor`` / ``store_corruptor``, when given, model the
    paper's *memory fault* injection ("errors in the load-store log...
    flipping one bit of the data carried by a memory operation"): they map
    ``(operation index, logged value) -> value seen by the checker``.
    """

    def __init__(
        self,
        segment: LogSegment,
        load_corruptor: Optional[Callable[[int, int], int]] = None,
        store_corruptor: Optional[Callable[[int, int], int]] = None,
    ) -> None:
        self.segment = segment
        self.load_index = 0
        self.store_index = 0
        self._load_corruptor = load_corruptor
        self._store_corruptor = store_corruptor

    def load(self, address: int) -> int:
        segment = self.segment
        if self.load_index >= len(segment.loads):
            raise LogExhausted(
                f"checker load #{self.load_index} beyond logged {len(segment.loads)}"
            )
        logged_address, value = segment.loads[self.load_index]
        index = self.load_index
        self.load_index += 1
        if logged_address != address:
            raise LoadAddressMismatch(
                f"load #{index}: checker address {address:#x} != logged "
                f"{logged_address:#x}"
            )
        if self._load_corruptor is not None:
            value = self._load_corruptor(index, value)
        return value

    def store(self, address: int, value: int) -> None:
        segment = self.segment
        if self.store_index >= len(segment.store_addrs):
            raise LogExhausted(
                f"checker store #{self.store_index} beyond logged "
                f"{len(segment.store_addrs)}"
            )
        index = self.store_index
        logged_address = segment.store_addrs[index]
        logged_value = segment.store_values[index]
        self.store_index += 1
        if self._store_corruptor is not None:
            logged_value = self._store_corruptor(index, logged_value)
        if logged_address != address:
            raise StoreAddressMismatch(
                f"store #{index}: checker address {address:#x} != logged "
                f"{logged_address:#x}"
            )
        if logged_value != value:
            raise StoreMismatch(
                f"store #{index} at {address:#x}: checker value {value:#x} != "
                f"logged {logged_value:#x}"
            )

    @property
    def fully_consumed(self) -> bool:
        """True when every logged operation was replayed (final check)."""
        segment = self.segment
        return self.load_index == len(segment.loads) and self.store_index == len(
            segment.store_addrs
        )
