"""Error-detection outcomes.

The paper's figure 7 enumerates how an injected error surfaces: "at store
comparison, during the final architectural state check, or because of an
exception or an invalid checker core behavior" — or it may remain
undetected (a masked fault whose effects never reach architectural
state).  Full core lockups are caught by timeout (section II-B).

Detections are raised as exceptions from the checker's replay port or
from the checker run loop, and carry where in the segment they occurred
so the engine can account wasted execution precisely (figure 4).
"""

from __future__ import annotations

import enum
from typing import Optional


class DetectionChannel(enum.Enum):
    """Where a divergence became visible."""

    STORE_COMPARISON = "store comparison"
    STORE_ADDRESS = "store address comparison"
    LOAD_ADDRESS = "load address divergence"
    LOG_EXHAUSTED = "load-store log over/under-run"
    FINAL_STATE = "final architectural state check"
    EXCEPTION = "checker exception / invalid behavior"
    TIMEOUT = "checker timeout"
    MAIN_TRAP = "main-core exception (suspected transient fault)"


class ErrorDetected(Exception):
    """An error was detected while checking a segment."""

    channel: DetectionChannel = DetectionChannel.EXCEPTION

    def __init__(
        self,
        message: str,
        instruction_index: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        #: Index within the segment of the checker instruction at which the
        #: divergence surfaced (None if only known at segment end).
        self.instruction_index = instruction_index


class StoreMismatch(ErrorDetected):
    """The checker's store value differed from the logged value."""

    channel = DetectionChannel.STORE_COMPARISON


class StoreAddressMismatch(ErrorDetected):
    """The checker's store address differed from the logged address."""

    channel = DetectionChannel.STORE_ADDRESS


class LoadAddressMismatch(ErrorDetected):
    """The checker's load address differed from the logged address."""

    channel = DetectionChannel.LOAD_ADDRESS


class LogExhausted(ErrorDetected):
    """The checker issued more memory operations than were logged."""

    channel = DetectionChannel.LOG_EXHAUSTED


class FinalStateMismatch(ErrorDetected):
    """The checker finished the segment in a different architectural state."""

    channel = DetectionChannel.FINAL_STATE


class CheckerException(ErrorDetected):
    """The checker trapped (invalid PC, alignment...): invalid behaviour."""

    channel = DetectionChannel.EXCEPTION


class CheckerTimeout(ErrorDetected):
    """The checker failed to finish within its instruction/time budget."""

    channel = DetectionChannel.TIMEOUT
