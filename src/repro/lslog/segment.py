"""Load-store-log segments (figure 1 / figure 6 of the paper).

One :class:`LogSegment` corresponds to one run-time segment of main-core
execution, i.e. one checkpoint region, checked by one checker core.  The
main core appends *detection* entries in program order:

* every load's ``(virtual address, loaded value)``,
* every store's ``(virtual address, new value)``.

Because main and checker execute the same committed instruction sequence,
each side is a FIFO queue for the checker ("each segment of the load-store
log acts as a queue", section II-B).

For *rollback* the two designs differ (section IV-D):

* **ParaMedic** (word granularity): every store also records the old word
  it overwrote; rollback walks stores in reverse undoing each.
* **ParaDox** (line granularity): only the *first* store to a cache line
  within the segment copies the old 64-byte line (identified via the L1
  timestamp, figure 6a); later stores to the same line need no copy
  (figure 6b).  Rollback restores whole lines, with physical addresses so
  no translation is needed.

Capacity is the 6 KiB SRAM per checker core (Table I).  Detection entries
fill from one end and rollback data from the other; "once these two
indices meet, or will meet following the commit of the next load or
store, a new checkpoint is created" (section IV-D).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Counter as CounterT, List, Optional, Tuple

from ..isa import FunctionalUnit
from ..isa.state import ArchState

#: Bytes per logged quantity.  A word entry is an 8-byte value plus an
#: 8-byte (virtual) address; an old-value word adds another 8 bytes; a
#: line rollback entry is a 64-byte line plus its 8-byte physical address
#: (the ECC bits ride along for free, section IV-D).
LOAD_ENTRY_BYTES = 16
STORE_DETECT_BYTES = 16
STORE_OLD_WORD_BYTES = 8
LINE_ENTRY_BYTES = 72


class RollbackGranularity(enum.Enum):
    """How old values are kept for rollback."""

    WORD = "word"  # ParaMedic
    LINE = "line"  # ParaDox
    NONE = "none"  # detection-only [8]: no recovery data kept


class SegmentCloseReason(enum.Enum):
    """Why the main core ended a segment and took a checkpoint."""

    TARGET_LENGTH = "target"  # reached the AIMD target instruction count
    LOG_CAPACITY = "capacity"  # next memory op would not fit in the log
    EVICTION_CONFLICT = "eviction"  # unchecked-line conflict in the L1
    PROGRAM_END = "halt"
    EXTERNAL = "external"  # uncacheable/external op must check first


class SegmentFull(Exception):
    """The pending memory operation does not fit; close the segment first."""


@dataclass
class LogSegment:
    """One filled (or filling) log segment plus its checkpoint metadata."""

    seq: int
    granularity: RollbackGranularity
    capacity_bytes: int
    start_state: ArchState
    #: Sequence number of the checker core assigned to this segment; fig. 5
    #: stores the chosen ID at the end of the previous segment and the
    #: front of the new one for continuity and rollback chaining.
    checker_id: Optional[int] = None
    prev_checker_id: Optional[int] = None
    #: Main core that produced this segment (0 unless several mains
    #: share a checker pool — each keeps its own log and checkpoints).
    main_id: int = 0

    # Detection side (FIFO order).
    loads: List[Tuple[int, int]] = field(default_factory=list)
    store_addrs: List[int] = field(default_factory=list)
    store_values: List[int] = field(default_factory=list)
    # Rollback side.
    store_olds: List[int] = field(default_factory=list)  # WORD granularity
    lines: List[Tuple[int, Tuple[int, ...]]] = field(default_factory=list)  # LINE

    end_state: Optional[ArchState] = None
    instruction_count: int = 0
    unit_histogram: CounterT[FunctionalUnit] = field(default_factory=Counter)
    #: Instructions per unit that write a register — the domain of the
    #: combinational fault model (no-effect instructions inject nothing).
    unit_dest_histogram: CounterT[FunctionalUnit] = field(default_factory=Counter)
    close_reason: Optional[SegmentCloseReason] = None
    detection_bytes: int = 0
    rollback_bytes: int = 0
    #: Set when the fill loop saw a taken-branch-heavy footprint; consumed
    #: by the checker I-cache model.
    text_footprint_bytes: int = 0

    # -- capacity ------------------------------------------------------------------
    def bytes_used(self) -> int:
        return self.detection_bytes + self.rollback_bytes

    def fits_load(self) -> bool:
        return self.bytes_used() + LOAD_ENTRY_BYTES <= self.capacity_bytes

    def fits_store(self, needs_line_copy: bool) -> bool:
        cost = STORE_DETECT_BYTES
        if self.granularity is RollbackGranularity.WORD:
            cost += STORE_OLD_WORD_BYTES
        elif self.granularity is RollbackGranularity.LINE and needs_line_copy:
            cost += LINE_ENTRY_BYTES
        return self.bytes_used() + cost <= self.capacity_bytes

    # -- recording (main core side) ----------------------------------------------------
    def record_load(self, address: int, value: int) -> None:
        if not self.fits_load():
            raise SegmentFull
        self.loads.append((address, value))
        self.detection_bytes += LOAD_ENTRY_BYTES

    def record_store(
        self,
        address: int,
        new_value: int,
        old_value: int,
        line: Optional[Tuple[int, Tuple[int, ...]]] = None,
    ) -> None:
        """Record a store; ``line`` is the old-line copy if one is needed."""
        if not self.fits_store(needs_line_copy=line is not None):
            raise SegmentFull
        self.store_addrs.append(address)
        self.store_values.append(new_value)
        self.detection_bytes += STORE_DETECT_BYTES
        if self.granularity is RollbackGranularity.WORD:
            self.store_olds.append(old_value)
            self.rollback_bytes += STORE_OLD_WORD_BYTES
        elif self.granularity is RollbackGranularity.LINE and line is not None:
            self.lines.append(line)
            self.rollback_bytes += LINE_ENTRY_BYTES

    def record_instruction(self, unit: FunctionalUnit, writes_register: bool = True) -> None:
        self.instruction_count += 1
        self.unit_histogram[unit] += 1
        if writes_register:
            self.unit_dest_histogram[unit] += 1

    def close(self, end_state: ArchState, reason: SegmentCloseReason) -> None:
        if self.end_state is not None:
            raise RuntimeError(f"segment {self.seq} closed twice")
        self.end_state = end_state
        self.close_reason = reason

    @property
    def is_closed(self) -> bool:
        return self.end_state is not None

    @property
    def store_count(self) -> int:
        return len(self.store_addrs)

    @property
    def load_count(self) -> int:
        return len(self.loads)

    @property
    def rollback_entry_count(self) -> int:
        """Entries a rollback walk must restore (words vs lines)."""
        if self.granularity is RollbackGranularity.WORD:
            return len(self.store_olds)
        if self.granularity is RollbackGranularity.LINE:
            return len(self.lines)
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogSegment(seq={self.seq}, inst={self.instruction_count}, "
            f"loads={self.load_count}, stores={self.store_count}, "
            f"bytes={self.bytes_used()}/{self.capacity_bytes}, "
            f"reason={self.close_reason and self.close_reason.value})"
        )
