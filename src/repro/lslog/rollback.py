"""Memory rollback (section II-B recovery, optimised in section IV-D).

On error detection "all the stores that happened between the beginning of
the faulty segment and the current state — which are all kept in the
load-store log — are reverted".  Rollback walks the *newest* segment
first, back to the faulty one, so that where both an older and a newer
copy of a location exist, the older value lands last.

* Word granularity (ParaMedic): undo every store in reverse order.
* Line granularity (ParaDox): restore each first-touch line copy, one
  entry per (line, checkpoint) instead of one per store.

The per-entry cycle costs below feed the recovery-time accounting of
figure 9: a word undo is a log read plus a word write into the L1; a line
restore moves a whole 64-byte line but amortises the lookup/ECC handling
across it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..isa.memory_image import MemoryImage
from .segment import LogSegment, RollbackGranularity

#: Main-core cycles to undo one logged word (read log entry, write word).
WORD_ROLLBACK_CYCLES = 4
#: Main-core cycles to restore one 64-byte line (burst SRAM read, line fill).
LINE_ROLLBACK_CYCLES = 8
#: Fixed cost of initiating a rollback (drain pipeline, walk segment list).
ROLLBACK_BASE_CYCLES = 32


@dataclass(frozen=True)
class RollbackResult:
    """Outcome and cost accounting for one rollback."""

    segments_walked: int
    entries_restored: int
    cycles: int
    granularity: RollbackGranularity


def rollback_memory(
    memory: MemoryImage, segments_newest_first: Sequence[LogSegment]
) -> RollbackResult:
    """Revert all stores recorded in the given segments.

    ``segments_newest_first`` must be ordered newest to oldest and all
    share one granularity; the caller passes every unchecked segment from
    the current one back to (and including) the faulty one.
    """
    if not segments_newest_first:
        return RollbackResult(0, 0, ROLLBACK_BASE_CYCLES, RollbackGranularity.WORD)
    granularity = segments_newest_first[0].granularity
    if granularity is RollbackGranularity.NONE:
        raise ValueError(
            "detection-only segments carry no rollback data; recovery is "
            "impossible (this is the [8] design point, not ParaMedic/ParaDox)"
        )
    entries = 0
    for segment in segments_newest_first:
        if segment.granularity is not granularity:
            raise ValueError("mixed rollback granularities in one walk")
        if granularity is RollbackGranularity.WORD:
            for index in range(len(segment.store_addrs) - 1, -1, -1):
                memory.store(segment.store_addrs[index], segment.store_olds[index])
                entries += 1
        else:
            for line_addr, words in segment.lines:
                memory.write_line(line_addr, words)
                entries += 1
    per_entry = (
        WORD_ROLLBACK_CYCLES
        if granularity is RollbackGranularity.WORD
        else LINE_ROLLBACK_CYCLES
    )
    cycles = ROLLBACK_BASE_CYCLES + entries * per_entry
    return RollbackResult(len(segments_newest_first), entries, cycles, granularity)


def rollback_cost_cycles(segments_newest_first: Iterable[LogSegment]) -> int:
    """Cost of a rollback without performing it (for what-if analysis)."""
    segments: List[LogSegment] = list(segments_newest_first)
    if not segments:
        return ROLLBACK_BASE_CYCLES
    per_entry = (
        WORD_ROLLBACK_CYCLES
        if segments[0].granularity is RollbackGranularity.WORD
        else LINE_ROLLBACK_CYCLES
    )
    return ROLLBACK_BASE_CYCLES + per_entry * sum(
        s.rollback_entry_count for s in segments
    )
