"""ParaDox: eliminating voltage margins via heterogeneous fault tolerance.

A full-system Python reproduction of Ainsworth, Zoubritzky, Mycroft &
Jones, HPCA 2021.  The headline API:

>>> from repro import ParaDoxSystem, build_bitcount
>>> system = ParaDoxSystem()
>>> result = system.run(build_bitcount(values=16))
>>> result.errors_detected
0

Subpackages: ``isa`` (functional substrate), ``cores`` (timing models),
``memory`` (caches/ECC), ``lslog`` (load-store log), ``checkpoint``,
``scheduling``, ``faults`` (injection), ``dvfs``, ``power``, ``core``
(the assembled systems), ``workloads``, ``experiments`` (figure
harnesses).
"""

from .config import SystemConfig, table1_config
from .core import (
    BaselineSystem,
    DetectionOnlySystem,
    EngineOptions,
    ParaDoxSystem,
    ParaMedicSystem,
    SimulationEngine,
)
from .faults import (
    FaultInjector,
    FunctionalUnitFaultModel,
    MemoryFaultModel,
    RegisterFaultModel,
    VoltageErrorModel,
    default_injector,
)
from .stats import RecoveryEvent, RunResult
from .workloads import (
    Workload,
    build_bitcount,
    build_crc32,
    build_matmul,
    build_quicksort,
    build_spec_suite,
    build_spec_workload,
    build_stream,
    build_synthetic,
    golden_run,
)

__version__ = "0.1.0"

__all__ = [
    "BaselineSystem",
    "DetectionOnlySystem",
    "EngineOptions",
    "FaultInjector",
    "FunctionalUnitFaultModel",
    "MemoryFaultModel",
    "ParaDoxSystem",
    "ParaMedicSystem",
    "RecoveryEvent",
    "RegisterFaultModel",
    "RunResult",
    "SimulationEngine",
    "SystemConfig",
    "VoltageErrorModel",
    "Workload",
    "__version__",
    "build_bitcount",
    "build_crc32",
    "build_matmul",
    "build_quicksort",
    "build_spec_suite",
    "build_spec_workload",
    "build_stream",
    "build_synthetic",
    "default_injector",
    "golden_run",
    "table1_config",
]
