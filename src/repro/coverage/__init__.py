"""Coverage analysis (section IV-E): what ParaDox does and doesn't catch."""

from .common_mode import Corruption, inject_common_mode, inject_independent
from .model import (
    CoveragePoint,
    MARGINED_RESIDUAL_RATE,
    UNMASKED_FRACTION,
    checker_undervolt_tradeoff,
    common_mode_match_probability,
    coverage_sweep,
    margined_sdc_rate,
    paradox_sdc_rate,
)

__all__ = [
    "Corruption",
    "CoveragePoint",
    "MARGINED_RESIDUAL_RATE",
    "UNMASKED_FRACTION",
    "checker_undervolt_tradeoff",
    "common_mode_match_probability",
    "coverage_sweep",
    "inject_common_mode",
    "inject_independent",
    "margined_sdc_rate",
    "paradox_sdc_rate",
]
