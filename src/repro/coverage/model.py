"""Analytic coverage model (section IV-E).

The paper argues that an undervolted-but-checked system is *strictly more
reliable* than a margined-but-unchecked one:

* On the margined baseline, any error that slips past the margin (cosmic
  ray, voltage spike, margin miscalibration) directly corrupts
  architectural state — a potential silent data corruption (SDC).
* Under ParaDox, a main-core error is caught unless the checker
  experiences an error with the *same architectural effect* during the
  same segment.  Main and checker cores are "microarchitecturally
  distinct, [so] critical paths are unlikely to be in the same places" —
  common-mode failures need an independent coincidence.

This module quantifies that argument.  Per checked instruction:

    P(SDC | ParaDox) ~= p_main * p_checker * p_match

where ``p_main`` is the (deliberately raised) main-core error rate,
``p_checker`` the checker-core rate (margined, so cosmic-ray-level), and
``p_match`` the probability that two independent errors produce an
identical architectural effect (bounded above by 1/64 for single-bit
flips in the same register, times the probability of hitting the same
instruction and register — we expose it as a parameter with a
conservative default).

The margined baseline's SDC rate is simply its residual error rate times
the fraction of errors that are not masked.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.voltage_model import VoltageErrorModel

#: Residual per-instruction error rate of a *margined* core: the paper
#: quotes ~"fewer than one per year" for a typical processor; one error
#: per year at 3.2 GHz with IPC ~1.5 is ~1 / 1.5e17 instructions.
MARGINED_RESIDUAL_RATE = 1e-17

#: Fraction of architectural errors that propagate to program output
#: rather than being masked (dead value, overwritten...).  Field studies
#: put unmasked fractions around 10-50%; we use a middle value for both
#: systems, so it cancels in the comparison.
UNMASKED_FRACTION = 0.3

#: Conservative upper bound on two *independent* single-bit errors having
#: the identical architectural effect within one segment: same
#: instruction (1/segment_length), same register file and index
#: (~1/32), same bit (1/64).
def common_mode_match_probability(segment_length: int) -> float:
    if segment_length <= 0:
        raise ValueError("segment length must be positive")
    return (1.0 / segment_length) * (1.0 / 32.0) * (1.0 / 64.0)


@dataclass(frozen=True)
class CoveragePoint:
    """SDC rates for one operating voltage."""

    voltage: float
    main_error_rate: float
    sdc_rate_paradox: float
    sdc_rate_margined: float

    @property
    def advantage(self) -> float:
        """How many times lower ParaDox's SDC rate is than the baseline's."""
        if self.sdc_rate_paradox == 0:
            return float("inf")
        return self.sdc_rate_margined / self.sdc_rate_paradox


def paradox_sdc_rate(
    main_error_rate: float,
    checker_error_rate: float = MARGINED_RESIDUAL_RATE,
    segment_length: int = 1000,
) -> float:
    """Per-instruction silent-corruption probability under ParaDox.

    An SDC needs a main-core error *and* a checker error with matching
    effect in the same segment.  The checker sees ``segment_length``
    opportunities to err while checking the segment.
    """
    if main_error_rate < 0 or checker_error_rate < 0:
        raise ValueError("rates must be non-negative")
    p_checker_errs_in_segment = min(checker_error_rate * segment_length, 1.0)
    p_match = common_mode_match_probability(segment_length)
    return main_error_rate * p_checker_errs_in_segment * p_match * UNMASKED_FRACTION


def margined_sdc_rate(residual_rate: float = MARGINED_RESIDUAL_RATE) -> float:
    """Per-instruction SDC probability of the unprotected baseline."""
    return residual_rate * UNMASKED_FRACTION


def coverage_sweep(
    model: VoltageErrorModel,
    voltages: "list[float]",
    checker_error_rate: float = MARGINED_RESIDUAL_RATE,
    segment_length: int = 1000,
) -> "list[CoveragePoint]":
    """SDC comparison across operating voltages.

    Even at voltages where the main core errs every few thousand
    instructions, ParaDox's SDC rate stays orders of magnitude below the
    margined baseline's — the section IV-E claim.
    """
    baseline = margined_sdc_rate()
    points = []
    for voltage in voltages:
        rate = model.rate(voltage)
        points.append(
            CoveragePoint(
                voltage=voltage,
                main_error_rate=rate,
                sdc_rate_paradox=paradox_sdc_rate(
                    rate, checker_error_rate, segment_length
                ),
                sdc_rate_margined=baseline,
            )
        )
    return points


def checker_undervolt_tradeoff(
    main_rate: float,
    checker_rates: "list[float]",
    segment_length: int = 1000,
) -> "list[tuple[float, float]]":
    """What if checkers were undervolted too (the paper declines to)?

    Returns (checker_rate, sdc_rate) pairs.  The SDC rate grows linearly
    with the checker rate, which is why the paper keeps "traditional
    voltage margins on checker cores": their power is already minor, and
    the reliability cost of undervolting them is first-order.
    """
    return [
        (rate, paradox_sdc_rate(main_rate, rate, segment_length))
        for rate in checker_rates
    ]
