"""Common-mode fault demonstration.

The coverage argument of section IV-E rests on detection failing *only*
when main and checker suffer errors with the identical architectural
effect.  This module makes that concrete on the real machinery:

* :func:`inject_common_mode` corrupts the main core's state during a
  segment **and** applies the *same* corruption to the checker at the
  same instruction index — the checker then reproduces the wrong values
  exactly, every store matches the (wrong) log, the final states agree,
  and the error sails through undetected.
* :func:`inject_independent` applies different corruptions to each side,
  which is always detected.

Both are used by the test suite and the coverage example; they are the
executable counterpart of the analytic model's ``p_match``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cores.checker_core import CheckResult, CheckerCore
from ..isa import ArchState, Executor, MemoryImage, Program, StepInfo
from ..isa.registers import RegisterCategory
from ..lslog.ports import MainMemoryPort
from ..lslog.segment import LogSegment, RollbackGranularity, SegmentCloseReason
from ..memory.unchecked import UncheckedLineTracker
from ..config import CacheConfig, table1_config


@dataclass(frozen=True)
class Corruption:
    """One register bit flip at one dynamic instruction index."""

    instruction_index: int
    category: RegisterCategory = RegisterCategory.INT
    register: int = 1
    bit: int = 0

    def apply(self, state: ArchState) -> None:
        state.flip_bit(self.category, self.register, self.bit)


class _CheckerHook:
    """SegmentFaultHook applying one corruption during checking."""

    def __init__(self, corruption: Optional[Corruption]) -> None:
        self.corruption = corruption

    def before_instruction(self, state: ArchState, index: int) -> None:
        if self.corruption is not None and index == self.corruption.instruction_index:
            self.corruption.apply(state)

    def after_instruction(self, state: ArchState, info: StepInfo, index: int) -> None:
        pass

    def corrupt_load(self, op_index: int, value: int) -> int:
        return value

    def corrupt_store(self, op_index: int, value: int) -> int:
        return value


def _fill_corrupted_segment(
    program: Program, main_corruption: Optional[Corruption], budget: int = 100_000
) -> "tuple[LogSegment, MemoryImage]":
    """Run the program on a main core, corrupting it mid-segment."""
    memory = MemoryImage()
    tracker = UncheckedLineTracker(CacheConfig(32 * 1024, 4, 2, mshrs=4))
    port = MainMemoryPort(memory, tracker, RollbackGranularity.LINE)
    state = ArchState()
    segment = LogSegment(
        seq=1,
        granularity=RollbackGranularity.LINE,
        capacity_bytes=1 << 20,
        start_state=state.snapshot(),
    )
    port.segment = segment
    executor = Executor(program, state, port)
    index = 0
    while not state.halted and index < budget:
        if main_corruption is not None and index == main_corruption.instruction_index:
            main_corruption.apply(state)
        info = executor.step()
        segment.record_instruction(
            info.instruction.unit, writes_register=info.dest is not None
        )
        index += 1
    segment.close(state.snapshot(), SegmentCloseReason.PROGRAM_END)
    return segment, memory


def inject_common_mode(program: Program, corruption: Corruption) -> CheckResult:
    """Identical corruption on both sides: the undetectable case."""
    segment, _memory = _fill_corrupted_segment(program, corruption)
    checker = CheckerCore(0, table1_config().checker, program)
    return checker.check_segment(segment, hook=_CheckerHook(corruption))


def inject_independent(
    program: Program,
    main_corruption: Corruption,
    checker_corruption: Optional[Corruption] = None,
) -> CheckResult:
    """Different (or one-sided) corruption: the detected case."""
    segment, _memory = _fill_corrupted_segment(program, main_corruption)
    checker = CheckerCore(0, table1_config().checker, program)
    return checker.check_segment(segment, hook=_CheckerHook(checker_corruption))
