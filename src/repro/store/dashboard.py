"""Static HTML dashboard rendered from a campaign store.

``repro report <store.sqlite>`` emits one self-contained page — inline
CSS and SVG, no scripts, no external assets — summarising every
campaign in the store:

* stat tiles (grid size, completion, failure counts);
* the outcome taxonomy as labelled stacked bars, overall and per
  fault-model mix;
* a seed × rate (or voltage) coverage heatmap, one cell per grid
  point, pending cells in neutral gray;
* mean-instructions-to-failure and degradation-share curves over the
  rate axis.

Color carries outcome *state*, so classes wear the fixed status
palette (good/warning/serious/critical) rather than categorical series
hues; ``crash`` — a tooling failure, not a simulation outcome — is a
deliberately chroma-less ink.  Status colors never appear without a
text label, every chart has a legend, and the counts table mirrors all
of it, so no reading depends on color alone (two of the light-mode
status steps sit below 3:1 contrast by design).  Dark mode is its own
selected set of steps via CSS custom properties, not an automatic flip.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .store import CampaignStore

#: Taxonomy order: also the severity ranking (later = worse) used when a
#: heatmap cell aggregates several runs.
CLASS_ORDER = (
    "masked",
    "detected_recovered",
    "degraded",
    "hang",
    "sdc",
    "crash",
)

#: Outcome-class color roles (light, dark): status palette steps, plus
#: series blue for the benign recovered class and neutral ink for crash.
CLASS_COLORS: Dict[str, Tuple[str, str]] = {
    "masked": ("#0ca30c", "#0ca30c"),  # status good
    "detected_recovered": ("#2a78d6", "#3987e5"),  # benign: series blue
    "degraded": ("#fab219", "#fab219"),  # status warning
    "hang": ("#ec835a", "#ec835a"),  # status serious
    "sdc": ("#d03b3b", "#d03b3b"),  # status critical
    "crash": ("#52514e", "#c3c2b7"),  # tooling failure: neutral ink
}

_PENDING = ("#e1e0d9", "#2c2c2a")  # gridline hairline: "not yet run"

_FAILURE_CLASSES = frozenset({"hang", "sdc", "crash"})

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; background: var(--page);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--ink);
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb; --ink: #0b0b0b;
  --ink-2: #52514e; --muted: #898781; --grid: #e1e0d9;
  --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --pending: #e1e0d9;
  --c-masked: #0ca30c; --c-detected_recovered: #2a78d6;
  --c-degraded: #fab219; --c-hang: #ec835a; --c-sdc: #d03b3b;
  --c-crash: #52514e;
  max-width: 1080px; margin: 0 auto; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19; --ink: #ffffff;
    --ink-2: #c3c2b7; --muted: #898781; --grid: #2c2c2a;
    --axis: #383835; --border: rgba(255,255,255,0.10);
    --pending: #2c2c2a;
    --c-detected_recovered: #3987e5; --c-crash: #c3c2b7;
  }
}
h1 { font-size: 20px; font-weight: 650; margin: 8px 0 2px; }
h2 { font-size: 15px; font-weight: 650; margin: 24px 0 8px; }
h3 { font-size: 13px; font-weight: 600; margin: 14px 0 6px; color: var(--ink-2); }
.sub { color: var(--ink-2); font-size: 12.5px; margin: 0 0 16px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 16px 18px; margin: 14px 0;
}
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 10px 0 4px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 108px;
}
.tile .v { font-size: 22px; font-weight: 650; }
.tile .k { font-size: 11.5px; color: var(--ink-2); margin-top: 2px; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 14px; font-size: 12px;
  color: var(--ink-2); margin: 6px 0 2px; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
table { border-collapse: collapse; font-size: 12.5px; margin-top: 8px; }
th, td { text-align: right; padding: 3px 12px 3px 0;
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
tbody tr { border-top: 1px solid var(--grid); }
svg text { fill: var(--muted); font-size: 11px;
  font-variant-numeric: tabular-nums; }
svg .lbl { fill: var(--ink-2); }
.note { color: var(--muted); font-size: 12px; }
code { font-size: 11.5px; color: var(--ink-2); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _class_label(name: str) -> str:
    return name.replace("_", " ")


def _fmt_rate(rate: float) -> str:
    return f"{rate:.0e}" if rate < 0.01 else f"{rate:g}"


def _severity(name: str) -> int:
    return CLASS_ORDER.index(name) if name in CLASS_ORDER else len(CLASS_ORDER)


def _legend(classes: Sequence[str], pending: bool = False) -> str:
    items = [
        f'<span><span class="sw" style="background:var(--c-{name})"></span>'
        f"{_esc(_class_label(name))}</span>"
        for name in classes
    ]
    if pending:
        items.append(
            '<span><span class="sw" style="background:var(--pending)"></span>'
            "pending</span>"
        )
    return f'<div class="legend">{"".join(items)}</div>'


def _stacked_bar(
    label: str, counts: Mapping[str, int], total: int, width: int = 640
) -> str:
    """One labelled horizontal stacked bar with 2px surface gaps."""
    bar_h, x = 18, 0.0
    segments: List[str] = []
    shown = [name for name in CLASS_ORDER if counts.get(name, 0)]
    for name in shown:
        count = counts[name]
        seg_w = width * count / max(total, 1)
        inner = max(seg_w - 2.0, 0.5)  # 2px gap to the next segment
        share = 100.0 * count / max(total, 1)
        segments.append(
            f'<rect x="{x:.1f}" y="0" width="{inner:.1f}" height="{bar_h}" '
            f'rx="4" fill="var(--c-{name})">'
            f"<title>{_esc(label)} — {_esc(_class_label(name))}: "
            f"{count} runs ({share:.1f}%)</title></rect>"
        )
        x += seg_w
    if not segments:
        segments.append(
            f'<rect x="0" y="0" width="{width}" height="{bar_h}" rx="4" '
            f'fill="var(--pending)"><title>{_esc(label)}: no runs recorded'
            "</title></rect>"
        )
    return (
        f'<div style="display:flex;align-items:center;gap:10px;margin:4px 0">'
        f'<span style="font-size:12px;color:var(--ink-2);width:120px;'
        f'text-align:right">{_esc(label)}</span>'
        f'<svg width="{width}" height="{bar_h}" role="img" '
        f'aria-label="{_esc(label)} outcome breakdown">'
        f'{"".join(segments)}</svg>'
        f'<span style="font-size:12px;color:var(--muted)">{total}</span>'
        f"</div>"
    )


def _counts_table(
    by_model: Mapping[str, Mapping[str, int]], overall: Mapping[str, int]
) -> str:
    head = "".join(
        f"<th>{_esc(_class_label(name))}</th>" for name in CLASS_ORDER
    )
    rows = []
    for model in sorted(by_model):
        counts = by_model[model]
        cells = "".join(
            f"<td>{counts.get(name, 0)}</td>" for name in CLASS_ORDER
        )
        rows.append(f"<tr><td>{_esc(model)}</td>{cells}</tr>")
    total_cells = "".join(
        f"<td>{overall.get(name, 0)}</td>" for name in CLASS_ORDER
    )
    rows.append(f"<tr><td><b>all</b></td>{total_cells}</tr>")
    return (
        f'<table><thead><tr><th>model</th>{head}</tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>'
    )


def _heatmap(
    records: Sequence[Mapping[str, Any]],
    pending_payloads: Sequence[Mapping[str, Any]],
    y_field: str,
) -> str:
    """Seed × rate/voltage coverage map, one cell per grid point.

    A cell holding several runs (model mixes or chip seeds sharing one
    (seed, y) point) takes its *worst* class, so green means every run
    at that point was clean.
    """
    seeds = sorted(
        {int(r["seed"]) for r in records}
        | {int(p["seed"]) for p in pending_payloads}
    )
    y_values = sorted(
        {float(r[y_field]) for r in records if r.get(y_field) is not None}
        | {
            float(p[y_field])
            for p in pending_payloads
            if p.get(y_field) is not None
        }
    )
    if not seeds or not y_values:
        return '<p class="note">no grid to map.</p>'
    worst: Dict[Tuple[int, float], str] = {}
    for record in records:
        if record.get(y_field) is None:
            continue
        point = (int(record["seed"]), float(record[y_field]))
        name = record["run_class"]
        if point not in worst or _severity(name) > _severity(worst[point]):
            worst[point] = name
    cell, gap, left, top = 16, 2, 64, 6
    width = left + len(seeds) * (cell + gap) + 10
    height = top + len(y_values) * (cell + gap) + 26
    parts: List[str] = []
    for yi, y_value in enumerate(y_values):
        y_px = top + yi * (cell + gap)
        parts.append(
            f'<text x="{left - 8}" y="{y_px + cell - 4}" '
            f'text-anchor="end">{_esc(_fmt_rate(y_value))}</text>'
        )
        for xi, seed in enumerate(seeds):
            x_px = left + xi * (cell + gap)
            name = worst.get((seed, y_value))
            fill = f"var(--c-{name})" if name else "var(--pending)"
            state = _class_label(name) if name else "pending"
            parts.append(
                f'<rect x="{x_px}" y="{y_px}" width="{cell}" height="{cell}" '
                f'rx="3" fill="{fill}"><title>seed {seed}, {y_field} '
                f"{_fmt_rate(y_value)}: {_esc(state)}</title></rect>"
            )
    step = max(1, len(seeds) // 16)
    for xi, seed in enumerate(seeds):
        if xi % step:
            continue
        x_px = left + xi * (cell + gap) + cell / 2
        parts.append(
            f'<text x="{x_px}" y="{height - 8}" text-anchor="middle">'
            f"{seed}</text>"
        )
    axis_note = "voltage (V)" if y_field == "voltage" else "fault rate"
    return (
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="coverage heatmap, seed by {axis_note}">'
        f'{"".join(parts)}</svg>'
        f'<p class="note">rows: {axis_note}; columns: seed; worst class '
        f"per cell.</p>"
    )


def _line_chart(
    title: str,
    points: Sequence[Tuple[float, float]],
    *,
    y_label: str,
    y_format: str = "{:.0f}",
) -> str:
    """One single-series 2px line with 8px markers over a log-ish rate axis."""
    if len(points) < 2:
        return (
            f"<h3>{_esc(title)}</h3>"
            f'<p class="note">needs at least two rate points '
            f"({len(points)} available).</p>"
        )
    width, height, left, right, top, bottom = 420, 170, 52, 14, 14, 30
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(max(ys), 1e-9)

    def px(x: float) -> float:
        if x_hi == x_lo:
            return left + (width - left - right) / 2
        return left + (width - left - right) * (x - x_lo) / (x_hi - x_lo)

    def py(y: float) -> float:
        return top + (height - top - bottom) * (1 - (y - y_lo) / (y_hi - y_lo))

    parts = []
    for frac in (0.0, 0.5, 1.0):
        y_val = y_lo + frac * (y_hi - y_lo)
        y_px = py(y_val)
        parts.append(
            f'<line x1="{left}" y1="{y_px:.1f}" x2="{width - right}" '
            f'y2="{y_px:.1f}" stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{left - 6}" y="{y_px + 4:.1f}" text-anchor="end">'
            f"{_esc(y_format.format(y_val))}</text>"
        )
    for x in sorted(set(xs)):
        parts.append(
            f'<text x="{px(x):.1f}" y="{height - 10}" text-anchor="middle">'
            f"{_esc(_fmt_rate(x))}</text>"
        )
    path = " ".join(
        f"{'M' if i == 0 else 'L'} {px(x):.1f} {py(y):.1f}"
        for i, (x, y) in enumerate(points)
    )
    parts.append(
        f'<path d="{path}" fill="none" stroke="var(--c-detected_recovered)" '
        f'stroke-width="2" stroke-linejoin="round"/>'
    )
    for x, y in points:
        parts.append(
            f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="4" '
            f'fill="var(--c-detected_recovered)" stroke="var(--surface-1)" '
            f'stroke-width="2"><title>rate {_fmt_rate(x)}: '
            f"{_esc(y_format.format(y))} {_esc(y_label)}</title></circle>"
        )
    return (
        f"<h3>{_esc(title)}</h3>"
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="{_esc(title)}">{"".join(parts)}</svg>'
    )


def _curves(records: Sequence[Mapping[str, Any]]) -> str:
    """MTTF and degradation curves over the rate axis."""
    by_rate: Dict[float, List[Mapping[str, Any]]] = {}
    for record in records:
        by_rate.setdefault(float(record["rate"]), []).append(record)
    mttf_points: List[Tuple[float, float]] = []
    degraded_points: List[Tuple[float, float]] = []
    for rate in sorted(by_rate):
        rate_records = by_rate[rate]
        failures = [
            float(r["instructions"])
            for r in rate_records
            if r["run_class"] in _FAILURE_CLASSES
        ]
        if failures:
            mttf_points.append((rate, sum(failures) / len(failures)))
        not_clean = sum(1 for r in rate_records if r["run_class"] != "masked")
        degraded_points.append(
            (rate, 100.0 * not_clean / max(len(rate_records), 1))
        )
    return (
        '<div style="display:flex;flex-wrap:wrap;gap:24px">'
        f"<div>{_line_chart('Mean instructions to failure', mttf_points, y_label='instructions')}</div>"
        f"<div>{_line_chart('Runs needing intervention', degraded_points, y_label='% of runs', y_format='{:.0f}%')}</div>"
        "</div>"
        '<p class="note">left: mean instructions completed by failing runs '
        "(hang/sdc/crash) per rate; right: share of runs not fully masked "
        "per rate.</p>"
    )


def _campaign_section(store: CampaignStore, summary: Mapping[str, Any]) -> str:
    key = summary["campaign_key"]
    spec = summary["spec"]
    records = store.query_records(key)
    recorded_keys = {r["run_key"] for r in records}
    pending_payloads = [
        cell["payload"]
        for cell in store.cells(key)
        if cell["run_key"] not in recorded_keys
    ]
    total = summary["total_cells"]
    counts = summary["counts"]
    by_model: Dict[str, Dict[str, int]] = {}
    for record in records:
        model_counts = by_model.setdefault(record["model"], {})
        model_counts[record["run_class"]] = (
            model_counts.get(record["run_class"], 0) + 1
        )
    voltages = [r.get("voltage") for r in records]
    y_field = (
        "voltage" if voltages and all(v is not None for v in voltages) else "rate"
    )
    done = len(records)
    failures = sum(counts.get(name, 0) for name in _FAILURE_CLASSES)
    tiles = "".join(
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(label)}</div></div>'
        for value, label in (
            (total, "grid cells"),
            (done, "recorded"),
            (f"{100.0 * done / max(total, 1):.0f}%", "complete"),
            (counts.get("sdc", 0), "sdc"),
            (failures, "failures (hang+sdc+crash)"),
            (counts.get("crash", 0), "crashes (bugs)"),
        )
    )
    bars = [_stacked_bar("all models", counts, max(done, 1))]
    for model in sorted(by_model):
        model_total = sum(by_model[model].values())
        bars.append(_stacked_bar(model, by_model[model], model_total))
    shown_classes = [
        name for name in CLASS_ORDER if counts.get(name, 0)
    ] or list(CLASS_ORDER)
    return (
        f'<div class="card">'
        f"<h2>{_esc(spec.get('workload', '?'))} campaign "
        f"<code>{_esc(key[:12])}</code></h2>"
        f'<p class="sub">rates {_esc(spec.get("rates"))} · models '
        f"{_esc(spec.get('models'))} · seeds {_esc(spec.get('seeds'))} · "
        f"chip seeds {_esc(spec.get('chip_seeds', 1))} · dvs "
        f"{_esc(spec.get('dvs'))}</p>"
        f'<div class="tiles">{tiles}</div>'
        f"<h3>Outcome taxonomy</h3>{_legend(shown_classes)}{''.join(bars)}"
        f"{_counts_table(by_model, counts)}"
        f"<h3>Coverage (seed × {_esc(y_field)})</h3>"
        f"{_legend(shown_classes, pending=bool(pending_payloads))}"
        f"{_heatmap(records, pending_payloads, y_field)}"
        f"{_curves(records)}"
        f"</div>"
    )


def render_dashboard(
    store: CampaignStore, campaign_key: Optional[str] = None
) -> str:
    """Render the store (or one campaign of it) as a standalone HTML page."""
    summaries = store.list_campaigns()
    if campaign_key is not None:
        summaries = [
            s for s in summaries if s["campaign_key"].startswith(campaign_key)
        ]
        if not summaries:
            raise KeyError(f"no campaign matching {campaign_key!r} in store")
    sections = "".join(
        _campaign_section(store, summary) for summary in summaries
    )
    if not sections:
        sections = '<div class="card"><p class="note">store is empty.</p></div>'
    total_records = sum(s["recorded"] for s in summaries)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        "<title>repro campaign dashboard</title>"
        f"<style>{_CSS}</style></head>"
        '<body><div class="viz-root">'
        "<h1>ParaDox injection-campaign dashboard</h1>"
        f'<p class="sub">{len(summaries)} campaign(s), {total_records} '
        f"recorded runs · store <code>{_esc(store.path)}</code> · schema "
        f"v{store.version}</p>"
        f"{sections}"
        "</div></body></html>\n"
    )


def write_dashboard(
    store_path: str, out_path: str, campaign_key: Optional[str] = None
) -> int:
    """Render ``store_path`` to ``out_path`` atomically; returns #campaigns."""
    from ..ioutil import atomic_write_text

    with CampaignStore(store_path) as store:
        page = render_dashboard(store, campaign_key)
        count = len(store.list_campaigns())
    atomic_write_text(out_path, page)
    return count


def dashboard_json(store: CampaignStore) -> List[Dict[str, Any]]:
    """The dashboard's underlying numbers, for the service's JSON API."""
    return json.loads(json.dumps(store.list_campaigns()))
