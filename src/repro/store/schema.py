"""Versioned SQLite schema for the campaign store.

The schema version lives in ``PRAGMA user_version``; opening a store
applies, inside one transaction per step, every migration between the
file's version and :data:`SCHEMA_VERSION`.  Migrations are append-only:
a released step is never edited, only followed — that is what makes a
store written by an older build readable (and upgradeable) by this one,
and what the migration tests pin.

Tables (current version):

* ``meta`` — free-form key/value (creation timestamp, code identity).
* ``campaigns`` — one row per registered campaign: its content hash
  (``campaign_key``), the full spec JSON, and the grid size.
* ``cells`` — the *planned* grid: every cell of every campaign, present
  from registration time so coverage queries can tell "pending" from
  "was never part of the grid".  Keyed by the content-addressed run key.
* ``run_records`` — one row per *completed* cell: the classification
  plus the full record JSON.  A cell with no record is pending.
* ``metrics_snapshots`` — per-run telemetry metrics (traced campaigns).
* ``artifacts`` — opaque per-run artifacts, e.g. the raw trace event
  stream (added in v2).
* ``explore_searches`` / ``explore_evaluations`` — the explore
  namespace (added in v3): one row per design-space search, and one row
  per evaluated genome with its generation of first evaluation, its
  gene values, its objective vector, and the campaign that scored it.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, List

#: Current schema version (``PRAGMA user_version`` of a fresh store).
SCHEMA_VERSION = 3

_V1_STATEMENTS = (
    """
    CREATE TABLE meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE campaigns (
        campaign_key TEXT PRIMARY KEY,
        spec_json TEXT NOT NULL,
        created_at TEXT NOT NULL,
        total_cells INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE cells (
        run_key TEXT PRIMARY KEY,
        campaign_key TEXT NOT NULL REFERENCES campaigns(campaign_key),
        run_id INTEGER NOT NULL,
        payload_json TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE run_records (
        run_key TEXT PRIMARY KEY REFERENCES cells(run_key),
        campaign_key TEXT NOT NULL,
        run_id INTEGER NOT NULL,
        run_class TEXT NOT NULL,
        seed INTEGER NOT NULL,
        rate REAL NOT NULL,
        model TEXT NOT NULL,
        workload TEXT NOT NULL,
        chip_seed INTEGER NOT NULL,
        outcome TEXT,
        detail TEXT NOT NULL,
        recoveries INTEGER NOT NULL,
        faults_injected INTEGER NOT NULL,
        instructions INTEGER NOT NULL,
        duration_s REAL NOT NULL,
        record_json TEXT NOT NULL,
        recorded_at TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE metrics_snapshots (
        run_key TEXT PRIMARY KEY REFERENCES run_records(run_key),
        metrics_json TEXT NOT NULL
    )
    """,
    "CREATE INDEX idx_cells_campaign ON cells(campaign_key, run_id)",
    "CREATE INDEX idx_records_campaign ON run_records(campaign_key, run_id)",
    "CREATE INDEX idx_records_class ON run_records(campaign_key, run_class)",
)

_V2_STATEMENTS = (
    # The supply voltage a cell pinned (NULL = derived from DVS/rate):
    # queryable directly so dashboards can build voltage axes without
    # parsing payload JSON.
    "ALTER TABLE run_records ADD COLUMN voltage REAL",
    """
    CREATE TABLE artifacts (
        run_key TEXT NOT NULL REFERENCES run_records(run_key),
        kind TEXT NOT NULL,
        content TEXT NOT NULL,
        PRIMARY KEY (run_key, kind)
    )
    """,
)


_V3_STATEMENTS = (
    # The explore namespace: design-space searches and their genome
    # evaluations.  A search is identified by the content hash of its
    # spec; an evaluation by (search, genome content hash).  The
    # generation column records the generation a genome was *first*
    # evaluated in — re-encounters in later generations are store hits.
    """
    CREATE TABLE explore_searches (
        explore_key TEXT PRIMARY KEY,
        spec_json TEXT NOT NULL,
        created_at TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE explore_evaluations (
        explore_key TEXT NOT NULL REFERENCES explore_searches(explore_key),
        genome_key TEXT NOT NULL,
        generation INTEGER NOT NULL,
        genome_json TEXT NOT NULL,
        objectives_json TEXT NOT NULL,
        campaign_key TEXT NOT NULL,
        recorded_at TEXT NOT NULL,
        PRIMARY KEY (explore_key, genome_key)
    )
    """,
    "CREATE INDEX idx_explore_generation "
    "ON explore_evaluations(explore_key, generation)",
)


def _migrate_v1(conn: sqlite3.Connection) -> None:
    for statement in _V1_STATEMENTS:
        conn.execute(statement)


def _migrate_v2(conn: sqlite3.Connection) -> None:
    for statement in _V2_STATEMENTS:
        conn.execute(statement)


def _migrate_v3(conn: sqlite3.Connection) -> None:
    for statement in _V3_STATEMENTS:
        conn.execute(statement)


#: Append-only migration chain; ``MIGRATIONS[i]`` takes a store from
#: version ``i`` to ``i + 1``.
MIGRATIONS: List[Callable[[sqlite3.Connection], None]] = [
    _migrate_v1,
    _migrate_v2,
    _migrate_v3,
]

assert len(MIGRATIONS) == SCHEMA_VERSION


def schema_version(conn: sqlite3.Connection) -> int:
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def migrate(conn: sqlite3.Connection, *, upto: int = SCHEMA_VERSION) -> int:
    """Bring ``conn`` to schema version ``upto``; returns the new version.

    Each step runs in its own transaction, so an interrupt mid-migration
    leaves the store at a consistent (older) version, never in between.
    """
    current = schema_version(conn)
    if current > upto:
        raise SchemaTooNew(
            f"store is schema v{current}; this build supports up to v{upto} "
            "(upgrade the repro package to open it)"
        )
    while current < upto:
        step = MIGRATIONS[current]
        with conn:  # one transaction per migration step
            step(conn)
            current += 1
            conn.execute(f"PRAGMA user_version = {current}")
    return current


class SchemaTooNew(RuntimeError):
    """The store was written by a newer build than this one."""
