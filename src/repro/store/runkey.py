"""Content-addressed identity for campaign cells and campaigns.

A *cell* is one point of a campaign grid — everything that determines
one simulation's result.  Its **run key** is the SHA-256 of the
canonicalised cell spec, so identity is a pure function of content:

* a re-launched campaign recognises completed cells in the store by key
  and skips them, provably producing the same record an uninterrupted
  run would have;
* two machines sharding one campaign agree on which cells belong to
  which shard without coordination (``shard_of``);
* merged stores deduplicate naturally (``INSERT OR IGNORE`` on the key).

Canonicalisation rules (pinned by golden-hash tests):

* exactly the fields in :data:`CELL_FIELDS`, in sorted-key compact JSON
  (``sort_keys=True``, ``separators=(",", ":")``);
* numeric fields normalised (``seed``/``chip_seed`` to int, ``scale``/
  ``rate``/``initial_margin``/``voltage`` to float — Python float repr
  is shortest-roundtrip and platform-stable);
* absent optional fields serialised as ``null``, so "no pinned voltage"
  and a missing key hash identically;
* the one exception: the optional ``overrides`` block (the explore
  layer's config-space genome) is **omitted entirely** when absent or
  empty, never serialised as ``null`` — fields added after v1 must not
  perturb the keys of cells that do not use them, or every pre-existing
  store would stop resuming;
* positional bookkeeping (``run_id``) excluded — a cell's identity must
  not depend on where the grid enumeration placed it;
* a code-identity salt (:data:`CODE_IDENTITY`) folded in.  Bump it when
  simulation semantics change such that old results are no longer what
  the current code would produce; every stored record is then invisible
  to resume and re-runs from scratch.

Campaign keys hash the spec the same way, minus the fields that cannot
change results (``workers``, ``timeout_s``) — so a campaign resumed at a
different ``--jobs`` width or watchdog deadline is the *same* campaign.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Tuple

#: Salt folded into every run key.  Bump the trailing version when the
#: simulator's semantics change incompatibly (stored records would no
#: longer match what current code produces).
CODE_IDENTITY = "paradox-repro/cell/v1"

#: Cell-spec fields that participate in the run key, with normalisers.
CELL_FIELDS: Tuple[Tuple[str, Any], ...] = (
    ("workload", str),
    ("scale", float),
    ("seed", int),
    ("rate", float),
    ("model", str),
    ("dvs", bool),
    ("initial_margin", float),
    ("chip_seed", int),
    ("voltage", float),  # optional: None stays None
    ("tracing", bool),
    ("hook", str),  # optional test drill: None stays None
)

#: Spec fields excluded from the campaign key: they change how fast or
#: how patiently a campaign runs, never what any cell computes.
EXECUTION_ONLY_SPEC_FIELDS = ("workers", "timeout_s")


def _canonical_json(payload: Mapping[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_cell(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalise one expanded campaign payload to its canonical cell spec."""
    cell: Dict[str, Any] = {"identity": CODE_IDENTITY}
    for name, cast in CELL_FIELDS:
        value = payload.get(name)
        cell[name] = None if value is None else cast(value)
    overrides = payload.get("overrides")
    if overrides:
        # Omitted (not null) when absent/empty: cells without overrides
        # must keep their pre-overrides v1 keys, or old stores would
        # stop resuming.  Values keep their int/float type — the genome
        # codec quantises each gene to a fixed type, and int vs float
        # JSON text differs (10 vs 10.0).
        cell["overrides"] = {
            str(key): (int(value) if isinstance(value, int) else float(value))
            for key, value in overrides.items()
        }
    main_cores = payload.get("main_cores")
    if main_cores is not None and int(main_cores) > 1:
        # Same omit-when-absent contract as ``overrides``: single-core
        # cells must keep their pre-multicore v1 keys.
        cell["main_cores"] = int(main_cores)
        cell["pool_policy"] = str(payload.get("pool_policy") or "steal")
    return cell


def run_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest identifying one campaign cell."""
    blob = _canonical_json(canonical_cell(payload))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def canonical_spec(spec_dict: Mapping[str, Any]) -> Dict[str, Any]:
    """A campaign spec dict minus execution-only fields, JSON-normalised."""
    spec: Dict[str, Any] = {}
    for name, value in spec_dict.items():
        if name in EXECUTION_ONLY_SPEC_FIELDS:
            continue
        if name == "hooks":
            value = {str(key): hook for key, hook in dict(value).items()}
        spec[name] = value
    spec["identity"] = CODE_IDENTITY
    return spec


def campaign_key(spec_dict: Mapping[str, Any]) -> str:
    """SHA-256 hex digest identifying one campaign (grid + semantics)."""
    blob = _canonical_json(canonical_spec(spec_dict))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def shard_of(key: str, shards: int) -> int:
    """Deterministic shard index (0-based) of a run key among ``shards``."""
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return int(key[:16], 16) % shards


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``K/N`` (1-based K) into a ``(k, n)`` tuple, validated."""
    try:
        k_text, n_text = text.split("/", 1)
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise ValueError(f"--shard expects K/N (e.g. 2/4), got {text!r}")
    if n < 1 or not 1 <= k <= n:
        raise ValueError(f"--shard K/N requires 1 <= K <= N, got {text!r}")
    return k, n
