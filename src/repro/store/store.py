"""The persistent campaign store: a WAL-mode SQLite database.

One store file can hold many campaigns.  Campaigns and cells are
registered up front (the *planned* grid), and results stream in
incrementally — one transaction per classified run — so a campaign
killed at any instant leaves a store containing exactly the runs that
finished, each complete.  Relaunching with ``resume`` then skips every
recorded cell by content-addressed run key.

The store speaks plain dicts (payloads, record dicts, metrics dicts) so
it has no dependency on the campaign layer; :mod:`repro.resilience.
campaign` converts to/from :class:`~repro.resilience.campaign.RunRecord`
at its boundary.

Connections are **not** shared across threads: every thread (and every
HTTP request in ``repro serve``) opens its own :class:`CampaignStore`.
WAL mode makes concurrent readers + one writer safe across connections
and processes.
"""

from __future__ import annotations

import datetime
import json
import os
import sqlite3
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .schema import SCHEMA_VERSION, migrate, schema_version


class StoreError(RuntimeError):
    """A store-level precondition failed (not a SQLite error)."""


def _now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


def _dumps(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


#: Tables copied (in dependency order) by :meth:`CampaignStore.merge_from`.
_MERGE_TABLES = (
    "campaigns",
    "cells",
    "run_records",
    "metrics_snapshots",
    "artifacts",
    "explore_searches",
    "explore_evaluations",
)


class CampaignStore:
    """One connection to a campaign store file."""

    def __init__(self, path: str, *, timeout_s: float = 30.0) -> None:
        self.path = path
        fresh = not os.path.exists(path)
        try:
            self._conn = sqlite3.connect(path, timeout=timeout_s)
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            migrate(self._conn)
        except sqlite3.DatabaseError as exc:
            # A garbage path (not SQLite at all, or a pre-v1 file some
            # other tool wrote) should surface as a store-level error
            # the CLI can print, not a traceback.
            raise StoreError(
                f"{path!r} is not a campaign store ({exc}); expected a "
                "SQLite file created by `repro campaign --store` or "
                "`repro store merge`"
            ) from exc
        if fresh:
            with self._conn:
                self._conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                    ("created_at", _now()),
                )

    # ------------------------------------------------------------- lifecycle --

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def version(self) -> int:
        return schema_version(self._conn)

    def journal_mode(self) -> str:
        return str(self._conn.execute("PRAGMA journal_mode").fetchone()[0])

    # ---------------------------------------------------------- registration --

    def register_campaign(
        self,
        campaign_key: str,
        spec_dict: Mapping[str, Any],
        cells: Sequence[Tuple[str, int, Mapping[str, Any]]],
    ) -> None:
        """Idempotently register a campaign and its full planned grid.

        ``cells`` is ``(run_key, run_id, payload)`` per grid point.  Safe
        to call again on relaunch: existing rows are left untouched, and
        a registration interrupted mid-grid is completed.
        """
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO campaigns "
                "(campaign_key, spec_json, created_at, total_cells) "
                "VALUES (?, ?, ?, ?)",
                (campaign_key, _dumps(dict(spec_dict)), _now(), len(cells)),
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO cells "
                "(run_key, campaign_key, run_id, payload_json) "
                "VALUES (?, ?, ?, ?)",
                (
                    (run_key, campaign_key, run_id, _dumps(dict(payload)))
                    for run_key, run_id, payload in cells
                ),
            )

    def campaign_spec(self, campaign_key: str) -> Dict[str, Any]:
        row = self._conn.execute(
            "SELECT spec_json FROM campaigns WHERE campaign_key = ?",
            (campaign_key,),
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign {campaign_key!r} in {self.path}")
        return json.loads(row["spec_json"])

    def list_campaigns(self) -> List[Dict[str, Any]]:
        """Every campaign with its grid size, completion, and class counts."""
        campaigns = []
        for row in self._conn.execute(
            "SELECT campaign_key, spec_json, created_at, total_cells "
            "FROM campaigns ORDER BY created_at"
        ):
            key = row["campaign_key"]
            spec = json.loads(row["spec_json"])
            campaigns.append(
                {
                    "campaign_key": key,
                    "created_at": row["created_at"],
                    "total_cells": row["total_cells"],
                    "recorded": self.recorded_count(key),
                    "counts": self.counts(key),
                    "workload": spec.get("workload"),
                    "spec": spec,
                }
            )
        return campaigns

    # --------------------------------------------------------------- results --

    def record_run(
        self,
        campaign_key: str,
        run_key: str,
        record_dict: Mapping[str, Any],
        *,
        metrics: Optional[Mapping[str, Any]] = None,
        trace: Optional[Sequence[Mapping[str, Any]]] = None,
        voltage: Optional[float] = None,
    ) -> None:
        """Persist one classified run — one transaction, crash-atomic.

        ``record_dict`` is a :meth:`RunRecord.to_dict`-shaped mapping
        *without* its telemetry payloads; metrics and the raw trace are
        stored in their own tables so record queries stay cheap.
        """
        record = {
            key: value
            for key, value in dict(record_dict).items()
            if key not in ("metrics", "trace")
        }
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO run_records "
                "(run_key, campaign_key, run_id, run_class, seed, rate, model,"
                " workload, chip_seed, outcome, detail, recoveries,"
                " faults_injected, instructions, duration_s, record_json,"
                " recorded_at, voltage) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_key,
                    campaign_key,
                    record["run_id"],
                    record["run_class"],
                    record["seed"],
                    record["rate"],
                    record["model"],
                    record["workload"],
                    record["chip_seed"],
                    record.get("outcome"),
                    record.get("detail", ""),
                    record.get("recoveries", 0),
                    record.get("faults_injected", 0),
                    record.get("instructions", 0),
                    record.get("duration_s", 0.0),
                    _dumps(record),
                    _now(),
                    voltage,
                ),
            )
            if metrics is not None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO metrics_snapshots "
                    "(run_key, metrics_json) VALUES (?, ?)",
                    (run_key, _dumps(dict(metrics))),
                )
            if trace is not None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO artifacts "
                    "(run_key, kind, content) VALUES (?, 'trace', ?)",
                    (run_key, _dumps(list(trace))),
                )

    def completed_keys(self, campaign_key: str) -> set:
        """Run keys of every recorded cell of a campaign."""
        return {
            row["run_key"]
            for row in self._conn.execute(
                "SELECT run_key FROM run_records WHERE campaign_key = ?",
                (campaign_key,),
            )
        }

    def recorded_count(self, campaign_key: str) -> int:
        return int(
            self._conn.execute(
                "SELECT COUNT(*) FROM run_records WHERE campaign_key = ?",
                (campaign_key,),
            ).fetchone()[0]
        )

    def load_record(self, run_key: str) -> Optional[Dict[str, Any]]:
        """One record dict with its metrics/trace re-attached, or None."""
        row = self._conn.execute(
            "SELECT record_json FROM run_records WHERE run_key = ?", (run_key,)
        ).fetchone()
        if row is None:
            return None
        record = json.loads(row["record_json"])
        metrics_row = self._conn.execute(
            "SELECT metrics_json FROM metrics_snapshots WHERE run_key = ?",
            (run_key,),
        ).fetchone()
        record["metrics"] = (
            json.loads(metrics_row["metrics_json"]) if metrics_row else None
        )
        trace_row = self._conn.execute(
            "SELECT content FROM artifacts WHERE run_key = ? AND kind = 'trace'",
            (run_key,),
        ).fetchone()
        record["trace"] = json.loads(trace_row["content"]) if trace_row else None
        return record

    def load_records(self, campaign_key: str) -> List[Dict[str, Any]]:
        """Every record of a campaign (metrics/trace attached), run-id order."""
        keys = [
            row["run_key"]
            for row in self._conn.execute(
                "SELECT run_key FROM run_records WHERE campaign_key = ? "
                "ORDER BY run_id",
                (campaign_key,),
            )
        ]
        records = [self.load_record(key) for key in keys]
        return [record for record in records if record is not None]

    # --------------------------------------------------------------- queries --

    def counts(self, campaign_key: str) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for row in self._conn.execute(
            "SELECT run_class, COUNT(*) AS n FROM run_records "
            "WHERE campaign_key = ? GROUP BY run_class",
            (campaign_key,),
        ):
            counts[row["run_class"]] = int(row["n"])
        return counts

    def pending_cells(self, campaign_key: str) -> List[Tuple[str, int]]:
        """Registered cells with no record yet, as (run_key, run_id)."""
        return [
            (row["run_key"], int(row["run_id"]))
            for row in self._conn.execute(
                "SELECT c.run_key, c.run_id FROM cells c "
                "LEFT JOIN run_records r ON r.run_key = c.run_key "
                "WHERE c.campaign_key = ? AND r.run_key IS NULL "
                "ORDER BY c.run_id",
                (campaign_key,),
            )
        ]

    def cells(self, campaign_key: str) -> List[Dict[str, Any]]:
        """The planned grid: (run_key, run_id, payload) per cell."""
        return [
            {
                "run_key": row["run_key"],
                "run_id": int(row["run_id"]),
                "payload": json.loads(row["payload_json"]),
            }
            for row in self._conn.execute(
                "SELECT run_key, run_id, payload_json FROM cells "
                "WHERE campaign_key = ? ORDER BY run_id",
                (campaign_key,),
            )
        ]

    def query_records(
        self,
        campaign_key: Optional[str] = None,
        *,
        run_class: Optional[str] = None,
        model: Optional[str] = None,
        seed: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Summary rows (no telemetry payloads) matching the filters."""
        clauses, params = [], []
        for column, value in (
            ("campaign_key", campaign_key),
            ("run_class", run_class),
            ("model", model),
            ("seed", seed),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = (
            "SELECT run_key, campaign_key, run_id, run_class, seed, rate,"
            " model, workload, chip_seed, outcome, detail, recoveries,"
            " faults_injected, instructions, duration_s, voltage, recorded_at"
            " FROM run_records"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY campaign_key, run_id"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [dict(row) for row in self._conn.execute(sql, params)]

    def metrics_snapshots(self, campaign_key: str) -> List[Optional[Dict[str, Any]]]:
        """Per-record metrics (None where untraced), run-id order."""
        snapshots = []
        for row in self._conn.execute(
            "SELECT r.run_key, m.metrics_json FROM run_records r "
            "LEFT JOIN metrics_snapshots m ON m.run_key = r.run_key "
            "WHERE r.campaign_key = ? ORDER BY r.run_id",
            (campaign_key,),
        ):
            snapshots.append(
                json.loads(row["metrics_json"]) if row["metrics_json"] else None
            )
        return snapshots

    # --------------------------------------------------------------- explore --

    def register_explore(
        self, explore_key: str, spec_dict: Mapping[str, Any]
    ) -> None:
        """Idempotently register a design-space search (v3 namespace)."""
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO explore_searches "
                "(explore_key, spec_json, created_at) VALUES (?, ?, ?)",
                (explore_key, _dumps(dict(spec_dict)), _now()),
            )

    def record_evaluation(
        self,
        explore_key: str,
        genome_key: str,
        generation: int,
        genome: Mapping[str, Any],
        objectives: Mapping[str, Any],
        campaign_key: str,
    ) -> None:
        """Persist one genome evaluation — first writer wins.

        ``INSERT OR IGNORE`` keeps the *original* generation when a
        genome is re-encountered (by a later generation, or by a resumed
        search re-playing the loop), so resume reproduces the
        uninterrupted history exactly.
        """
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO explore_evaluations "
                "(explore_key, genome_key, generation, genome_json,"
                " objectives_json, campaign_key, recorded_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    explore_key,
                    genome_key,
                    int(generation),
                    _dumps(dict(genome)),
                    _dumps(dict(objectives)),
                    campaign_key,
                    _now(),
                ),
            )

    def load_evaluations(self, explore_key: str) -> List[Dict[str, Any]]:
        """Every evaluation of a search, (generation, genome_key) order."""
        return [
            {
                "genome_key": row["genome_key"],
                "generation": int(row["generation"]),
                "genome": json.loads(row["genome_json"]),
                "objectives": json.loads(row["objectives_json"]),
                "campaign_key": row["campaign_key"],
            }
            for row in self._conn.execute(
                "SELECT genome_key, generation, genome_json, objectives_json,"
                " campaign_key FROM explore_evaluations "
                "WHERE explore_key = ? ORDER BY generation, genome_key",
                (explore_key,),
            )
        ]

    def list_explores(self) -> List[Dict[str, Any]]:
        """Every registered search with its evaluation count."""
        return [
            {
                "explore_key": row["explore_key"],
                "created_at": row["created_at"],
                "spec": json.loads(row["spec_json"]),
                "evaluations": int(
                    self._conn.execute(
                        "SELECT COUNT(*) FROM explore_evaluations "
                        "WHERE explore_key = ?",
                        (row["explore_key"],),
                    ).fetchone()[0]
                ),
            }
            for row in self._conn.execute(
                "SELECT explore_key, spec_json, created_at "
                "FROM explore_searches ORDER BY created_at"
            )
        ]

    # ----------------------------------------------------------------- merge --

    def merge_from(self, other_path: str) -> Dict[str, int]:
        """Fold another store's campaigns/records into this one.

        Content-addressed keys make this idempotent and order-free:
        rows already present are ignored, so shard stores produced by
        ``repro campaign --shard K/N`` on different machines merge into
        the same store an unsharded run would have produced.  Returns
        rows-added per table.
        """
        if os.path.abspath(other_path) == os.path.abspath(self.path):
            raise StoreError("cannot merge a store into itself")
        # Opening migrates the source to the current schema first.
        with CampaignStore(other_path):
            pass
        self._conn.execute("ATTACH DATABASE ? AS src", (other_path,))
        added: Dict[str, int] = {}
        try:
            with self._conn:
                for table in _MERGE_TABLES:
                    before = self._conn.total_changes
                    self._conn.execute(
                        f"INSERT OR IGNORE INTO {table} "
                        f"SELECT * FROM src.{table}"
                    )
                    added[table] = self._conn.total_changes - before
        finally:
            self._conn.execute("DETACH DATABASE src")
        return added


def open_store(path: str) -> CampaignStore:
    """Convenience constructor (mirrors :func:`sqlite3.connect`)."""
    return CampaignStore(path)
