"""Persistent, queryable campaign results (the service's memory).

ParaDox's headline numbers are statistical: they emerge from sweeps
over seeds × voltages × fault models × chip maps far too large to rerun
on a whim or hold in one process's memory.  This package makes such
campaigns durable and addressable:

* :mod:`repro.store.runkey` — content-addressed identity: a stable
  SHA-256 over the canonicalised cell spec, so "has this exact
  simulation already run?" is a key lookup, resume is provably
  bit-identical, and shards partition deterministically.
* :mod:`repro.store.schema` — the WAL-mode SQLite schema and its
  append-only, versioned migration chain.
* :mod:`repro.store.store` — :class:`CampaignStore`: incremental
  per-run writes, pending/completed queries, and shard merging.
* :mod:`repro.store.dashboard` — the self-contained HTML dashboard
  (``repro report``): outcome taxonomy, coverage heatmaps, MTTF and
  degradation curves.

See ``docs/SERVICE.md`` for the schema, the run-key canonicalisation
rules, and the server API built on top of this package.
"""

from .dashboard import render_dashboard, write_dashboard
from .runkey import (
    CODE_IDENTITY,
    campaign_key,
    canonical_cell,
    canonical_spec,
    parse_shard,
    run_key,
    shard_of,
)
from .schema import SCHEMA_VERSION, SchemaTooNew, migrate, schema_version
from .store import CampaignStore, StoreError, open_store

__all__ = [
    "CODE_IDENTITY",
    "CampaignStore",
    "SCHEMA_VERSION",
    "SchemaTooNew",
    "StoreError",
    "campaign_key",
    "canonical_cell",
    "canonical_spec",
    "migrate",
    "open_store",
    "parse_shard",
    "render_dashboard",
    "run_key",
    "schema_version",
    "shard_of",
    "write_dashboard",
]
