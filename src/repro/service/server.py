"""``repro serve`` — the long-lived campaign service (stdlib only).

A :class:`ThreadingHTTPServer` front end over :class:`~repro.service.
jobs.JobRunner`: requests are handled concurrently (one thread each,
streaming endpoints included) while jobs execute one at a time on the
runner thread, fanning worker processes out through the existing
:mod:`repro.parallel` layer.  No third-party runtime dependency is
involved anywhere.

API (all JSON unless noted):

* ``POST /jobs`` — submit ``{"kind": "campaign" | "fuzz" | "suite",
  "params": {...}}``; returns the job object (``201``).
* ``GET /jobs`` — every job, submission order.
* ``GET /jobs/<id>`` — one job's state/result.
* ``GET /jobs/<id>/events[?offset=N&follow=1]`` — the job's JSONL
  telemetry stream.  Plain tail by default (with ``X-Events-Offset``
  for resumption); ``follow=1`` streams lines as they are appended
  until the job reaches a terminal state.
* ``GET /store/campaigns`` — campaigns in the service store.
* ``GET /store/campaigns/<key>`` — one campaign summary (key prefixes
  accepted).
* ``GET /store/campaigns/<key>/runs[?class=&model=&seed=&limit=]`` —
  run records, filterable.
* ``GET /dashboard`` — the store rendered as the live HTML dashboard.
* ``GET /healthz`` — liveness.

Campaign jobs write into one shared store file, so the ``/store``
endpoints and the dashboard accumulate across jobs, and resubmitting a
campaign resumes it (content-addressed run keys dedupe completed
cells).
"""

from __future__ import annotations

import json
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..store import CampaignStore, render_dashboard
from .jobs import JobError, JobRunner

#: Follow-mode poll interval; also bounds shutdown latency of streams.
_FOLLOW_POLL_S = 0.1


class ReproHTTPServer(ThreadingHTTPServer):
    """The HTTP server plus the service state handlers reach for."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        runner: JobRunner,
        *,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.runner = runner
        self.quiet = quiet


class ServiceHandler(BaseHTTPRequestHandler):
    server: ReproHTTPServer

    # ------------------------------------------------------------- plumbing --

    def log_message(self, format: str, *args: Any) -> None:
        if not self.server.quiet:  # pragma: no cover - logging cosmetics
            super().log_message(format, *args)

    def _send_json(
        self,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise JobError("request body required")
        blob = self.rfile.read(length)
        try:
            return json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise JobError("request body is not valid JSON")

    def _open_store(self) -> CampaignStore:
        # One connection per request thread: SQLite connections are not
        # shared across threads; WAL makes concurrent readers safe.
        return CampaignStore(self.server.runner.store_path)

    # --------------------------------------------------------------- routing --

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urllib.parse.urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(url.query).items()
        }
        try:
            if parts == ["healthz"]:
                self._send_json({"ok": True})
            elif parts == ["jobs"]:
                self._send_json(
                    {"jobs": [job.to_dict() for job in self.server.runner.jobs()]}
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                self._get_job(parts[1])
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                self._get_events(parts[1], query)
            elif parts == ["store", "campaigns"]:
                with self._open_store() as store:
                    self._send_json({"campaigns": store.list_campaigns()})
            elif len(parts) == 3 and parts[:2] == ["store", "campaigns"]:
                self._get_campaign(parts[2])
            elif (
                len(parts) == 4
                and parts[:2] == ["store", "campaigns"]
                and parts[3] == "runs"
            ):
                self._get_runs(parts[2], query)
            elif parts == ["dashboard"]:
                self._get_dashboard()
            else:
                self._error(404, f"no such endpoint: GET {url.path}")
        except BrokenPipeError:  # client went away mid-stream
            pass

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urllib.parse.urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if parts != ["jobs"]:
            self._error(404, f"no such endpoint: POST {url.path}")
            return
        try:
            body = self._read_body()
            if not isinstance(body, dict):
                raise JobError("body must be a JSON object")
            kind = body.get("kind")
            if not isinstance(kind, str):
                raise JobError('body must carry a "kind" string')
            params = body.get("params") or {}
            if not isinstance(params, dict):
                raise JobError('"params" must be a JSON object')
            job = self.server.runner.submit(kind, params)
        except JobError as error:
            self._error(400, str(error))
            return
        self._send_json(job.to_dict(), 201)

    # -------------------------------------------------------------- handlers --

    def _resolve_job(self, job_id: str):
        job = self.server.runner.get(job_id)
        if job is None:
            self._error(404, f"no job {job_id!r}")
        return job

    def _get_job(self, job_id: str) -> None:
        job = self._resolve_job(job_id)
        if job is not None:
            self._send_json(job.to_dict())

    def _get_events(self, job_id: str, query: Dict[str, str]) -> None:
        from ..telemetry.stream import tail_jsonl

        job = self._resolve_job(job_id)
        if job is None:
            return
        try:
            offset = int(query.get("offset", 0))
        except ValueError:
            self._error(400, "offset must be an integer")
            return
        follow = query.get("follow") in ("1", "true", "yes")
        if not follow:
            offset, events = tail_jsonl(job.events_path, offset)
            body = "".join(
                json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
                for event in events
            ).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("X-Events-Offset", str(offset))
            self.end_headers()
            self.wfile.write(body)
            return
        # Follow mode: stream appended lines until the job is terminal.
        # No Content-Length — HTTP/1.0 close-at-end delimits the body.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        while True:
            offset, events = tail_jsonl(job.events_path, offset)
            for event in events:
                line = json.dumps(
                    event, sort_keys=True, separators=(",", ":")
                )
                self.wfile.write((line + "\n").encode("utf-8"))
            self.wfile.flush()
            if job.terminal and not events:
                return
            if not events:
                time.sleep(_FOLLOW_POLL_S)

    def _match_campaign(self, store: CampaignStore, key_prefix: str):
        matches = [
            summary
            for summary in store.list_campaigns()
            if summary["campaign_key"].startswith(key_prefix)
        ]
        if not matches:
            self._error(404, f"no campaign matching {key_prefix!r}")
            return None
        if len(matches) > 1:
            self._error(
                400,
                f"campaign key prefix {key_prefix!r} is ambiguous "
                f"({len(matches)} matches)",
            )
            return None
        return matches[0]

    def _get_campaign(self, key_prefix: str) -> None:
        with self._open_store() as store:
            summary = self._match_campaign(store, key_prefix)
            if summary is None:
                return
            key = summary["campaign_key"]
            summary = dict(summary)
            summary["pending"] = len(store.pending_cells(key))
            self._send_json(summary)

    def _get_runs(self, key_prefix: str, query: Dict[str, str]) -> None:
        with self._open_store() as store:
            summary = self._match_campaign(store, key_prefix)
            if summary is None:
                return
            try:
                limit = (
                    int(query["limit"]) if "limit" in query else None
                )
                seed = int(query["seed"]) if "seed" in query else None
            except ValueError:
                self._error(400, "limit/seed must be integers")
                return
            records = store.query_records(
                summary["campaign_key"],
                run_class=query.get("class"),
                model=query.get("model"),
                seed=seed,
                limit=limit,
            )
            self._send_json({"runs": records, "count": len(records)})

    def _get_dashboard(self) -> None:
        with self._open_store() as store:
            page = render_dashboard(store)
        body = page.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def create_server(
    host: str = "127.0.0.1",
    port: int = 8337,
    *,
    work_dir: str = "repro-service",
    store_path: Optional[str] = None,
    quiet: bool = True,
) -> ReproHTTPServer:
    """Build the service (bound but not serving; call ``serve_forever``).

    ``port=0`` binds an ephemeral port (see ``server_address[1]``) —
    the form the tests use.
    """
    runner = JobRunner(work_dir, store_path)
    return ReproHTTPServer((host, port), runner, quiet=quiet)


def serve(
    host: str = "127.0.0.1",
    port: int = 8337,
    *,
    work_dir: str = "repro-service",
    store_path: Optional[str] = None,
    quiet: bool = True,
) -> None:
    """Run the service until interrupted (the ``repro serve`` entry)."""
    server = create_server(
        host, port, work_dir=work_dir, store_path=store_path, quiet=quiet
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"repro service on http://{bound_host}:{bound_port}")
    print(f"  store:    {server.runner.store_path}")
    print(f"  work dir: {server.runner.work_dir}")
    print("  POST /jobs · GET /jobs/<id>/events?follow=1 · GET /dashboard")
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.runner.shutdown()
        server.server_close()
