"""The job model and runner behind ``repro serve``.

A *job* is one long-running unit of work submitted over HTTP: an
injection campaign, a differential fuzz sweep, or a SPEC-proxy suite.
Jobs are queued and executed one at a time by a dedicated runner thread
— each job already saturates the machine through
:func:`repro.parallel.run_fanout`, so stacking jobs would only make
their watchdogs lie.  Every job appends telemetry to its own JSONL
event file (:class:`repro.telemetry.stream.JsonlAppender`), which the
server's ``/jobs/<id>/events`` endpoint tails live.

Campaign jobs write through the persistent store
(:mod:`repro.store`), one shared file per service instance, so the
``/store`` query endpoints and the dashboard see every campaign the
service ever ran — and a resubmitted campaign resumes instead of
recomputing.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..telemetry.stream import JsonlAppender

#: Job kinds the service accepts, mapped to their executors below.
JOB_KINDS = ("campaign", "fuzz", "suite")

#: CampaignSpec fields a campaign job may set (everything else is
#: rejected, so a typo'd field fails at submission, not mid-run).
CAMPAIGN_PARAMS = frozenset(
    {
        "workload",
        "scale",
        "seeds",
        "first_seed",
        "rates",
        "models",
        "dvs",
        "initial_margin",
        "chip_seeds",
        "first_chip_seed",
        "voltage",
        "timeout_s",
        "workers",
        "tracing",
    }
)


class JobError(ValueError):
    """A job submission failed validation."""


@dataclass
class Job:
    """One submitted unit of work and its lifecycle state."""

    job_id: str
    kind: str
    params: Dict[str, Any]
    state: str = "queued"  # queued -> running -> done | failed
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    events_path: str = ""
    campaign_key: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "params": self.params,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "result": self.result,
            "campaign_key": self.campaign_key,
        }


def _campaign_spec(params: Mapping[str, Any]):
    from ..resilience import CampaignSpec

    unknown = sorted(set(params) - CAMPAIGN_PARAMS)
    if unknown:
        raise JobError(
            f"unknown campaign parameter(s) {unknown}; "
            f"allowed: {sorted(CAMPAIGN_PARAMS)}"
        )
    kwargs = dict(params)
    for name in ("rates", "models"):
        if name in kwargs:
            kwargs[name] = tuple(kwargs[name])
    try:
        spec = CampaignSpec(**kwargs)
        spec.expand()  # validates model names / grid shape
    except (TypeError, ValueError) as error:
        raise JobError(str(error))
    return spec


class JobRunner:
    """Queue + single runner thread executing jobs sequentially."""

    def __init__(self, work_dir: str, store_path: Optional[str] = None) -> None:
        self.work_dir = work_dir
        os.makedirs(work_dir, exist_ok=True)
        self.store_path = store_path or os.path.join(
            work_dir, "campaigns.sqlite"
        )
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-job-runner", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- interface --

    def submit(self, kind: str, params: Mapping[str, Any]) -> Job:
        """Validate and enqueue one job; returns it in ``queued`` state."""
        if kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {kind!r}; choose from {JOB_KINDS}")
        params = dict(params)
        if kind == "campaign":
            _campaign_spec(params)  # validate before accepting
        job_id = uuid.uuid4().hex[:12]
        job = Job(
            job_id=job_id,
            kind=kind,
            params=params,
            events_path=os.path.join(self.work_dir, f"job-{job_id}.events.jsonl"),
        )
        with self._lock:
            self._jobs[job_id] = job
            self._order.append(job_id)
        self._queue.put(job_id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def shutdown(self) -> None:
        self._queue.put(None)

    # -------------------------------------------------------------- execution --

    def _run_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self.get(job_id)
            if job is None:
                continue
            events = JsonlAppender(job.events_path)
            job.state = "running"
            job.started_at = time.time()
            events.append(
                {"kind": "job_started", "job_id": job.job_id, "job_kind": job.kind}
            )
            # The terminal state is published *after* the job_finished
            # event is on disk: pollers that see `terminal` must find a
            # complete event file, and follow-mode tails end on it.
            final_state = "failed"
            try:
                executor = getattr(self, f"_run_{job.kind}")
                job.result = executor(job, events)
                final_state = "done"
            except Exception:
                job.error = traceback.format_exc()
                events.append({"kind": "job_failed", "error": job.error})
            finally:
                job.finished_at = time.time()
                events.append(
                    {
                        "kind": "job_finished",
                        "state": final_state,
                        "wall_s": job.finished_at - (job.started_at or 0.0),
                    }
                )
                events.close()
                job.state = final_state

    def _run_campaign(self, job: Job, events: JsonlAppender) -> Dict[str, Any]:
        from ..resilience import run_campaign
        from ..store import campaign_key as spec_campaign_key

        spec = _campaign_spec(job.params)
        job.campaign_key = spec_campaign_key(spec.to_dict())
        events.append(
            {
                "kind": "campaign_registered",
                "campaign_key": job.campaign_key,
                "cells": len(spec.expand()),
                "store": self.store_path,
            }
        )

        def on_start(payload: Dict[str, Any]) -> None:
            events.append(
                {
                    "kind": "run_started",
                    "run_id": payload["run_id"],
                    "seed": payload["seed"],
                    "model": payload["model"],
                    "rate": payload["rate"],
                }
            )

        def progress(record) -> None:
            events.append(
                {
                    "kind": "run_classified",
                    "run_id": record.run_id,
                    "seed": record.seed,
                    "model": record.model,
                    "rate": record.rate,
                    "chip_seed": record.chip_seed,
                    "run_class": record.run_class.value,
                    "detail": record.detail,
                }
            )

        def on_cached(record) -> None:
            events.append(
                {
                    "kind": "run_cached",
                    "run_id": record.run_id,
                    "run_class": record.run_class.value,
                }
            )

        report = run_campaign(
            spec,
            progress=progress,
            store_path=self.store_path,
            resume=True,  # the store dedupes: a resubmitted campaign resumes
            on_cached=on_cached,
            on_start=on_start,
        )
        return {
            "campaign_key": job.campaign_key,
            "counts": report.counts,
            "runs": len(report.records),
            "quarantine_events": report.quarantine_event_count,
            "voltage_escalation_recoveries": (
                report.voltage_escalation_recoveries
            ),
        }

    def _run_fuzz(self, job: Job, events: JsonlAppender) -> Dict[str, Any]:
        from ..lslog.segment import RollbackGranularity
        from ..oracle import run_fuzz

        params = dict(job.params)
        seeds = range(
            int(params.get("first_seed", 1)),
            int(params.get("first_seed", 1)) + int(params.get("seeds", 25)),
        )

        def progress(result) -> None:
            events.append(
                {
                    "kind": "fuzz_case",
                    "seed": result.case.seed,
                    "profile": result.case.profile,
                    "ok": result.ok,
                }
            )

        campaign = run_fuzz(
            seeds,
            granularity=RollbackGranularity(params.get("granularity", "line")),
            checkpoint_interval=int(params.get("checkpoint_interval", 61)),
            shrink=bool(params.get("shrink", True)),
            progress=progress,
        )
        return {
            "cases": campaign.cases,
            "instructions": campaign.instructions,
            "failures": len(campaign.failures),
            "ok": not campaign.failures,
        }

    def _run_suite(self, job: Job, events: JsonlAppender) -> Dict[str, Any]:
        from ..experiments.spec_runs import run_spec_suite

        params = dict(job.params)
        systems = tuple(params.get("systems", ("baseline", "paradox")))
        runs = run_spec_suite(
            iterations=int(params.get("iterations", 10)),
            names=params.get("workloads"),
            seed=int(params.get("seed", 12345)),
            systems=systems,
            jobs=int(params.get("jobs", 0)),
        )
        result = {
            name: {
                system: runs.by_system(system)[name].wall_ns
                for system in systems
            }
            for name in runs.names()
        }
        events.append({"kind": "suite_finished", "workloads": len(result)})
        return {"wall_ns": result}
