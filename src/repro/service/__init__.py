"""Campaign-at-scale service: job runner + stdlib HTTP front end.

``repro serve`` turns the repository's batch entry points (injection
campaigns, differential fuzzing, the SPEC-proxy suite) into a
long-lived service: jobs are submitted over HTTP, executed one at a
time on a runner thread (each saturates the machine through
:mod:`repro.parallel`), stream live JSONL telemetry, and persist
campaign results through the content-addressed store in
:mod:`repro.store`.  Stdlib only — ``http.server`` + ``sqlite3``.

See ``docs/SERVICE.md`` for the HTTP API and operational notes.
"""

from .jobs import CAMPAIGN_PARAMS, JOB_KINDS, Job, JobError, JobRunner
from .server import ReproHTTPServer, create_server, serve

__all__ = [
    "CAMPAIGN_PARAMS",
    "JOB_KINDS",
    "Job",
    "JobError",
    "JobRunner",
    "ReproHTTPServer",
    "create_server",
    "serve",
]
