"""The superblock cache: compile once, bind per context, invalidate cheap.

Two layers of caching, keyed by entry PC:

* ``_code`` — the compiled code object (plus emitted source and the
  StepInfo templates).  The program is immutable for the life of a run,
  so this layer is **never** invalidated; it exists so that voltage
  invalidations don't pay the ``compile()`` cost again.
* ``_active`` — bound block runners: the factory executed against the
  live context (state, register lists, port methods, timing commit).
  This layer is dropped whenever a DVFS move changes the supply voltage
  (:meth:`SuperblockJit.note_voltage`), the event that re-thresholds
  fault maps and re-times the core; re-binding a block afterwards is a
  single factory call.

Segment turnover is even cheaper: compiled blocks take the recorder as a
call argument, so :meth:`SuperblockJit.note_segment` just swaps the
``_rec`` binding the engine passes on the next dispatch — no cache
traffic at all.  Both events are counted in :class:`JitStats` so tests
and telemetry can see the invalidation protocol working.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..isa.executor import StepInfo
from ..isa.instructions import FunctionalUnit
from ..isa.registers import bits_to_float, float_to_bits
from . import runtime
from .emit import build_step_infos, emit_factory_source
from .superblock import superblock_length

_UNITS_BY_NAME = {unit.value: unit for unit in FunctionalUnit}

_MISS = object()

# compile()d artifacts shared across tiers over the same program object
# and emission mode.  Program is an eq-compared (unhashable) dataclass,
# so the key is its identity; a weakref finalizer evicts the entry when
# the program dies, before the id can be reused.  Sharing is safe
# because programs are immutable and the artifacts are only mutated
# through their StepInfo ``address`` slots, which every consumer
# overwrites before reading — and runs within one process are
# sequential (parallelism in this repo is process fan-out).
_SHARED_CODE: Dict[Tuple[int, bool, bool], Dict[int, Optional["_Compiled"]]] = {}


def _shared_code_for(
    program, record: bool, commit: bool
) -> Dict[int, Optional["_Compiled"]]:
    key = (id(program), record, commit)
    cache = _SHARED_CODE.get(key)
    if cache is None:
        cache = {}
        _SHARED_CODE[key] = cache
        weakref.finalize(program, _SHARED_CODE.pop, key, None)
    return cache


@dataclass
class _Compiled:
    """Per-PC compile()d artifact; survives every invalidation."""

    __slots__ = ("code", "source", "length", "infos")

    code: Any
    source: str
    length: int
    infos: Optional[Tuple[StepInfo, ...]]


class BlockEntry:
    """A bound, directly callable superblock."""

    __slots__ = ("run", "length")

    def __init__(self, run: Callable[..., None], length: int) -> None:
        self.run = run
        self.length = length


@dataclass
class JitStats:
    """Counters for the tier's caches and dispatch volume."""

    blocks_compiled: int = 0
    activations: int = 0
    dispatches: int = 0
    instructions: int = 0
    segment_rebinds: int = 0
    voltage_invalidations: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "blocks_compiled": self.blocks_compiled,
            "activations": self.activations,
            "dispatches": self.dispatches,
            "instructions": self.instructions,
            "segment_rebinds": self.segment_rebinds,
            "voltage_invalidations": self.voltage_invalidations,
        }


class SuperblockJit:
    """Per-run compiled tier over one program/state/port triple.

    The tier is deliberately not shared across runs: ``Program`` is an
    eq-compared (unhashable) dataclass, and a block compiles in single-
    digit microseconds against runs that last hundreds of milliseconds,
    so a cross-run code cache would buy <2% for real aliasing risk.

    ``record`` adds per-instruction segment recording (the block
    receives the recorder as its call argument); ``commit``/``unit_mix``
    add the engine's timing commit and histogram.  Callers pick the
    combination matching the loop they replace — see
    :func:`repro.jit.emit.emit_factory_source`.
    """

    def __init__(
        self,
        program,
        state,
        port,
        *,
        commit: Optional[Callable[[StepInfo], None]] = None,
        unit_mix: Optional[Dict[str, int]] = None,
        record: bool = False,
    ) -> None:
        self.program = program
        self.state = state
        self.port = port
        self.record = record
        self._commit = commit
        self._unit_mix = unit_mix
        self._code = _shared_code_for(program, record, commit is not None)
        self._active: Dict[int, Optional[BlockEntry]] = {}
        #: Current segment's ``record_instruction``; the engine passes
        #: this into every record-mode dispatch.
        self._rec: Optional[Callable[..., None]] = None
        self._voltage: Optional[float] = None
        self.stats = JitStats()

    # -- dispatch ---------------------------------------------------------
    def runner(self, pc: int) -> Optional[BlockEntry]:
        """The bound block entered at ``pc``, or None to interpret."""
        entry = self._active.get(pc, _MISS)
        if entry is not _MISS:
            return entry
        return self._activate(pc)

    def _activate(self, pc: int) -> Optional[BlockEntry]:
        compiled = self._code.get(pc, _MISS)
        if compiled is _MISS:
            compiled = self._compile(pc)
            if compiled is None and not (
                0 <= pc < len(self.program.instructions)
            ):
                # Never memoise wild PCs (e.g. a fuzzed JALR target):
                # the interpreter turns them into InvalidPcTrap and the
                # cache must not grow without bound.
                return None
            self._code[pc] = compiled
        if compiled is None:
            self._active[pc] = None
            return None
        entry = BlockEntry(self._bind(compiled), compiled.length)
        self._active[pc] = entry
        self.stats.activations += 1
        return entry

    # -- compilation ------------------------------------------------------
    def _compile(self, pc: int) -> Optional[_Compiled]:
        instructions = self.program.instructions
        length = superblock_length(instructions, pc)
        if length == 0:
            return None
        commit = self._commit is not None
        source = emit_factory_source(
            instructions, pc, length, record=self.record, commit=commit
        )
        code = compile(source, f"<superblock pc={pc}>", "exec")
        infos = build_step_infos(instructions, pc, length) if commit else None
        self.stats.blocks_compiled += 1
        return _Compiled(code, source, length, infos)

    def _bind(self, compiled: _Compiled) -> Callable[..., None]:
        regs = self.state.regs
        ctx = {
            "state": self.state,
            "regs": regs,
            # RegisterFile.restore copies in place, so these list
            # objects stay valid across checkpoints and rollbacks.
            "x": regs.x,
            "f": regs.f,
            "load": self.port.load,
            "store": self.port.store,
            "btf": bits_to_float,
            "ftb": float_to_bits,
            "sdiv": runtime.sdiv,
            "srem": runtime.srem,
            "fdiv": runtime.fdiv,
            "fcvti": runtime.fcvti,
            "flags_sub": runtime.flags_sub,
            "commit": self._commit,
            "um": self._unit_mix,
            "infos": compiled.infos,
            "units": _UNITS_BY_NAME,
        }
        namespace: Dict[str, Any] = {}
        exec(compiled.code, namespace)
        return namespace["__block__"](ctx)

    # -- invalidation protocol --------------------------------------------
    def note_segment(self, segment) -> None:
        """A new log segment opened: rebind the recorder."""
        self._rec = segment.record_instruction
        self.stats.segment_rebinds += 1

    def note_voltage(self, voltage: float) -> None:
        """DVFS output sync: drop bound blocks on an actual move."""
        if self._voltage is None:
            self._voltage = voltage
            return
        if voltage != self._voltage:
            self._voltage = voltage
            self._active.clear()
            self.stats.voltage_invalidations += 1

    # -- introspection ----------------------------------------------------
    def source_for(self, pc: int) -> Optional[str]:
        """Emitted source of the block entered at ``pc`` (tests/debug)."""
        compiled = self._code.get(pc, _MISS)
        if compiled is _MISS:
            compiled = self._compile(pc)
            if 0 <= pc < len(self.program.instructions):
                self._code[pc] = compiled
        return compiled.source if compiled is not None else None
