"""Source emission for compiled superblocks.

One superblock becomes one generated factory::

    def __factory__(__ctx__):
        state = __ctx__['state']
        x = __ctx__['x']
        ...                      # only the names this block actually uses
        def __superblock__():    # or (rec) when segment recording is on
            _i0 = state.instret
            x[3] = (x[1] + x[2]) & M
            ...
            state.pc = 17
            state.instret = _i0 + 5
        return __superblock__
    __block__ = __factory__

Register indices, immediates (pre-wrapped through ``to_unsigned`` where
the interpreter does it), FMOVI bit patterns and PC values are folded
into the source as literals; everything dynamic is a ``LOAD_FAST`` of a
factory local.  The factory indirection is what makes re-binding cheap:
the module is ``compile()``d once per block, and a voltage invalidation
only re-runs ``__factory__`` against a fresh context (~µs), not the
compiler.

Equivalence contract (checked by the differential oracle and
``tests/test_jit.py``):

* The data port is the only thing inside a block that can raise.  Before
  every ``load``/``store`` call the block flushes ``state.pc`` to that
  instruction's PC and ``state.instret`` to the entry value plus the
  block offset — exactly the values the interpreter would hold at the
  same point, because ``Executor.step`` bumps ``pc``/``instret`` only
  *after* the handler returns.  The effective address is computed into a
  temporary first, so a raising port call leaves zero partial
  architectural effect, matching the port's own no-partial-effect
  property.
* Writes to ``x0`` are discarded exactly like ``RegisterFile.write_x``:
  pure ALU results to ``x0`` emit no architectural code at all (their
  bookkeeping still runs), while ``LDR`` to ``x0`` still issues the load
  for its log record and trap behaviour.
* Per-instruction bookkeeping replays the engine/oracle loop order:
  architectural effect, then timing ``commit(info)``, then the unit-mix
  histogram, then ``segment.record_instruction`` — whichever of those
  the execution mode wires in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.executor import StepInfo
from ..isa.instructions import Instruction, Opcode
from ..isa.registers import float_to_bits, to_unsigned
from .superblock import COMPILABLE_OPCODES

RegTag = Tuple[str, int]

# Two-source integer ops: x[rd] = fn(x[rs1], x[rs2]).  Each entry is
# (format string, extra hoist names).  Results that can leave the 64-bit
# range are masked inline; pure bitwise ops and LSR cannot.
_BIN_X: Dict[Opcode, Tuple[str, Tuple[str, ...]]] = {
    Opcode.ADD: ("x[{d}] = (x[{a}] + x[{b}]) & M", ("M",)),
    Opcode.SUB: ("x[{d}] = (x[{a}] - x[{b}]) & M", ("M",)),
    Opcode.AND: ("x[{d}] = x[{a}] & x[{b}]", ()),
    Opcode.ORR: ("x[{d}] = x[{a}] | x[{b}]", ()),
    Opcode.EOR: ("x[{d}] = x[{a}] ^ x[{b}]", ()),
    Opcode.LSL: ("x[{d}] = (x[{a}] << (x[{b}] & 63)) & M", ("M",)),
    Opcode.LSR: ("x[{d}] = x[{a}] >> (x[{b}] & 63)", ()),
    Opcode.MUL: ("x[{d}] = (x[{a}] * x[{b}]) & M", ("M",)),
    Opcode.DIV: ("x[{d}] = sdiv(x[{a}], x[{b}])", ("sdiv",)),
    Opcode.REM: ("x[{d}] = srem(x[{a}], x[{b}])", ("srem",)),
}

# Immediate integer ops: the immediate (or its unsigned wrap, matching
# the interpreter's per-op ``to_unsigned``) is folded at emit time.
_IMM_X = {
    Opcode.ADDI,
    Opcode.SUBI,
    Opcode.ANDI,
    Opcode.ORRI,
    Opcode.EORI,
    Opcode.LSLI,
    Opcode.LSRI,
}

_FBIN: Dict[Opcode, str] = {
    Opcode.FADD: "f[{d}] = ftb(btf(f[{a}]) + btf(f[{b}]))",
    Opcode.FSUB: "f[{d}] = ftb(btf(f[{a}]) - btf(f[{b}]))",
    Opcode.FMUL: "f[{d}] = ftb(btf(f[{a}]) * btf(f[{b}]))",
    Opcode.FDIV: "f[{d}] = ftb(fdiv(btf(f[{a}]), btf(f[{b}])))",
}

_X_BINARY_READS = frozenset(_BIN_X)
_MEMORY_OPCODES = frozenset({Opcode.LDR, Opcode.FLDR, Opcode.STR, Opcode.FSTR})


def reads_dest(instr: Instruction) -> Tuple[Tuple[RegTag, ...], Optional[RegTag]]:
    """The ``(reads, dest)`` tags the interpreter's handler would report."""
    op = instr.opcode
    if op in _X_BINARY_READS:
        return ((("x", instr.rs1), ("x", instr.rs2)), ("x", instr.rd))
    if op in _IMM_X or op is Opcode.ASRI or op is Opcode.MOV:
        return ((("x", instr.rs1),), ("x", instr.rd))
    if op is Opcode.MOVI:
        return ((), ("x", instr.rd))
    if op is Opcode.CMP:
        return ((("x", instr.rs1), ("x", instr.rs2)), ("flags", 0))
    if op is Opcode.CMPI:
        return ((("x", instr.rs1),), ("flags", 0))
    if op is Opcode.FCMP:
        return ((("f", instr.rs1), ("f", instr.rs2)), ("flags", 0))
    if op in _FBIN:
        return ((("f", instr.rs1), ("f", instr.rs2)), ("f", instr.rd))
    if op is Opcode.FMOV:
        return ((("f", instr.rs1),), ("f", instr.rd))
    if op is Opcode.FMOVI:
        return ((), ("f", instr.rd))
    if op is Opcode.FCVT:
        return ((("x", instr.rs1),), ("f", instr.rd))
    if op is Opcode.FCVTI:
        return ((("f", instr.rs1),), ("x", instr.rd))
    if op is Opcode.LDR:
        return ((("x", instr.rs1),), ("x", instr.rd))
    if op is Opcode.FLDR:
        return ((("x", instr.rs1),), ("f", instr.rd))
    if op is Opcode.STR:
        return ((("x", instr.rs1), ("x", instr.rs2)), None)
    if op is Opcode.FSTR:
        return ((("x", instr.rs1), ("f", instr.rs2)), None)
    if op is Opcode.NOP:
        return ((), None)
    raise ValueError(f"{op} is not compilable")


def build_step_infos(
    instructions: Sequence[Instruction], entry_pc: int, length: int
) -> Tuple[StepInfo, ...]:
    """Preallocated :class:`StepInfo` templates, one per block slot.

    Everything but ``address`` is a pure function of the decoded
    instruction, so the templates are built once and reused across
    dispatches; memory ops overwrite ``address`` at runtime immediately
    before ``commit``.  ``MainCoreTiming.commit`` reads the info and
    drops it (latency comes from its own per-PC static table), so
    aliasing one mutable object across dispatches is safe.
    """
    infos = []
    for i in range(length):
        pc = entry_pc + i
        instr = instructions[pc]
        reads, dest = reads_dest(instr)
        infos.append(StepInfo(instr, pc, pc + 1, reads, dest, None, None))
    return tuple(infos)


# Hoist lines in canonical order; only the ones a block needs are emitted.
_HOISTS: Dict[str, str] = {
    "state": "state = __ctx__['state']",
    "regs": "regs = __ctx__['regs']",
    "x": "x = __ctx__['x']",
    "f": "f = __ctx__['f']",
    "M": "M = 0xFFFFFFFFFFFFFFFF",
    "load": "load = __ctx__['load']",
    "store": "store = __ctx__['store']",
    "btf": "btf = __ctx__['btf']",
    "ftb": "ftb = __ctx__['ftb']",
    "sdiv": "sdiv = __ctx__['sdiv']",
    "srem": "srem = __ctx__['srem']",
    "fdiv": "fdiv = __ctx__['fdiv']",
    "fcvti": "fcvti = __ctx__['fcvti']",
    "flags_sub": "flags_sub = __ctx__['flags_sub']",
    "commit": "commit = __ctx__['commit']",
    "um": "um = __ctx__['um']",
}


class _Emitter:
    def __init__(self, record: bool, commit: bool) -> None:
        self.record = record
        self.commit = commit
        self.body: List[str] = []
        self.needs: Dict[str, None] = {"state": None}
        self.units: Dict[str, None] = {}
        self.uses_i0 = False

    def need(self, *names: str) -> None:
        for name in names:
            self.needs.setdefault(name)

    def _flush(self, i: int, pc: int) -> None:
        # At i == 0 both values are still exactly the dispatch-time ones.
        if i:
            self.body.append(f"state.pc = {pc}")
            self.body.append(f"state.instret = _i0 + {i}")
            self.uses_i0 = True

    def _emit_arch(self, i: int, pc: int, instr: Instruction) -> bool:
        """Append the architectural effect; True if this was a memory op."""
        op = instr.opcode
        out = self.body.append
        d, a, b = instr.rd, instr.rs1, instr.rs2
        if op in _BIN_X:
            if d != 0:
                template, extra = _BIN_X[op]
                self.need("x", *extra)
                out(template.format(d=d, a=a, b=b))
            return False
        if op is Opcode.ASR:
            if d != 0:
                self.need("x", "M")
                out(f"_t = x[{a}]")
                out(
                    f"x[{d}] = ((_t - 0x10000000000000000 if _t >> 63 else _t)"
                    f" >> (x[{b}] & 63)) & M"
                )
            return False
        if op in _IMM_X:
            if d != 0:
                self.need("x")
                if op is Opcode.ADDI:
                    self.need("M")
                    out(f"x[{d}] = (x[{a}] + {instr.imm}) & M")
                elif op is Opcode.SUBI:
                    self.need("M")
                    out(f"x[{d}] = (x[{a}] - {instr.imm}) & M")
                elif op is Opcode.ANDI:
                    out(f"x[{d}] = x[{a}] & {to_unsigned(instr.imm)}")
                elif op is Opcode.ORRI:
                    out(f"x[{d}] = x[{a}] | {to_unsigned(instr.imm)}")
                elif op is Opcode.EORI:
                    out(f"x[{d}] = x[{a}] ^ {to_unsigned(instr.imm)}")
                elif op is Opcode.LSLI:
                    self.need("M")
                    out(f"x[{d}] = (x[{a}] << {instr.imm & 63}) & M")
                else:  # LSRI
                    out(f"x[{d}] = x[{a}] >> {instr.imm & 63}")
            return False
        if op is Opcode.ASRI:
            if d != 0:
                self.need("x", "M")
                out(f"_t = x[{a}]")
                out(
                    f"x[{d}] = ((_t - 0x10000000000000000 if _t >> 63 else _t)"
                    f" >> {instr.imm & 63}) & M"
                )
            return False
        if op is Opcode.MOV:
            if d != 0:
                self.need("x")
                out(f"x[{d}] = x[{a}]")
            return False
        if op is Opcode.MOVI:
            if d != 0:
                self.need("x")
                out(f"x[{d}] = {to_unsigned(instr.imm)}")
            return False
        if op is Opcode.CMP:
            self.need("x", "regs", "flags_sub")
            out(f"regs.flags = flags_sub(x[{a}], x[{b}])")
            return False
        if op is Opcode.CMPI:
            self.need("x", "regs", "flags_sub")
            out(f"regs.flags = flags_sub(x[{a}], {to_unsigned(instr.imm)})")
            return False
        if op is Opcode.FCMP:
            self.need("f", "regs", "btf")
            out(f"_fa = btf(f[{a}])")
            out(f"_fb = btf(f[{b}])")
            out("if _fa != _fa or _fb != _fb:")
            out("    regs.flags = 3")  # unordered: set_flags(F, F, T, T)
            out("else:")
            out(
                "    regs.flags = ((_fa < _fb) << 3) | ((_fa == _fb) << 2)"
                " | ((_fa >= _fb) << 1)"
            )
            return False
        if op in _FBIN:
            self.need("f", "btf", "ftb")
            if op is Opcode.FDIV:
                self.need("fdiv")
            out(_FBIN[op].format(d=d, a=a, b=b))
            return False
        if op is Opcode.FMOV:
            self.need("f")
            out(f"f[{d}] = f[{a}]")
            return False
        if op is Opcode.FMOVI:
            self.need("f")
            out(f"f[{d}] = {float_to_bits(instr.fimm)}")
            return False
        if op is Opcode.FCVT:
            self.need("x", "f", "ftb")
            out(f"_t = x[{a}]")
            out(f"f[{d}] = ftb(float(_t - 0x10000000000000000 if _t >> 63 else _t))")
            return False
        if op is Opcode.FCVTI:
            if d != 0:
                self.need("x", "f", "btf", "fcvti")
                out(f"x[{d}] = fcvti(btf(f[{a}]))")
            return False
        if op is Opcode.NOP:
            return False
        if op in _MEMORY_OPCODES:
            self._flush(i, pc)
            self.need("x", "M")
            out(f"_a = (x[{a}] + {instr.imm}) & M")
            if op is Opcode.LDR:
                self.need("load")
                out(f"x[{d}] = load(_a) & M" if d != 0 else "load(_a)")
            elif op is Opcode.FLDR:
                self.need("f", "load")
                out(f"f[{d}] = load(_a) & M")
            elif op is Opcode.STR:
                self.need("store")
                out(f"store(_a, x[{b}])")
            else:  # FSTR
                self.need("f", "store")
                out(f"store(_a, f[{b}])")
            return True
        raise ValueError(f"{op} is not compilable")

    def _emit_bookkeeping(self, i: int, instr: Instruction, is_memory: bool) -> None:
        unit = instr.opcode.unit.value
        if self.commit:
            self.need("commit", "um")
            if is_memory:
                self.body.append(f"_I{i}.address = _a")
            self.body.append(f"commit(_I{i})")
            self.body.append(f"um['{unit}'] = um_get('{unit}', 0) + 1")
        if self.record:
            self.units.setdefault(unit)
            writes_register = reads_dest(instr)[1] is not None
            self.body.append(f"rec(_U_{unit}, {writes_register})")


def emit_factory_source(
    instructions: Sequence[Instruction],
    entry_pc: int,
    length: int,
    *,
    record: bool,
    commit: bool,
) -> str:
    """Render the factory module source for one superblock.

    ``record`` wires in per-instruction ``rec(unit, writes_register)``
    calls (the block takes the current segment's ``record_instruction``
    as its only argument, so segment turnover never invalidates code);
    ``commit`` wires in timing ``commit(StepInfo)`` plus the engine's
    unit-mix histogram.  ``golden_run`` uses neither, the differential
    oracle records only, the unprotected engine commits only, and the
    protected engine does both.
    """
    em = _Emitter(record, commit)
    for i in range(length):
        pc = entry_pc + i
        instr = instructions[pc]
        if instr.opcode not in COMPILABLE_OPCODES:
            raise ValueError(f"pc {pc}: {instr.opcode} inside a superblock")
        is_memory = em._emit_arch(i, pc, instr)
        em._emit_bookkeeping(i, instr, is_memory)

    end_pc = entry_pc + length
    epilogue = [f"state.pc = {end_pc}"]
    if em.uses_i0:
        epilogue.append(f"state.instret = _i0 + {length}")
    else:
        epilogue.append(f"state.instret += {length}")

    lines = ["def __factory__(__ctx__):"]
    for name, hoist in _HOISTS.items():
        if name in em.needs:
            lines.append(f"    {hoist}")
    if "um" in em.needs:
        lines.append("    um_get = um.get")
    if commit:
        targets = ", ".join(f"_I{i}" for i in range(length))
        lines.append(f"    {targets}{',' if length == 1 else ''} = __ctx__['infos']")
    for unit in em.units:
        lines.append(f"    _U_{unit} = __ctx__['units']['{unit}']")
    lines.append("    def __superblock__(rec):" if record else "    def __superblock__():")
    if em.uses_i0:
        lines.append("        _i0 = state.instret")
    for line in em.body:
        lines.append(f"        {line}")
    for line in epilogue:
        lines.append(f"        {line}")
    lines.append("    return __superblock__")
    lines.append("__block__ = __factory__")
    return "\n".join(lines) + "\n"
