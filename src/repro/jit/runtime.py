"""Out-of-line helpers called by generated superblock code.

Each helper replicates one :class:`~repro.isa.executor.Executor` handler
exactly — same zero-divisor conventions, same saturation, same NZCV
packing — so a compiled block and the interpreter are bit-identical on
every input.  They are resolved once per block activation (hoisted into
factory locals), so a call costs one ``LOAD_FAST`` instead of attribute
traffic.
"""

from __future__ import annotations

import math

from ..isa.registers import MASK64

_TWO63 = 1 << 63
_TWO64 = 1 << 64


def sdiv(a: int, b: int) -> int:
    """Truncated signed 64-bit division; all-ones quotient on b == 0."""
    if b == 0:
        return MASK64
    sa = a - _TWO64 if a >> 63 else a
    sb = b - _TWO64 if b >> 63 else b
    q = abs(sa) // abs(sb)
    return (-q if (sa < 0) != (sb < 0) else q) & MASK64


def srem(a: int, b: int) -> int:
    """Signed 64-bit remainder (sign of the dividend); a on b == 0."""
    if b == 0:
        return a
    sa = a - _TWO64 if a >> 63 else a
    sb = b - _TWO64 if b >> 63 else b
    r = abs(sa) % abs(sb)
    return (-r if sa < 0 else r) & MASK64


def fdiv(a: float, b: float) -> float:
    """IEEE 754 division: x/±0 is sign-XOR infinity, 0/0 and NaN/0 NaN."""
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return float("nan")
        return math.copysign(float("inf"), a) * math.copysign(1.0, b)
    return a / b


def fcvti(value: float) -> int:
    """FCVTI semantics: NaN to zero, saturate at the signed 64-bit ends."""
    if value != value:
        return 0
    if value >= 2.0**63:
        return _TWO63 - 1
    if value <= -(2.0**63):
        return _TWO63
    return int(value) & MASK64


def flags_sub(a: int, b: int) -> int:
    """NZCV nibble for ``a - b``; operands must already be 64-bit masked.

    Packs exactly what ``RegisterFile.set_flags(*_flags_from_sub(a, b))``
    stores: N at bit 3, Z at 2, C (unsigned no-borrow) at 1, V (signed
    overflow) at 0.
    """
    result = (a - b) & MASK64
    sa = a - _TWO64 if a >> 63 else a
    sb = b - _TWO64 if b >> 63 else b
    d = sa - sb
    return (
        ((result >> 63) << 3)
        | ((result == 0) << 2)
        | ((a >= b) << 1)
        | (not (-_TWO63 <= d < _TWO63))
    )
