"""Compiled superblock execution tier.

The interpreter in :mod:`repro.isa.executor` pays a per-instruction
dispatch cost (decode-table probe, handler call, :class:`StepInfo`
allocation) that dominates fault-free execution time.  This package
removes it for the common case: straight-line regions (**superblocks**)
are discovered at runtime from the decoded program, compiled once into a
single specialized Python function — register indices, immediates and
folded constants burned in as literals, the source run through
``compile()`` — and cached by entry PC.  Control flow, traps, syscalls
and fault-injection points are never folded into a block; execution
falls back to the interpreter there, and the two paths are bit-identical
by construction (the differential oracle in :mod:`repro.oracle` is the
merge gate for every change to this package).

Layering:

* :mod:`repro.jit.superblock` — region discovery (which opcodes may be
  folded, where a block must end);
* :mod:`repro.jit.runtime` — the handful of out-of-line helpers the
  generated code calls (signed division, IEEE division, NZCV packing);
* :mod:`repro.jit.emit` — per-opcode source emission and the per-mode
  bookkeeping (timing commit / unit mix / segment recording);
* :mod:`repro.jit.tier` — the cache: compile-once code objects, bound
  activations invalidated on voltage moves, per-segment rebinding.
"""

from .superblock import COMPILABLE_OPCODES, MAX_BLOCK, MIN_BLOCK, superblock_length
from .tier import BlockEntry, JitStats, SuperblockJit

__all__ = [
    "COMPILABLE_OPCODES",
    "MAX_BLOCK",
    "MIN_BLOCK",
    "superblock_length",
    "BlockEntry",
    "JitStats",
    "SuperblockJit",
]
