"""Superblock discovery: which instructions may be compiled together.

A superblock is a maximal run of straight-line instructions starting at
an entry PC.  Anything that can redirect control, halt, or touch
external/engine state mid-stream ends the region **before** itself:

* every branch (direct, conditional, ``CBZ``/``CBNZ``, ``JAL``/``JALR``)
  — the interpreter resolves targets and predictor state;
* ``HALT`` and ``SYSCALL`` — syscalls read ``instret`` mid-instruction,
  append to the output stream, and the external-write syscall must pass
  through the engine's drain protocol;
* nothing else: loads and stores *are* compilable because the data port
  raises (``SegmentFull``, ``UncheckedConflictStall``, memory traps)
  before any architectural mutation, and generated code flushes
  ``pc``/``instret`` immediately before every port call so a partially
  executed block leaves exactly the interpreter's state.

Fault-injection points are excluded structurally rather than per-opcode:
the engine only builds a tier at all when no main-core injector is
attached (checker-targeted faults never see main-core execution), so no
instruction that could receive an injection is ever inside a block.
"""

from __future__ import annotations

from typing import Sequence

from ..isa.instructions import BRANCH_OPCODES, Instruction, Opcode

#: Opcodes that may appear inside a compiled superblock.
COMPILABLE_OPCODES = frozenset(Opcode) - BRANCH_OPCODES - {
    Opcode.HALT,
    Opcode.SYSCALL,
}

#: Blocks shorter than this are not worth a dispatch (cache probe +
#: call) and stay interpreted.
MIN_BLOCK = 3
#: Length cap: bounds compile time per block and keeps the budget gates
#: (segment target, instruction budget, livelock) usefully tight.
MAX_BLOCK = 64


def superblock_length(instructions: Sequence[Instruction], pc: int) -> int:
    """Length of the superblock entered at ``pc``, or 0 if none.

    Returns 0 for out-of-range PCs, for entries sitting on a
    non-compilable opcode, and for runs shorter than :data:`MIN_BLOCK`.
    A branch *into the middle* of a longer block simply defines its own
    (overlapping) block — discovery is per-entry, not a partition.
    """
    if pc < 0 or pc >= len(instructions):
        return 0
    end = min(len(instructions), pc + MAX_BLOCK)
    scan = pc
    while scan < end and instructions[scan].opcode in COMPILABLE_OPCODES:
        scan += 1
    length = scan - pc
    return length if length >= MIN_BLOCK else 0
