"""Instruction set definition.

A small 64-bit load/store RISC ISA, close in spirit to the ARMv8 subset the
paper simulates under gem5: flag-setting compares with conditional
branches, separate integer and floating-point register files, and
word-granularity loads and stores.

Each opcode carries a :class:`FunctionalUnit` class.  The timing models use
it to pick execution latencies, and the paper's *combinational fault*
model uses it to corrupt only instructions that pass through a chosen
(defective) functional unit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class FunctionalUnit(enum.Enum):
    """Execution resource classes, used by timing and fault models."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    SYSTEM = "system"


class Opcode(enum.Enum):
    """All opcodes, with their functional-unit class."""

    # integer ALU, register-register
    ADD = ("add", FunctionalUnit.INT_ALU)
    SUB = ("sub", FunctionalUnit.INT_ALU)
    AND = ("and", FunctionalUnit.INT_ALU)
    ORR = ("orr", FunctionalUnit.INT_ALU)
    EOR = ("eor", FunctionalUnit.INT_ALU)
    LSL = ("lsl", FunctionalUnit.INT_ALU)
    LSR = ("lsr", FunctionalUnit.INT_ALU)
    ASR = ("asr", FunctionalUnit.INT_ALU)
    MUL = ("mul", FunctionalUnit.INT_MUL)
    DIV = ("div", FunctionalUnit.INT_DIV)
    REM = ("rem", FunctionalUnit.INT_DIV)
    MOV = ("mov", FunctionalUnit.INT_ALU)
    # integer ALU, register-immediate
    ADDI = ("addi", FunctionalUnit.INT_ALU)
    SUBI = ("subi", FunctionalUnit.INT_ALU)
    ANDI = ("andi", FunctionalUnit.INT_ALU)
    ORRI = ("orri", FunctionalUnit.INT_ALU)
    EORI = ("eori", FunctionalUnit.INT_ALU)
    LSLI = ("lsli", FunctionalUnit.INT_ALU)
    LSRI = ("lsri", FunctionalUnit.INT_ALU)
    ASRI = ("asri", FunctionalUnit.INT_ALU)
    MOVI = ("movi", FunctionalUnit.INT_ALU)
    # compares (set NZCV)
    CMP = ("cmp", FunctionalUnit.INT_ALU)
    CMPI = ("cmpi", FunctionalUnit.INT_ALU)
    FCMP = ("fcmp", FunctionalUnit.FP_ALU)
    # floating point
    FADD = ("fadd", FunctionalUnit.FP_ALU)
    FSUB = ("fsub", FunctionalUnit.FP_ALU)
    FMUL = ("fmul", FunctionalUnit.FP_MUL)
    FDIV = ("fdiv", FunctionalUnit.FP_DIV)
    FMOV = ("fmov", FunctionalUnit.FP_ALU)
    FMOVI = ("fmovi", FunctionalUnit.FP_ALU)
    FCVT = ("fcvt", FunctionalUnit.FP_ALU)  # int reg -> fp reg
    FCVTI = ("fcvti", FunctionalUnit.FP_ALU)  # fp reg -> int reg (truncate)
    # memory
    LDR = ("ldr", FunctionalUnit.LOAD)
    STR = ("str", FunctionalUnit.STORE)
    FLDR = ("fldr", FunctionalUnit.LOAD)
    FSTR = ("fstr", FunctionalUnit.STORE)
    # control flow
    B = ("b", FunctionalUnit.BRANCH)
    BEQ = ("beq", FunctionalUnit.BRANCH)
    BNE = ("bne", FunctionalUnit.BRANCH)
    BLT = ("blt", FunctionalUnit.BRANCH)
    BGE = ("bge", FunctionalUnit.BRANCH)
    BGT = ("bgt", FunctionalUnit.BRANCH)
    BLE = ("ble", FunctionalUnit.BRANCH)
    CBZ = ("cbz", FunctionalUnit.BRANCH)
    CBNZ = ("cbnz", FunctionalUnit.BRANCH)
    JAL = ("jal", FunctionalUnit.BRANCH)  # call: link in rd, jump to target
    JALR = ("jalr", FunctionalUnit.BRANCH)  # return / indirect: jump to rs1
    # system
    NOP = ("nop", FunctionalUnit.INT_ALU)
    HALT = ("halt", FunctionalUnit.SYSTEM)
    SYSCALL = ("syscall", FunctionalUnit.SYSTEM)

    def __init__(self, mnemonic: str, unit: FunctionalUnit) -> None:
        self.mnemonic = mnemonic
        self.unit = unit


#: Conditional branches that read the flags register.
CONDITIONAL_FLAG_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BGT, Opcode.BLE}
)
#: Conditional branches that test a register directly.
CONDITIONAL_REG_BRANCHES = frozenset({Opcode.CBZ, Opcode.CBNZ})
#: All control-flow opcodes.
BRANCH_OPCODES = (
    CONDITIONAL_FLAG_BRANCHES
    | CONDITIONAL_REG_BRANCHES
    | frozenset({Opcode.B, Opcode.JAL, Opcode.JALR})
)
#: Opcodes whose destination is a floating-point register.
FP_DEST_OPCODES = frozenset(
    {
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FMOV,
        Opcode.FMOVI,
        Opcode.FCVT,
        Opcode.FLDR,
    }
)
#: Opcodes that write the flags register instead of a data register.
FLAG_DEST_OPCODES = frozenset({Opcode.CMP, Opcode.CMPI, Opcode.FCMP})
#: Memory opcodes.
MEMORY_OPCODES = frozenset({Opcode.LDR, Opcode.STR, Opcode.FLDR, Opcode.FSTR})


class Syscall(enum.IntEnum):
    """Syscall numbers.

    The paper treats syscalls "as standard operations that can be rolled
    back, unless they update external state" (section II-B).  ``EXIT`` and
    the print syscalls update external state only when their containing
    segment has been checked; the engine buffers their output until then.
    """

    EXIT = 0
    PRINT_INT = 1
    PRINT_FLOAT = 2
    GET_INSTRET = 3  # read retired-instruction count into x1 (non-external)
    #: Writes x1 to the outside world (device register, network...).
    #: External state cannot be rolled back, so the engine verifies all
    #: computation up to this instruction before letting it execute
    #: ("stores that are uncacheable must be checked before they can
    #: proceed", section II-B).
    WRITE_EXTERNAL = 4


#: Syscalls whose effects escape the rollback domain.
EXTERNAL_SYSCALLS = frozenset({Syscall.WRITE_EXTERNAL})


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``target`` holds a resolved instruction index for direct branches; the
    assembler fills it in from labels.  ``label`` is kept for display.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    fimm: float = 0.0
    target: Optional[int] = None
    label: Optional[str] = field(default=None, compare=False)

    @property
    def unit(self) -> FunctionalUnit:
        return self.opcode.unit

    @property
    def is_branch(self) -> bool:
        return self.opcode in BRANCH_OPCODES

    @property
    def is_conditional_branch(self) -> bool:
        return (
            self.opcode in CONDITIONAL_FLAG_BRANCHES or self.opcode in CONDITIONAL_REG_BRANCHES
        )

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    @property
    def is_load(self) -> bool:
        return self.opcode in (Opcode.LDR, Opcode.FLDR)

    @property
    def is_store(self) -> bool:
        return self.opcode in (Opcode.STR, Opcode.FSTR)

    def destination(self) -> Tuple[Optional[str], int]:
        """Return ``(register file, index)`` written by this instruction.

        The file is ``"x"``, ``"f"``, ``"flags"`` or ``None`` when the
        instruction writes no register (stores, plain branches, NOP...).
        Used by the combinational fault model, which corrupts "the
        registers that have been modified by the concerned instructions".
        """
        op = self.opcode
        if op in FLAG_DEST_OPCODES:
            return ("flags", 0)
        if op in FP_DEST_OPCODES:
            return ("f", self.rd)
        if op in (Opcode.STR, Opcode.FSTR, Opcode.B, Opcode.NOP, Opcode.HALT):
            return (None, 0)
        if op in CONDITIONAL_FLAG_BRANCHES or op in CONDITIONAL_REG_BRANCHES:
            return (None, 0)
        if op is Opcode.SYSCALL:
            return (None, 0)
        if op is Opcode.FCVTI:
            return ("x", self.rd)
        if op in (Opcode.JAL, Opcode.JALR):
            return ("x", self.rd)
        return ("x", self.rd)

    def __str__(self) -> str:
        parts = [self.opcode.mnemonic]
        if self.label is not None:
            parts.append(self.label)
        elif self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)
