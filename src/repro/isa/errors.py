"""Trap and error types raised during functional execution.

The functional executor signals all exceptional control flow with
:class:`SimTrap` subclasses.  On a *main* core most traps are fatal
programming errors (the workload generators never produce them); on a
*checker* core they are one of the paper's detection channels: an injected
fault that sends the checker into an invalid state ("an exception or an
invalid checker core behavior", fig. 7) surfaces as one of these traps and
is converted into an error detection by the checker model.
"""

from __future__ import annotations


class SimTrap(Exception):
    """Base class for all execution traps."""


class HaltTrap(SimTrap):
    """The program executed ``HALT`` (or ``SYSCALL exit``)."""


class InvalidPcTrap(SimTrap):
    """The program counter left the program's text section.

    Typically the consequence of a bit flip in the PC or the link
    register on a checker core.
    """

    def __init__(self, pc: int) -> None:
        super().__init__(f"pc {pc} outside program text")
        self.pc = pc


class InvalidInstructionTrap(SimTrap):
    """An instruction could not be decoded or had malformed operands."""


class MemoryAlignmentTrap(SimTrap):
    """A load or store used a non word-aligned effective address."""

    def __init__(self, address: int) -> None:
        super().__init__(f"unaligned access at {address:#x}")
        self.address = address


class MemoryBoundsTrap(SimTrap):
    """A load or store fell outside the mapped data segment."""

    def __init__(self, address: int) -> None:
        super().__init__(f"access outside data segment at {address:#x}")
        self.address = address


class ExecutionLimitExceeded(SimTrap):
    """A run exceeded its instruction budget.

    Used both as a safety net for runaway workloads and as the checker
    timeout detection channel ("any full lockup of a core is detected via
    timeout", section II-B).
    """
