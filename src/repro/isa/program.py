"""Programs and a fluent builder for generating them.

A :class:`Program` is an immutable sequence of instructions plus label
metadata.  Instruction *i* lives at text address ``4 * i``; the instruction
caches of both core types operate on these addresses.

Workload generators use :class:`ProgramBuilder`, which supports forward
label references and resolves them at :meth:`ProgramBuilder.build` time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from .instructions import Instruction, Opcode

INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class Program:
    """An assembled program."""

    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int]
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    @property
    def text_bytes(self) -> int:
        """Code footprint in bytes (drives I-cache behaviour)."""
        return len(self.instructions) * INSTRUCTION_BYTES

    def address_of(self, index: int) -> int:
        return index * INSTRUCTION_BYTES

    def listing(self) -> str:
        """Human-readable disassembly with labels."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for i, instr in enumerate(self.instructions):
            for label in by_index.get(i, []):
                lines.append(f"{label}:")
            lines.append(f"  {i:5d}: {instr}")
        return "\n".join(lines)


class ProgramBuilder:
    """Incrementally build a :class:`Program` with label resolution.

    Every emit method returns ``self`` so code generators can chain calls.
    Branch targets may name labels defined later; they are resolved in
    :meth:`build`.
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._pending: List[Tuple[int, str]] = []
        self._label_counter = 0

    # -- labels -------------------------------------------------------------
    def label(self, name: str) -> "ProgramBuilder":
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def fresh_label(self, prefix: str = "L") -> str:
        """Return a unique label name (not yet defined)."""
        self._label_counter += 1
        return f".{prefix}{self._label_counter}"

    @property
    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    # -- raw emission ----------------------------------------------------------
    def emit(self, instr: Instruction) -> "ProgramBuilder":
        if instr.label is not None and instr.target is None:
            self._pending.append((len(self._instructions), instr.label))
        self._instructions.append(instr)
        return self

    def op(self, opcode: Opcode, **kwargs) -> "ProgramBuilder":
        return self.emit(Instruction(opcode, **kwargs))

    # -- integer ALU -------------------------------------------------------------
    def add(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.ADD, rd=rd, rs1=rs1, rs2=rs2)

    def sub(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.SUB, rd=rd, rs1=rs1, rs2=rs2)

    def and_(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.AND, rd=rd, rs1=rs1, rs2=rs2)

    def orr(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.ORR, rd=rd, rs1=rs1, rs2=rs2)

    def eor(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.EOR, rd=rd, rs1=rs1, rs2=rs2)

    def lsl(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.LSL, rd=rd, rs1=rs1, rs2=rs2)

    def lsr(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.LSR, rd=rd, rs1=rs1, rs2=rs2)

    def mul(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.MUL, rd=rd, rs1=rs1, rs2=rs2)

    def div(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.DIV, rd=rd, rs1=rs1, rs2=rs2)

    def rem(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.REM, rd=rd, rs1=rs1, rs2=rs2)

    def mov(self, rd: int, rs1: int) -> "ProgramBuilder":
        return self.op(Opcode.MOV, rd=rd, rs1=rs1)

    def movi(self, rd: int, imm: int) -> "ProgramBuilder":
        return self.op(Opcode.MOVI, rd=rd, imm=imm)

    def addi(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.op(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)

    def subi(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.op(Opcode.SUBI, rd=rd, rs1=rs1, imm=imm)

    def andi(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.op(Opcode.ANDI, rd=rd, rs1=rs1, imm=imm)

    def orri(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.op(Opcode.ORRI, rd=rd, rs1=rs1, imm=imm)

    def eori(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.op(Opcode.EORI, rd=rd, rs1=rs1, imm=imm)

    def lsli(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.op(Opcode.LSLI, rd=rd, rs1=rs1, imm=imm)

    def lsri(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.op(Opcode.LSRI, rd=rd, rs1=rs1, imm=imm)

    # -- compares -------------------------------------------------------------------
    def cmp(self, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.CMP, rs1=rs1, rs2=rs2)

    def cmpi(self, rs1: int, imm: int) -> "ProgramBuilder":
        return self.op(Opcode.CMPI, rs1=rs1, imm=imm)

    def fcmp(self, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.FCMP, rs1=rs1, rs2=rs2)

    # -- floating point ----------------------------------------------------------------
    def fadd(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.FADD, rd=rd, rs1=rs1, rs2=rs2)

    def fsub(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.FSUB, rd=rd, rs1=rs1, rs2=rs2)

    def fmul(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.FMUL, rd=rd, rs1=rs1, rs2=rs2)

    def fdiv(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.op(Opcode.FDIV, rd=rd, rs1=rs1, rs2=rs2)

    def fmov(self, rd: int, rs1: int) -> "ProgramBuilder":
        return self.op(Opcode.FMOV, rd=rd, rs1=rs1)

    def fmovi(self, rd: int, value: float) -> "ProgramBuilder":
        return self.op(Opcode.FMOVI, rd=rd, fimm=value)

    def fcvt(self, fd: int, rs1: int) -> "ProgramBuilder":
        return self.op(Opcode.FCVT, rd=fd, rs1=rs1)

    def fcvti(self, rd: int, fs1: int) -> "ProgramBuilder":
        return self.op(Opcode.FCVTI, rd=rd, rs1=fs1)

    # -- memory ------------------------------------------------------------------------
    def ldr(self, rd: int, base: int, offset: int = 0) -> "ProgramBuilder":
        return self.op(Opcode.LDR, rd=rd, rs1=base, imm=offset)

    def str_(self, rs2: int, base: int, offset: int = 0) -> "ProgramBuilder":
        return self.op(Opcode.STR, rs1=base, rs2=rs2, imm=offset)

    def fldr(self, fd: int, base: int, offset: int = 0) -> "ProgramBuilder":
        return self.op(Opcode.FLDR, rd=fd, rs1=base, imm=offset)

    def fstr(self, fs2: int, base: int, offset: int = 0) -> "ProgramBuilder":
        return self.op(Opcode.FSTR, rs1=base, rs2=fs2, imm=offset)

    # -- control flow ---------------------------------------------------------------------
    def b(self, label: str) -> "ProgramBuilder":
        return self.op(Opcode.B, label=label)

    def beq(self, label: str) -> "ProgramBuilder":
        return self.op(Opcode.BEQ, label=label)

    def bne(self, label: str) -> "ProgramBuilder":
        return self.op(Opcode.BNE, label=label)

    def blt(self, label: str) -> "ProgramBuilder":
        return self.op(Opcode.BLT, label=label)

    def bge(self, label: str) -> "ProgramBuilder":
        return self.op(Opcode.BGE, label=label)

    def bgt(self, label: str) -> "ProgramBuilder":
        return self.op(Opcode.BGT, label=label)

    def ble(self, label: str) -> "ProgramBuilder":
        return self.op(Opcode.BLE, label=label)

    def cbz(self, rs1: int, label: str) -> "ProgramBuilder":
        return self.op(Opcode.CBZ, rs1=rs1, label=label)

    def cbnz(self, rs1: int, label: str) -> "ProgramBuilder":
        return self.op(Opcode.CBNZ, rs1=rs1, label=label)

    def jal(self, rd: int, label: str) -> "ProgramBuilder":
        return self.op(Opcode.JAL, rd=rd, label=label)

    def jalr(self, rs1: int, rd: int = 0) -> "ProgramBuilder":
        return self.op(Opcode.JALR, rd=rd, rs1=rs1)

    def call(self, label: str) -> "ProgramBuilder":
        """Call ``label`` with the return address in the link register."""
        from .registers import REG_LINK

        return self.jal(REG_LINK, label)

    def ret(self) -> "ProgramBuilder":
        """Return via the link register."""
        from .registers import REG_LINK

        return self.jalr(REG_LINK)

    # -- system ---------------------------------------------------------------------------
    def nop(self) -> "ProgramBuilder":
        return self.op(Opcode.NOP)

    def halt(self) -> "ProgramBuilder":
        return self.op(Opcode.HALT)

    def syscall(self, number: int) -> "ProgramBuilder":
        return self.op(Opcode.SYSCALL, imm=int(number))

    def print_int(self) -> "ProgramBuilder":
        from .instructions import Syscall

        return self.syscall(Syscall.PRINT_INT)

    # -- finalisation -----------------------------------------------------------------------
    def build(self) -> Program:
        """Resolve labels and return the immutable program."""
        instructions = list(self._instructions)
        for index, label in self._pending:
            if label not in self._labels:
                raise ValueError(f"undefined label {label!r} used at instruction {index}")
            instructions[index] = replace(instructions[index], target=self._labels[label])
        for i, instr in enumerate(instructions):
            if instr.is_branch and instr.opcode is not Opcode.JALR and instr.target is None:
                raise ValueError(f"branch without target at instruction {i}: {instr}")
        return Program(tuple(instructions), dict(self._labels), self.name)


def concatenate(name: str, parts: Sequence[Program]) -> Program:
    """Concatenate programs, offsetting labels and branch targets."""
    builder = ProgramBuilder(name)
    offset = 0
    for part in parts:
        for label, index in part.labels.items():
            builder._labels[f"{part.name}.{label}"] = index + offset
        for instr in part.instructions:
            if instr.target is not None:
                builder.emit(replace(instr, target=instr.target + offset))
            else:
                builder.emit(instr)
        offset = builder.here
    return builder.build()
