"""Instruction-set architecture: the functional substrate.

Defines the 64-bit RISC ISA shared by main and checker cores, the sparse
data-memory image, architectural state (the unit of checkpointing), the
functional executor, a program builder and a small text assembler.
"""

from .assembler import AssemblerError, assemble
from .errors import (
    ExecutionLimitExceeded,
    HaltTrap,
    InvalidInstructionTrap,
    InvalidPcTrap,
    MemoryAlignmentTrap,
    MemoryBoundsTrap,
    SimTrap,
)
from .executor import DataPort, Executor, StepInfo
from .instructions import (
    BRANCH_OPCODES,
    FunctionalUnit,
    Instruction,
    MEMORY_OPCODES,
    Opcode,
    Syscall,
)
from .memory_image import LINE_BYTES, MemoryImage, WORD_BYTES, WORDS_PER_LINE, line_address
from .program import Program, ProgramBuilder, concatenate
from .registers import (
    MASK64,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_LINK,
    REG_STACK,
    REG_ZERO,
    Flag,
    RegisterCategory,
    RegisterFile,
    bits_to_float,
    float_to_bits,
    to_signed,
    to_unsigned,
)
from .state import ArchState

__all__ = [
    "AssemblerError",
    "ArchState",
    "BRANCH_OPCODES",
    "DataPort",
    "ExecutionLimitExceeded",
    "Executor",
    "Flag",
    "FunctionalUnit",
    "HaltTrap",
    "Instruction",
    "InvalidInstructionTrap",
    "InvalidPcTrap",
    "LINE_BYTES",
    "MASK64",
    "MEMORY_OPCODES",
    "MemoryAlignmentTrap",
    "MemoryBoundsTrap",
    "MemoryImage",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "REG_LINK",
    "REG_STACK",
    "REG_ZERO",
    "RegisterCategory",
    "RegisterFile",
    "SimTrap",
    "StepInfo",
    "Syscall",
    "WORD_BYTES",
    "WORDS_PER_LINE",
    "assemble",
    "bits_to_float",
    "concatenate",
    "float_to_bits",
    "line_address",
    "to_signed",
    "to_unsigned",
]
