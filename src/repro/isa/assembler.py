"""A small text assembler.

Provided for the examples and tests; the workload generators use
:class:`~repro.isa.program.ProgramBuilder` directly.  Syntax::

    ; comments with ';' or '#'
    loop:
        movi x1, 10
        addi x2, x2, 1
        fmovi f0, 1.5
        ldr  x3, [x4, 8]
        str  x3, [x4]
        cmp  x2, x1
        blt  loop
        halt

Registers are ``x0``..``x31`` and ``f0``..``f15``.  Immediates may be
decimal, hex (``0x..``) or, for ``fmovi``, floating point.
"""

from __future__ import annotations

import re
from typing import List

from .instructions import Instruction, Opcode
from .program import Program, ProgramBuilder
from .registers import NUM_FP_REGS, NUM_INT_REGS

_MNEMONICS = {op.mnemonic: op for op in Opcode}
# 'str' is a Python builtin; the assembly mnemonic is plain 'str'.
_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.]*):$")
_MEM_RE = re.compile(r"^\[\s*(x\d+)\s*(?:,\s*(-?(?:0x[0-9a-fA-F]+|\d+))\s*)?\]$")


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _parse_int_reg(token: str, line: int) -> int:
    if token.startswith("x") and token[1:].isdigit():
        index = int(token[1:])
        if index < NUM_INT_REGS:
            return index
    raise AssemblerError(line, f"expected integer register, got {token!r}")


def _parse_fp_reg(token: str, line: int) -> int:
    if token.startswith("f") and token[1:].isdigit():
        index = int(token[1:])
        if index < NUM_FP_REGS:
            return index
    raise AssemblerError(line, f"expected fp register, got {token!r}")


def _parse_imm(token: str, line: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(line, f"expected immediate, got {token!r}") from None


def _parse_fimm(token: str, line: int) -> float:
    try:
        return float(token)
    except ValueError:
        raise AssemblerError(line, f"expected float immediate, got {token!r}") from None


def _split_operands(rest: str) -> List[str]:
    """Split the operand field on commas not inside brackets."""
    operands, depth, current = [], 0, []
    for char in rest:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


def assemble(source: str, name: str = "asm") -> Program:
    """Assemble ``source`` text into a :class:`Program`."""
    builder = ProgramBuilder(name)
    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            try:
                builder.label(label_match.group(1))
            except ValueError as exc:
                raise AssemblerError(line_number, str(exc)) from None
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        opcode = _MNEMONICS.get(mnemonic)
        if opcode is None:
            raise AssemblerError(line_number, f"unknown mnemonic {mnemonic!r}")
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        builder.emit(_encode(opcode, operands, line_number))
    try:
        return builder.build()
    except ValueError as exc:
        raise AssemblerError(0, str(exc)) from None


def _encode(opcode: Opcode, ops: List[str], line: int) -> Instruction:
    """Encode one instruction from its operand strings."""

    def need(count: int) -> None:
        if len(ops) != count:
            raise AssemblerError(
                line, f"{opcode.mnemonic} expects {count} operands, got {len(ops)}"
            )

    def mem_operand(token: str) -> "tuple[int, int]":
        match = _MEM_RE.match(token)
        if not match:
            raise AssemblerError(line, f"expected memory operand, got {token!r}")
        base = _parse_int_reg(match.group(1), line)
        offset = int(match.group(2), 0) if match.group(2) else 0
        return base, offset

    three_reg = {
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.ORR, Opcode.EOR,
        Opcode.LSL, Opcode.LSR, Opcode.ASR, Opcode.MUL, Opcode.DIV, Opcode.REM,
    }
    three_freg = {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV}
    two_reg_imm = {
        Opcode.ADDI, Opcode.SUBI, Opcode.ANDI, Opcode.ORRI, Opcode.EORI,
        Opcode.LSLI, Opcode.LSRI, Opcode.ASRI,
    }
    flag_branches = {
        Opcode.B, Opcode.BEQ, Opcode.BNE, Opcode.BLT,
        Opcode.BGE, Opcode.BGT, Opcode.BLE,
    }

    if opcode in three_reg:
        need(3)
        return Instruction(
            opcode,
            rd=_parse_int_reg(ops[0], line),
            rs1=_parse_int_reg(ops[1], line),
            rs2=_parse_int_reg(ops[2], line),
        )
    if opcode in three_freg:
        need(3)
        return Instruction(
            opcode,
            rd=_parse_fp_reg(ops[0], line),
            rs1=_parse_fp_reg(ops[1], line),
            rs2=_parse_fp_reg(ops[2], line),
        )
    if opcode in two_reg_imm:
        need(3)
        return Instruction(
            opcode,
            rd=_parse_int_reg(ops[0], line),
            rs1=_parse_int_reg(ops[1], line),
            imm=_parse_imm(ops[2], line),
        )
    if opcode is Opcode.MOV:
        need(2)
        return Instruction(
            opcode, rd=_parse_int_reg(ops[0], line), rs1=_parse_int_reg(ops[1], line)
        )
    if opcode is Opcode.MOVI:
        need(2)
        return Instruction(opcode, rd=_parse_int_reg(ops[0], line), imm=_parse_imm(ops[1], line))
    if opcode is Opcode.FMOV:
        need(2)
        return Instruction(
            opcode, rd=_parse_fp_reg(ops[0], line), rs1=_parse_fp_reg(ops[1], line)
        )
    if opcode is Opcode.FMOVI:
        need(2)
        return Instruction(opcode, rd=_parse_fp_reg(ops[0], line), fimm=_parse_fimm(ops[1], line))
    if opcode is Opcode.FCVT:
        need(2)
        return Instruction(
            opcode, rd=_parse_fp_reg(ops[0], line), rs1=_parse_int_reg(ops[1], line)
        )
    if opcode is Opcode.FCVTI:
        need(2)
        return Instruction(
            opcode, rd=_parse_int_reg(ops[0], line), rs1=_parse_fp_reg(ops[1], line)
        )
    if opcode is Opcode.CMP:
        need(2)
        return Instruction(
            opcode, rs1=_parse_int_reg(ops[0], line), rs2=_parse_int_reg(ops[1], line)
        )
    if opcode is Opcode.CMPI:
        need(2)
        return Instruction(opcode, rs1=_parse_int_reg(ops[0], line), imm=_parse_imm(ops[1], line))
    if opcode is Opcode.FCMP:
        need(2)
        return Instruction(
            opcode, rs1=_parse_fp_reg(ops[0], line), rs2=_parse_fp_reg(ops[1], line)
        )
    if opcode in (Opcode.LDR, Opcode.FLDR):
        need(2)
        parse = _parse_int_reg if opcode is Opcode.LDR else _parse_fp_reg
        base, offset = mem_operand(ops[1])
        return Instruction(opcode, rd=parse(ops[0], line), rs1=base, imm=offset)
    if opcode in (Opcode.STR, Opcode.FSTR):
        need(2)
        parse = _parse_int_reg if opcode is Opcode.STR else _parse_fp_reg
        base, offset = mem_operand(ops[1])
        return Instruction(opcode, rs2=parse(ops[0], line), rs1=base, imm=offset)
    if opcode in flag_branches:
        need(1)
        return Instruction(opcode, label=ops[0])
    if opcode in (Opcode.CBZ, Opcode.CBNZ):
        need(2)
        return Instruction(opcode, rs1=_parse_int_reg(ops[0], line), label=ops[1])
    if opcode is Opcode.JAL:
        need(2)
        return Instruction(opcode, rd=_parse_int_reg(ops[0], line), label=ops[1])
    if opcode is Opcode.JALR:
        if len(ops) == 1:
            return Instruction(opcode, rs1=_parse_int_reg(ops[0], line))
        need(2)
        return Instruction(
            opcode, rd=_parse_int_reg(ops[0], line), rs1=_parse_int_reg(ops[1], line)
        )
    if opcode is Opcode.SYSCALL:
        need(1)
        return Instruction(opcode, imm=_parse_imm(ops[0], line))
    if opcode in (Opcode.NOP, Opcode.HALT):
        need(0)
        return Instruction(opcode)
    raise AssemblerError(line, f"unhandled opcode {opcode}")  # pragma: no cover
