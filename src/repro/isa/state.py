"""Architectural state: registers + PC + retired-instruction count + output.

An :class:`ArchState` is exactly what a ParaMedic/ParaDox checkpoint
captures: everything a checker core needs to re-execute a segment, and
everything the final-state comparison checks.  Memory is *not* part of it —
memory traffic is carried by the load-store log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .registers import RegisterCategory, RegisterFile


@dataclass
class ArchState:
    """Mutable per-core architectural state."""

    regs: RegisterFile = field(default_factory=RegisterFile)
    pc: int = 0
    #: Total retired (committed) instructions since reset.
    instret: int = 0
    #: Buffered syscall output: ``(instret, text)`` pairs.  Output becomes
    #: externally visible only once its segment has been checked.
    output: List[Tuple[int, str]] = field(default_factory=list)
    halted: bool = False

    def snapshot(self) -> "ArchState":
        """Independent copy; the checkpointing primitive."""
        return ArchState(
            regs=self.regs.snapshot(),
            pc=self.pc,
            instret=self.instret,
            output=list(self.output),
            halted=self.halted,
        )

    def restore(self, other: "ArchState") -> None:
        """Roll this state back to ``other`` in place."""
        self.regs.restore(other.regs)
        self.pc = other.pc
        self.instret = other.instret
        self.output = list(other.output)
        self.halted = other.halted

    def matches(self, other: "ArchState") -> bool:
        """Architectural equality, the checker's final-state comparison."""
        return (
            self.pc == other.pc
            and self.halted == other.halted
            and self.regs == other.regs
            and self.output == other.output
        )

    def divergence(self, other: "ArchState") -> Optional[str]:
        """Describe the first difference from ``other``, or ``None``.

        Used for error-detection diagnostics and tests.
        """
        if self.pc != other.pc:
            return f"pc {self.pc} != {other.pc}"
        if self.halted != other.halted:
            return f"halted {self.halted} != {other.halted}"
        for i, (a, b) in enumerate(zip(self.regs.x, other.regs.x)):
            if a != b:
                return f"x{i} {a:#x} != {b:#x}"
        for i, (a, b) in enumerate(zip(self.regs.f, other.regs.f)):
            if a != b:
                return f"f{i} {a:#x} != {b:#x}"
        if self.regs.flags != other.regs.flags:
            return f"flags {self.regs.flags:04b} != {other.regs.flags:04b}"
        if self.output != other.output:
            return "output streams differ"
        return None

    # -- fault-injection support -------------------------------------------------
    def flip_bit(self, category: RegisterCategory, index: int, bit: int) -> None:
        """Flip a bit of a register, the flags, or the PC (``MISC``)."""
        if category is RegisterCategory.MISC:
            # A PC flip within a modest bit range: wild PCs surface as
            # InvalidPcTrap, small flips as silent wrong-path execution.
            self.pc ^= 1 << (bit % 16)
        else:
            self.regs.flip_bit(category, index, bit)
