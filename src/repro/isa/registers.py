"""Register file model.

The ISA exposes the register categories the paper's fault injector
distinguishes ("integers, floats, flags, or miscellaneous", section V-A):

* 32 64-bit integer registers ``x0``..``x31``; ``x0`` is hard-wired to zero
  (writes are discarded), which keeps the workload generators simple.
* 16 double-precision floating-point registers ``f0``..``f15``.
* A 4-bit flags register with the usual NZCV condition bits, written by
  ``CMP``/``CMPI``/``FCMP``.
* Miscellaneous state: the program counter (modelled on
  :class:`~repro.isa.state.ArchState`, but addressed through the same
  fault-category enum).

Floating-point registers are stored as raw 64-bit IEEE-754 patterns so that
bit-level fault injection and load-store-log traffic are uniform: every
value that moves through the machine is a 64-bit integer.
"""

from __future__ import annotations

import enum
import struct
from typing import List

MASK64 = (1 << 64) - 1

NUM_INT_REGS = 32
NUM_FP_REGS = 16

#: Conventional role of a few integer registers, used by the program
#: builder.  The architecture itself does not enforce these.
REG_ZERO = 0
REG_LINK = 30
REG_STACK = 31


class RegisterCategory(enum.Enum):
    """Fault-injection target categories from the paper (section V-A)."""

    INT = "int"
    FLOAT = "float"
    FLAGS = "flags"
    MISC = "misc"


class Flag(enum.IntEnum):
    """Bit positions within the flags register (NZCV)."""

    N = 3  # negative
    Z = 2  # zero
    C = 1  # carry / unsigned overflow
    V = 0  # signed overflow


# Canonical quiet NaN (positive sign, no payload), as RISC-V mandates for
# every arithmetic result.  The host's NaN bits must never leak into the
# architectural state: x86 propagates the *first* source operand's NaN and
# CPython 3.11's adaptive interpreter swaps machine-level operand order
# when it specializes ``BINARY_OP`` for floats, so ``nan_a + nan_b`` can
# change sign between the first and later executions of the same line of
# Python.  Canonicalizing on every float->bits conversion makes FP results
# deterministic across hosts, interpreter warm-up, and the compiled tier.
# Raw bit moves (``write_f_bits``: FMOV, FLDR) still preserve payloads.
CANONICAL_NAN = 0x7FF8000000000000


def float_to_bits(value: float) -> int:
    """Return the 64-bit IEEE-754 pattern of ``value``, NaN-canonicalized."""
    if value != value:
        return CANONICAL_NAN
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    """Return the double encoded by the 64-bit pattern ``bits``."""
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def to_signed(value: int) -> int:
    """Interpret a 64-bit pattern as a signed two's-complement integer."""
    value &= MASK64
    return value - (1 << 64) if value >> 63 else value


def to_unsigned(value: int) -> int:
    """Wrap a Python integer into an unsigned 64-bit pattern."""
    return value & MASK64


class RegisterFile:
    """Integer, floating-point and flags registers for one core.

    Mutable by design: both main-core and checker-core execution update a
    register file in place, and checkpoints snapshot it with
    :meth:`snapshot`.
    """

    __slots__ = ("x", "f", "flags")

    def __init__(self) -> None:
        self.x: List[int] = [0] * NUM_INT_REGS
        self.f: List[int] = [0] * NUM_FP_REGS
        self.flags: int = 0

    # -- integer registers -------------------------------------------------
    def read_x(self, index: int) -> int:
        return self.x[index]

    def write_x(self, index: int, value: int) -> None:
        if index != REG_ZERO:
            self.x[index] = value & MASK64

    # -- floating-point registers ------------------------------------------
    def read_f(self, index: int) -> float:
        return bits_to_float(self.f[index])

    def read_f_bits(self, index: int) -> int:
        return self.f[index]

    def write_f(self, index: int, value: float) -> None:
        self.f[index] = float_to_bits(value)

    def write_f_bits(self, index: int, bits: int) -> None:
        self.f[index] = bits & MASK64

    # -- flags ---------------------------------------------------------------
    def flag(self, flag: Flag) -> bool:
        return bool((self.flags >> flag) & 1)

    def set_flags(self, n: bool, z: bool, c: bool, v: bool) -> None:
        self.flags = (
            (int(n) << Flag.N) | (int(z) << Flag.Z) | (int(c) << Flag.C) | (int(v) << Flag.V)
        )

    # -- snapshots -----------------------------------------------------------
    def snapshot(self) -> "RegisterFile":
        """Return an independent copy (used for checkpoints)."""
        copy = RegisterFile.__new__(RegisterFile)
        copy.x = list(self.x)
        copy.f = list(self.f)
        copy.flags = self.flags
        return copy

    def restore(self, other: "RegisterFile") -> None:
        """Overwrite this register file with the contents of ``other``."""
        self.x[:] = other.x
        self.f[:] = other.f
        self.flags = other.flags

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self.x == other.x and self.f == other.f and self.flags == other.flags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {f"x{i}": v for i, v in enumerate(self.x) if v}
        nonzero.update({f"f{i}": bits_to_float(v) for i, v in enumerate(self.f) if v})
        return f"RegisterFile({nonzero}, flags={self.flags:04b})"

    # -- fault-injection support ----------------------------------------------
    def flip_bit(self, category: RegisterCategory, index: int, bit: int) -> None:
        """Flip one bit of one register, the paper's register fault model.

        ``index`` selects the register within the category; for
        :attr:`RegisterCategory.FLAGS` it is ignored.  Writes to ``x0``
        are discarded, mirroring a flip that lands in hard-wired logic.
        """
        if category is RegisterCategory.INT:
            if index != REG_ZERO:
                self.x[index] ^= 1 << (bit % 64)
        elif category is RegisterCategory.FLOAT:
            self.f[index] ^= 1 << (bit % 64)
        elif category is RegisterCategory.FLAGS:
            self.flags ^= 1 << (bit % 4)
        else:
            raise ValueError(f"cannot flip {category} on a register file")
