"""Architectural data memory.

A flat, word-granular (8-byte) data segment.  The simulator keeps *one*
memory image per system: the main core reads and writes it through a
logging port, checker cores never touch it (they read the load-store log
instead), and rollback restores words or whole cache lines into it.

Words are stored sparsely in a dict keyed by word-aligned byte address;
untouched memory reads as zero, as in gem5's functional memories.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from .errors import MemoryAlignmentTrap, MemoryBoundsTrap
from .registers import MASK64, bits_to_float, float_to_bits

WORD_BYTES = 8
#: Cache-line size used throughout the hierarchy (and for ParaDox's
#: line-granularity rollback).
LINE_BYTES = 64
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES


def check_word_aligned(address: int) -> None:
    if address % WORD_BYTES:
        raise MemoryAlignmentTrap(address)


def line_address(address: int) -> int:
    """Return the address of the cache line containing ``address``."""
    return address & ~(LINE_BYTES - 1)


class MemoryImage:
    """Sparse word-addressed memory with a bounded data segment."""

    __slots__ = ("words", "size")

    def __init__(self, size: int = 1 << 24) -> None:
        #: Size of the mapped data segment in bytes.
        self.size = size
        self.words: Dict[int, int] = {}

    def _check(self, address: int) -> None:
        check_word_aligned(address)
        if not 0 <= address < self.size:
            raise MemoryBoundsTrap(address)

    def load(self, address: int) -> int:
        """Load the 64-bit word at ``address`` (zero if never written)."""
        self._check(address)
        return self.words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        """Store the 64-bit ``value`` at word-aligned ``address``."""
        self._check(address)
        self.words[address] = value & MASK64

    def preload(self, words: Dict[int, int]) -> None:
        """Bulk-initialise from an address -> word mapping (workload setup).

        Validates every address up front, then installs the words with a
        single dict update instead of one checked :meth:`store` per word
        — workload images run to hundreds of thousands of words.
        """
        size = self.size
        for address in words:
            if address % WORD_BYTES or not 0 <= address < size:
                self._check(address)  # raises the precise trap
        self.words.update(
            (address, value & MASK64) for address, value in words.items()
        )

    # -- float convenience ---------------------------------------------------
    def load_float(self, address: int) -> float:
        return bits_to_float(self.load(address))

    def store_float(self, address: int, value: float) -> None:
        self.store(address, float_to_bits(value))

    # -- bulk access for workload setup and verification ----------------------
    def write_words(self, address: int, values: Iterable[int]) -> None:
        """Store consecutive words starting at ``address``.

        Bounds/alignment are validated once per run, not per word, so
        workload memory construction (hundreds of thousands of words) is
        one dict update instead of that many checked stores.
        """
        values = list(values)
        if not values:
            return
        self._check(address)
        last = address + (len(values) - 1) * WORD_BYTES
        if not 0 <= last < self.size:
            raise MemoryBoundsTrap(last)
        self.words.update(
            (address + offset * WORD_BYTES, value & MASK64)
            for offset, value in enumerate(values)
        )

    def read_words(self, address: int, count: int) -> List[int]:
        return [self.load(address + i * WORD_BYTES) for i in range(count)]

    def write_floats(self, address: int, values: Iterable[float]) -> None:
        self.write_words(address, (float_to_bits(v) for v in values))

    def read_floats(self, address: int, count: int) -> List[float]:
        return [bits_to_float(w) for w in self.read_words(address, count)]

    # -- line access for rollback ----------------------------------------------
    def read_line(self, address: int) -> Tuple[int, ...]:
        """Return the ``WORDS_PER_LINE`` words of the line at ``address``."""
        base = line_address(address)
        return tuple(self.words.get(base + i * WORD_BYTES, 0) for i in range(WORDS_PER_LINE))

    def write_line(self, address: int, words: Tuple[int, ...]) -> None:
        """Restore a full cache line captured by :meth:`read_line`."""
        base = line_address(address)
        for i, value in enumerate(words):
            if value:
                self.words[base + i * WORD_BYTES] = value
            else:
                self.words.pop(base + i * WORD_BYTES, None)

    # -- snapshots ---------------------------------------------------------------
    def snapshot(self) -> "MemoryImage":
        """Full copy, used only by tests and golden-run comparison."""
        copy = MemoryImage.__new__(MemoryImage)
        copy.size = self.size
        copy.words = dict(self.words)
        return copy

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryImage):
            return NotImplemented
        mine = {a: v for a, v in self.words.items() if v}
        theirs = {a: v for a, v in other.words.items() if v}
        return self.size == other.size and mine == theirs

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self.words.items()))

    def __len__(self) -> int:
        return sum(1 for v in self.words.values() if v)
