"""Functional execution engine.

One :class:`Executor` advances one :class:`~repro.isa.state.ArchState`
through a program, one instruction per :meth:`Executor.step`.  The same
executor implements both core types: what distinguishes a main core from a
checker core functionally is only the :class:`DataPort` it is given —
a main core's port reads real memory and appends to the load-store log,
while a checker core's port replays the log (see
:mod:`repro.lslog.ports`).

Semantic choices (documented, RISC-V-flavoured, trap-free for the
arithmetic units so that injected faults produce *wrong values* rather than
simulator crashes):

* integer division by zero yields all-ones (quotient) / the dividend
  (remainder);
* shift amounts use only the low 6 bits;
* ``FCVTI`` saturates on overflow and maps NaN to zero.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, Tuple

from .errors import HaltTrap, InvalidPcTrap
from .instructions import Instruction, Opcode, Syscall
from .program import Program
from .registers import MASK64, Flag, to_signed, to_unsigned
from .state import ArchState

#: A register tag: ("x"|"f"|"flags", index).
RegTag = Tuple[str, int]


class DataPort(Protocol):
    """Data-side memory interface of a core."""

    def load(self, address: int) -> int:
        """Return the 64-bit word at ``address``."""
        ...

    def store(self, address: int, value: int) -> None:
        """Write the 64-bit word ``value`` at ``address``."""
        ...


@dataclass
class StepInfo:
    """Everything the timing models need to know about one retired instruction."""

    __slots__ = (
        "instruction",
        "pc_before",
        "pc_after",
        "reads",
        "dest",
        "address",
        "taken",
    )

    instruction: Instruction
    pc_before: int
    pc_after: int
    reads: Tuple[RegTag, ...]
    dest: Optional[RegTag]
    address: Optional[int]
    taken: Optional[bool]


def _flags_from_sub(a: int, b: int) -> Tuple[bool, bool, bool, bool]:
    """NZCV for ``a - b`` with 64-bit two's-complement semantics."""
    sa, sb = to_signed(a), to_signed(b)
    result = (a - b) & MASK64
    n = bool(result >> 63)
    z = result == 0
    c = to_unsigned(a) >= to_unsigned(b)
    signed_result = sa - sb
    v = not (-(1 << 63) <= signed_result < (1 << 63))
    return n, z, c, v


class Executor:
    """Step a program over an architectural state and a data port."""

    def __init__(self, program: Program, state: ArchState, port: DataPort) -> None:
        self.program = program
        self.state = state
        self.port = port
        self._dispatch: Dict[Opcode, Callable[[Instruction], StepInfo]] = {}
        self._build_dispatch()
        # Per-PC decode table: the handler and the instruction are both
        # pure functions of the PC, so resolve them once instead of an
        # instruction fetch plus an enum-keyed dict probe per step.
        dispatch = self._dispatch
        self._decoded = [
            (dispatch[instruction.opcode], instruction)
            for instruction in program.instructions
        ]
        # Optional compiled superblock tier; attach_jit() installs one
        # and run() then prefers compiled dispatch.  step() is always
        # pure interpretation — engine loops that need per-instruction
        # control keep using it and drive the tier themselves.
        self.jit = None

    # -- public API --------------------------------------------------------------
    def attach_jit(self):
        """Install a bare-mode superblock tier and return it.

        Imported lazily: :mod:`repro.jit` builds on this module.
        """
        from ..jit import SuperblockJit

        self.jit = SuperblockJit(self.program, self.state, self.port)
        return self.jit

    def step(self) -> StepInfo:
        """Execute one instruction; raises :class:`SimTrap` subclasses."""
        state = self.state
        if state.halted:
            raise HaltTrap("stepping a halted core")
        pc = state.pc
        if pc < 0:
            raise InvalidPcTrap(pc)
        try:
            handler, instr = self._decoded[pc]
        except IndexError:
            raise InvalidPcTrap(pc) from None
        info = handler(instr)
        state.instret += 1
        return info

    def run(self, max_instructions: int) -> int:
        """Run until HALT or the instruction budget; return instructions retired."""
        state = self.state
        jit = self.jit
        if jit is not None:
            # Retired count comes from the instret delta: both step()
            # and compiled blocks advance instret exactly once per
            # retired instruction, and the blocks' flush discipline
            # keeps it exact even when a port trap propagates out.
            start = state.instret
            limit = start + max_instructions
            active_get = jit._active.get
            runner = jit.runner
            step = self.step
            dispatches = 0
            block_instructions = 0
            try:
                while not state.halted:
                    instret = state.instret
                    if instret >= limit:
                        break
                    # None doubles as "cached non-block" and "miss";
                    # runner() resolves both (the former in one probe).
                    entry = active_get(state.pc)
                    if entry is None:
                        entry = runner(state.pc)
                    if entry is not None and instret + entry.length <= limit:
                        entry.run()
                        dispatches += 1
                        block_instructions += entry.length
                        continue
                    step()
            finally:
                stats = jit.stats
                stats.dispatches += dispatches
                stats.instructions += block_instructions
            return state.instret - start
        retired = 0
        while not state.halted and retired < max_instructions:
            self.step()
            retired += 1
        return retired

    # -- helpers --------------------------------------------------------------------
    def _advance(
        self,
        instr: Instruction,
        reads: Tuple[RegTag, ...],
        dest: Optional[RegTag],
        address: Optional[int] = None,
        next_pc: Optional[int] = None,
        taken: Optional[bool] = None,
    ) -> StepInfo:
        state = self.state
        pc_before = state.pc
        state.pc = pc_before + 1 if next_pc is None else next_pc
        return StepInfo(instr, pc_before, state.pc, reads, dest, address, taken)

    # -- dispatch construction --------------------------------------------------------
    def _build_dispatch(self) -> None:
        d = self._dispatch
        regs = self.state.regs

        def binop(fn: Callable[[int, int], int]) -> Callable[[Instruction], StepInfo]:
            def execute(instr: Instruction) -> StepInfo:
                value = fn(regs.x[instr.rs1], regs.x[instr.rs2])
                regs.write_x(instr.rd, value)
                return self._advance(
                    instr, (("x", instr.rs1), ("x", instr.rs2)), ("x", instr.rd)
                )

            return execute

        def immop(fn: Callable[[int, int], int]) -> Callable[[Instruction], StepInfo]:
            def execute(instr: Instruction) -> StepInfo:
                value = fn(regs.x[instr.rs1], instr.imm)
                regs.write_x(instr.rd, value)
                return self._advance(instr, (("x", instr.rs1),), ("x", instr.rd))

            return execute

        def fbinop(fn: Callable[[float, float], float]) -> Callable[[Instruction], StepInfo]:
            def execute(instr: Instruction) -> StepInfo:
                value = fn(regs.read_f(instr.rs1), regs.read_f(instr.rs2))
                regs.write_f(instr.rd, value)
                return self._advance(
                    instr, (("f", instr.rs1), ("f", instr.rs2)), ("f", instr.rd)
                )

            return execute

        def sdiv(a: int, b: int) -> int:
            if b == 0:
                return MASK64
            sa, sb = to_signed(a), to_signed(b)
            q = abs(sa) // abs(sb)
            return to_unsigned(-q if (sa < 0) != (sb < 0) else q)

        def srem(a: int, b: int) -> int:
            if b == 0:
                return a
            sa, sb = to_signed(a), to_signed(b)
            r = abs(sa) % abs(sb)
            return to_unsigned(-r if sa < 0 else r)

        def fdiv(a: float, b: float) -> float:
            if b == 0.0:
                # IEEE 754: x/±0 is ±inf with the XOR of the operand
                # signs (so 1.0/-0.0 is -inf), and 0/0 or NaN/0 is NaN.
                if a == 0.0 or math.isnan(a):
                    return float("nan")
                return math.copysign(float("inf"), a) * math.copysign(1.0, b)
            return a / b

        d[Opcode.ADD] = binop(lambda a, b: a + b)
        d[Opcode.SUB] = binop(lambda a, b: a - b)
        d[Opcode.AND] = binop(lambda a, b: a & b)
        d[Opcode.ORR] = binop(lambda a, b: a | b)
        d[Opcode.EOR] = binop(lambda a, b: a ^ b)
        d[Opcode.LSL] = binop(lambda a, b: a << (b & 63))
        d[Opcode.LSR] = binop(lambda a, b: a >> (b & 63))
        d[Opcode.ASR] = binop(lambda a, b: to_unsigned(to_signed(a) >> (b & 63)))
        d[Opcode.MUL] = binop(lambda a, b: a * b)
        d[Opcode.DIV] = binop(sdiv)
        d[Opcode.REM] = binop(srem)
        d[Opcode.ADDI] = immop(lambda a, i: a + i)
        d[Opcode.SUBI] = immop(lambda a, i: a - i)
        d[Opcode.ANDI] = immop(lambda a, i: a & to_unsigned(i))
        d[Opcode.ORRI] = immop(lambda a, i: a | to_unsigned(i))
        d[Opcode.EORI] = immop(lambda a, i: a ^ to_unsigned(i))
        d[Opcode.LSLI] = immop(lambda a, i: a << (i & 63))
        d[Opcode.LSRI] = immop(lambda a, i: a >> (i & 63))
        d[Opcode.ASRI] = immop(lambda a, i: to_unsigned(to_signed(a) >> (i & 63)))
        d[Opcode.FADD] = fbinop(lambda a, b: a + b)
        d[Opcode.FSUB] = fbinop(lambda a, b: a - b)
        d[Opcode.FMUL] = fbinop(lambda a, b: a * b)
        d[Opcode.FDIV] = fbinop(fdiv)

        d[Opcode.MOV] = self._exec_mov
        d[Opcode.MOVI] = self._exec_movi
        d[Opcode.CMP] = self._exec_cmp
        d[Opcode.CMPI] = self._exec_cmpi
        d[Opcode.FCMP] = self._exec_fcmp
        d[Opcode.FMOV] = self._exec_fmov
        d[Opcode.FMOVI] = self._exec_fmovi
        d[Opcode.FCVT] = self._exec_fcvt
        d[Opcode.FCVTI] = self._exec_fcvti
        d[Opcode.LDR] = self._exec_load
        d[Opcode.FLDR] = self._exec_load
        d[Opcode.STR] = self._exec_store
        d[Opcode.FSTR] = self._exec_store
        d[Opcode.B] = self._exec_b
        for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BGT, Opcode.BLE):
            d[op] = self._exec_cond_branch
        d[Opcode.CBZ] = self._exec_cb
        d[Opcode.CBNZ] = self._exec_cb
        d[Opcode.JAL] = self._exec_jal
        d[Opcode.JALR] = self._exec_jalr
        d[Opcode.NOP] = self._exec_nop
        d[Opcode.HALT] = self._exec_halt
        d[Opcode.SYSCALL] = self._exec_syscall

    # -- individual handlers -------------------------------------------------------------
    def _exec_mov(self, instr: Instruction) -> StepInfo:
        self.state.regs.write_x(instr.rd, self.state.regs.x[instr.rs1])
        return self._advance(instr, (("x", instr.rs1),), ("x", instr.rd))

    def _exec_movi(self, instr: Instruction) -> StepInfo:
        self.state.regs.write_x(instr.rd, to_unsigned(instr.imm))
        return self._advance(instr, (), ("x", instr.rd))

    def _exec_cmp(self, instr: Instruction) -> StepInfo:
        regs = self.state.regs
        regs.set_flags(*_flags_from_sub(regs.x[instr.rs1], regs.x[instr.rs2]))
        return self._advance(
            instr, (("x", instr.rs1), ("x", instr.rs2)), ("flags", 0)
        )

    def _exec_cmpi(self, instr: Instruction) -> StepInfo:
        regs = self.state.regs
        regs.set_flags(*_flags_from_sub(regs.x[instr.rs1], to_unsigned(instr.imm)))
        return self._advance(instr, (("x", instr.rs1),), ("flags", 0))

    def _exec_fcmp(self, instr: Instruction) -> StepInfo:
        regs = self.state.regs
        a, b = regs.read_f(instr.rs1), regs.read_f(instr.rs2)
        if a != a or b != b:  # unordered (NaN)
            regs.set_flags(False, False, True, True)
        else:
            regs.set_flags(a < b, a == b, a >= b, False)
        return self._advance(instr, (("f", instr.rs1), ("f", instr.rs2)), ("flags", 0))

    def _exec_fmov(self, instr: Instruction) -> StepInfo:
        regs = self.state.regs
        regs.write_f_bits(instr.rd, regs.read_f_bits(instr.rs1))
        return self._advance(instr, (("f", instr.rs1),), ("f", instr.rd))

    def _exec_fmovi(self, instr: Instruction) -> StepInfo:
        self.state.regs.write_f(instr.rd, instr.fimm)
        return self._advance(instr, (), ("f", instr.rd))

    def _exec_fcvt(self, instr: Instruction) -> StepInfo:
        regs = self.state.regs
        regs.write_f(instr.rd, float(to_signed(regs.x[instr.rs1])))
        return self._advance(instr, (("x", instr.rs1),), ("f", instr.rd))

    def _exec_fcvti(self, instr: Instruction) -> StepInfo:
        regs = self.state.regs
        value = regs.read_f(instr.rs1)
        if value != value:  # NaN
            result = 0
        elif value >= 2.0**63:
            result = (1 << 63) - 1
        elif value <= -(2.0**63):
            result = 1 << 63  # most-negative pattern
        else:
            result = to_unsigned(int(value))
        regs.write_x(instr.rd, result)
        return self._advance(instr, (("f", instr.rs1),), ("x", instr.rd))

    def _exec_load(self, instr: Instruction) -> StepInfo:
        regs = self.state.regs
        address = (regs.x[instr.rs1] + instr.imm) & MASK64
        value = self.port.load(address)
        if instr.opcode is Opcode.LDR:
            regs.write_x(instr.rd, value)
            dest: RegTag = ("x", instr.rd)
        else:
            regs.write_f_bits(instr.rd, value)
            dest = ("f", instr.rd)
        return self._advance(instr, (("x", instr.rs1),), dest, address=address)

    def _exec_store(self, instr: Instruction) -> StepInfo:
        regs = self.state.regs
        address = (regs.x[instr.rs1] + instr.imm) & MASK64
        if instr.opcode is Opcode.STR:
            value = regs.x[instr.rs2]
            reads: Tuple[RegTag, ...] = (("x", instr.rs1), ("x", instr.rs2))
        else:
            value = regs.read_f_bits(instr.rs2)
            reads = (("x", instr.rs1), ("f", instr.rs2))
        self.port.store(address, value)
        return self._advance(instr, reads, None, address=address)

    def _exec_b(self, instr: Instruction) -> StepInfo:
        return self._advance(instr, (), None, next_pc=instr.target, taken=True)

    _CONDITIONS = {
        Opcode.BEQ: lambda n, z, c, v: z,
        Opcode.BNE: lambda n, z, c, v: not z,
        Opcode.BLT: lambda n, z, c, v: n != v,
        Opcode.BGE: lambda n, z, c, v: n == v,
        Opcode.BGT: lambda n, z, c, v: not z and n == v,
        Opcode.BLE: lambda n, z, c, v: z or n != v,
    }

    def _exec_cond_branch(self, instr: Instruction) -> StepInfo:
        regs = self.state.regs
        n, z = regs.flag(Flag.N), regs.flag(Flag.Z)
        c, v = regs.flag(Flag.C), regs.flag(Flag.V)
        taken = self._CONDITIONS[instr.opcode](n, z, c, v)
        next_pc = instr.target if taken else None
        return self._advance(instr, (("flags", 0),), None, next_pc=next_pc, taken=taken)

    def _exec_cb(self, instr: Instruction) -> StepInfo:
        value = self.state.regs.x[instr.rs1]
        taken = (value == 0) if instr.opcode is Opcode.CBZ else (value != 0)
        next_pc = instr.target if taken else None
        return self._advance(instr, (("x", instr.rs1),), None, next_pc=next_pc, taken=taken)

    def _exec_jal(self, instr: Instruction) -> StepInfo:
        self.state.regs.write_x(instr.rd, self.state.pc + 1)
        return self._advance(instr, (), ("x", instr.rd), next_pc=instr.target, taken=True)

    def _exec_jalr(self, instr: Instruction) -> StepInfo:
        regs = self.state.regs
        next_pc = regs.x[instr.rs1]
        regs.write_x(instr.rd, self.state.pc + 1)
        return self._advance(
            instr, (("x", instr.rs1),), ("x", instr.rd), next_pc=next_pc, taken=True
        )

    def _exec_nop(self, instr: Instruction) -> StepInfo:
        return self._advance(instr, (), None)

    def _exec_halt(self, instr: Instruction) -> StepInfo:
        self.state.halted = True
        return self._advance(instr, (), None)

    def _exec_syscall(self, instr: Instruction) -> StepInfo:
        state = self.state
        number = instr.imm
        if number == Syscall.EXIT:
            state.halted = True
        elif number == Syscall.PRINT_INT:
            state.output.append((state.instret, str(to_signed(state.regs.x[1]))))
        elif number == Syscall.PRINT_FLOAT:
            state.output.append((state.instret, repr(state.regs.read_f(1))))
        elif number == Syscall.GET_INSTRET:
            state.regs.write_x(1, state.instret)
        elif number == Syscall.WRITE_EXTERNAL:
            # Functionally identical to PRINT_INT (the value lands in the
            # output stream, so checkers verify it); the engine is
            # responsible for draining checks before this retires.
            state.output.append((state.instret, f"ext:{to_signed(state.regs.x[1])}"))
        else:
            # Unknown syscalls are NOPs; a corrupted syscall number on a
            # checker therefore diverges through its (lack of) effects.
            pass
        return self._advance(instr, (("x", 1),), None)
