"""Structured tracing and metrics for the simulator (observability layer).

The subsystem has four parts:

* :mod:`~repro.telemetry.events` — the typed event model and versioned
  wire schema (:class:`TraceEvent`, :class:`EventSource`,
  :data:`SCHEMA_VERSION`);
* :mod:`~repro.telemetry.tracer` — the :class:`Tracer` event bus the
  engine and every adaptive controller emit into when
  ``EngineOptions.tracing`` is on;
* :mod:`~repro.telemetry.metrics` — :class:`MetricsRegistry`
  counters/gauges/histograms and the cross-run :func:`merge_metrics`;
* :mod:`~repro.telemetry.exporters` — JSONL (lossless, validated) and
  Chrome/Perfetto ``trace_event`` JSON, plus the multi-run
  :func:`merge_traces`;
* :mod:`~repro.telemetry.stream` — append-and-tail JSONL for *live*
  event streams (:class:`JsonlAppender` / :func:`tail_jsonl`), the
  transport behind ``repro serve``'s ``/jobs/<id>/events``.

See ``docs/OBSERVABILITY.md`` for the event glossary, how to open a
trace in the Perfetto UI, and the overhead guarantees.
"""

from .events import (
    KNOWN_KINDS,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    EventSource,
    SchemaError,
    TraceEvent,
    validate_event_dict,
)
from .exporters import (
    events_from_dicts,
    merge_traces,
    perfetto_events,
    read_jsonl,
    read_jsonl_path,
    to_perfetto,
    validate_jsonl_path,
    write_jsonl,
    write_jsonl_path,
    write_perfetto_path,
)
from .metrics import DEFAULT_EDGES, Histogram, MetricsRegistry, merge_metrics
from .stream import JsonlAppender, read_jsonl_tail, tail_jsonl
from .tracer import Tracer

__all__ = [
    "DEFAULT_EDGES",
    "EventSource",
    "Histogram",
    "JsonlAppender",
    "KNOWN_KINDS",
    "MetricsRegistry",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SchemaError",
    "TraceEvent",
    "Tracer",
    "events_from_dicts",
    "merge_metrics",
    "merge_traces",
    "perfetto_events",
    "read_jsonl",
    "read_jsonl_path",
    "read_jsonl_tail",
    "tail_jsonl",
    "to_perfetto",
    "validate_event_dict",
    "validate_jsonl_path",
    "write_jsonl",
    "write_jsonl_path",
    "write_perfetto_path",
]
