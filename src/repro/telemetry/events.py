"""The telemetry event model and its versioned wire schema.

One :class:`TraceEvent` records one transition somewhere in the stack at
one wall-clock instant.  Every event names its *source* — which layer of
the simulator emitted it — and a *kind* drawn from that source's
vocabulary, so consumers (exporters, tests, external tools) can filter
without string-matching free-form details.

The JSONL wire format is versioned through :data:`SCHEMA_VERSION`; a
file's header line carries the version it was written with, and
:func:`validate_event_dict` enforces the schema when a trace is loaded
back.  Extending the vocabulary (new kinds, new sources) is backwards
compatible; changing field names or types requires a version bump.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

#: Version of the JSONL/Perfetto event schema.  Bump when a field is
#: renamed or retyped; adding kinds/sources is compatible within one
#: version.
SCHEMA_VERSION = 1

#: Identifier written to JSONL headers so a reader can cheaply reject
#: files that are not repro telemetry at all.
SCHEMA_NAME = "repro.telemetry"


class EventSource(enum.Enum):
    """Which layer of the simulator emitted an event."""

    #: Segment lifecycle on the main core: open/close/dispatch/commit/
    #: detect/rollback/external flush (the :class:`~repro.stats.timeline.
    #: Timeline` vocabulary, generalized).
    ENGINE = "engine"
    #: The dynamic voltage controller: voltage steps, tide-mark moves,
    #: escalation holds.
    DVFS = "dvfs"
    #: The fault injector: where and what kind of fault fired.
    FAULTS = "faults"
    #: The resilience layer: guard escalation stages, checker
    #: quarantine/vindication/absolution.
    RESILIENCE = "resilience"
    #: The checkpoint-length controller: target adaptation.
    CHECKPOINT = "checkpoint"
    #: The checker pool: busy intervals and squashed checks.
    SCHEDULING = "scheduling"
    #: The differential-execution oracle: fuzz cases, checkpoint-level
    #: cross-checks, and first divergences (``repro fuzz``/``diffcheck``).
    ORACLE = "oracle"
    #: The design-space explorer (``repro explore``): per-genome
    #: evaluations, generation summaries, and Pareto-front snapshots.
    #: Explore events use the *generation index* as their logical time —
    #: the search has no simulated clock, and wall-clock stamps would
    #: break the byte-identical-resume guarantee.
    EXPLORE = "explore"
    #: The multi-main-core harness (shared checker pool): per-main
    #: fairness/throughput attribution emitted once at the end of a run.
    MULTICORE = "multicore"


#: Event kinds each source may emit.  ``validate_event_dict`` enforces
#: membership, so a typo'd kind fails at write/load time instead of
#: silently producing an empty track.
KNOWN_KINDS: Dict[str, frozenset] = {
    EventSource.ENGINE.value: frozenset(
        {
            "segment_open",
            "segment_close",
            "dispatch",
            "commit",
            "detect",
            "rollback",
            "external_flush",
        }
    ),
    EventSource.DVFS.value: frozenset(
        {"voltage", "tide_mark", "tide_reset", "escalate", "hold_release"}
    ),
    # ``inject``: a fault fired (detail carries the site, model, and —
    # for SRAM-map faults — cell coordinates and cluster id).
    # ``sram_map``: a voltage change re-thresholded a bit-cell map
    # (value carries the new active-cell count).
    EventSource.FAULTS.value: frozenset({"inject", "sram_map"}),
    EventSource.RESILIENCE.value: frozenset(
        {"escalation", "quarantine", "vindication", "absolution"}
    ),
    EventSource.CHECKPOINT.value: frozenset({"target"}),
    EventSource.SCHEDULING.value: frozenset({"busy", "abort"}),
    EventSource.ORACLE.value: frozenset(
        {"fuzz_case", "checkpoint", "divergence"}
    ),
    # ``evaluation``: one genome scored (value = its energy objective,
    # detail = genome key + objective vector).  ``generation``: one
    # generation finished (value = front size).  ``front``: the final
    # Pareto front (value = hypervolume).
    EventSource.EXPLORE.value: frozenset({"evaluation", "generation", "front"}),
    # ``core_done``: one main core finished (core = main id, value =
    # its wall_ns).  ``dispatch_share`` / ``busy_share`` / ``wait_ns``:
    # per-main fairness attribution (core = main id).  ``wait_gini``:
    # pool-wide concentration of the waiting cost.
    EventSource.MULTICORE.value: frozenset(
        {"core_done", "dispatch_share", "busy_share", "wait_ns", "wait_gini"}
    ),
}


class SchemaError(ValueError):
    """A serialized event (or trace file) violates the telemetry schema."""


@dataclass(frozen=True)
class TraceEvent:
    """One transition at one wall-clock instant, anywhere in the stack."""

    time_ns: float
    #: An :class:`EventSource` value.
    source: str
    #: One of ``KNOWN_KINDS[source]``.
    kind: str
    #: Segment sequence number the event concerns (0 when N/A).
    segment: int = 0
    #: Checker core involved (-1 when N/A).
    core: int = -1
    #: Numeric payload: a voltage, a target length, a duration... (None
    #: when the event carries no scalar).
    value: Optional[float] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Compact dict for the JSONL wire format (defaults elided)."""
        data: Dict[str, Any] = {
            "t": self.time_ns,
            "src": self.source,
            "kind": self.kind,
        }
        if self.segment:
            data["seg"] = self.segment
        if self.core >= 0:
            data["core"] = self.core
        if self.value is not None:
            data["value"] = self.value
        if self.detail:
            data["detail"] = self.detail
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        validate_event_dict(data)
        return cls(
            time_ns=float(data["t"]),
            source=data["src"],
            kind=data["kind"],
            segment=int(data.get("seg", 0)),
            core=int(data.get("core", -1)),
            value=(float(data["value"]) if "value" in data else None),
            detail=str(data.get("detail", "")),
        )


def validate_event_dict(data: Mapping[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid wire event."""
    if not isinstance(data, Mapping):
        raise SchemaError(f"event must be an object, got {type(data).__name__}")
    for key in ("t", "src", "kind"):
        if key not in data:
            raise SchemaError(f"event missing required field {key!r}: {data!r}")
    if not isinstance(data["t"], (int, float)) or isinstance(data["t"], bool):
        raise SchemaError(f"event field 't' must be a number: {data!r}")
    source = data["src"]
    kinds = KNOWN_KINDS.get(source)
    if kinds is None:
        raise SchemaError(
            f"unknown event source {source!r}; expected one of "
            f"{sorted(KNOWN_KINDS)}"
        )
    if data["kind"] not in kinds:
        raise SchemaError(
            f"unknown kind {data['kind']!r} for source {source!r}; "
            f"expected one of {sorted(kinds)}"
        )
    if "seg" in data and not isinstance(data["seg"], int):
        raise SchemaError(f"event field 'seg' must be an integer: {data!r}")
    if "core" in data and not isinstance(data["core"], int):
        raise SchemaError(f"event field 'core' must be an integer: {data!r}")
    if "value" in data and (
        not isinstance(data["value"], (int, float)) or isinstance(data["value"], bool)
    ):
        raise SchemaError(f"event field 'value' must be a number: {data!r}")
    if "detail" in data and not isinstance(data["detail"], str):
        raise SchemaError(f"event field 'detail' must be a string: {data!r}")
