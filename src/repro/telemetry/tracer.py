"""The typed event bus every instrumented layer emits into.

A :class:`Tracer` generalizes :class:`repro.stats.timeline.Timeline`:
the engine's segment-lifecycle events flow through it unchanged, and the
adaptive controllers (DVFS, checkpoint length, fault injector, forward-
progress guard, checker health, scheduling pool) publish their own
transitions alongside, stamped onto the same wall clock.  One tracer per
engine; the engine owns it and hands a reference to each subcomponent.

Disabled tracing is represented by *absence*: components hold
``tracer = None`` and guard emission with one ``is not None`` test at
segment/checkpoint granularity, never per instruction, so the disabled
path costs nothing measurable (see ``docs/PERFORMANCE.md``).

Components that are called without an explicit wall-clock time (the
fault injector mid-replay, health attribution) stamp events with
:attr:`Tracer.now_ns`, which the engine keeps current at every segment
boundary — sub-segment precision is not meaningful for them anyway,
since checker replay is simulated as a single analytic interval.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .events import KNOWN_KINDS, SchemaError, TraceEvent
from .metrics import MetricsRegistry


class Tracer:
    """Ordered, typed event log plus the run's metrics registry."""

    def __init__(self, **meta: Any) -> None:
        #: Free-form run identity (system, workload, seed...) carried
        #: into exporter headers and Perfetto process names.
        self.meta: Dict[str, Any] = dict(meta)
        self.events: List[TraceEvent] = []
        self.metrics = MetricsRegistry()
        #: The engine's current wall-clock time, used to stamp events
        #: from components that are not handed a time explicitly.
        self.now_ns: float = 0.0

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        source: str,
        kind: str,
        time_ns: Optional[float] = None,
        segment: int = 0,
        core: int = -1,
        value: Optional[float] = None,
        detail: str = "",
    ) -> None:
        """Record one event; ``time_ns=None`` stamps :attr:`now_ns`."""
        kinds = KNOWN_KINDS.get(source)
        if kinds is None:
            raise SchemaError(f"unknown event source {source!r}")
        if kind not in kinds:
            raise SchemaError(f"unknown kind {kind!r} for source {source!r}")
        self.events.append(
            TraceEvent(
                time_ns=self.now_ns if time_ns is None else time_ns,
                source=source,
                kind=kind,
                segment=segment,
                core=core,
                value=value,
                detail=detail,
            )
        )

    # -- queries ---------------------------------------------------------------
    def of_source(self, source: str) -> List[TraceEvent]:
        return [event for event in self.events if event.source == source]

    def of_kind(self, source: str, kind: str) -> List[TraceEvent]:
        return [
            event
            for event in self.events
            if event.source == source and event.kind == kind
        ]

    def in_time_order(self) -> List[TraceEvent]:
        """Events sorted by wall time (recording order can differ:
        commit events carry earlier, lazily-resolved timestamps)."""
        return sorted(self.events, key=lambda event: event.time_ns)

    def span_ns(self) -> float:
        if not self.events:
            return 0.0
        times = [event.time_ns for event in self.events]
        return max(times) - min(times)

    # -- serialization ---------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        """Wire-format event dicts, in recording order."""
        return [event.to_dict() for event in self.events]
