"""Counters, gauges and histograms for one run — and their cross-run merge.

A :class:`MetricsRegistry` is deliberately dumb: string-named counters
(monotonic sums), gauges (last-write-wins scalars) and fixed-bucket
histograms.  The simulator's hot path never touches it — controllers
increment at checkpoint/dispatch granularity, and the engine derives the
bulk of the summary from run statistics it already keeps — so a run with
telemetry disabled pays nothing, and a run with it enabled pays only at
segment boundaries.

:func:`merge_metrics` folds many runs' serialized registries into one
report: counters and histograms add; gauges aggregate into
``{min, max, mean}`` because "final voltage" of eight workers has no
single truthful value.  The merged shape is distinguishable from a
single run's by its ``merged_runs`` count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .events import SCHEMA_NAME, SCHEMA_VERSION, SchemaError

#: Default histogram bucket edges (unit-agnostic, roughly log-spaced).
#: A value lands in the first bucket whose edge is >= value; the last
#: bucket is the overflow.
DEFAULT_EDGES: Tuple[float, ...] = (
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
)


@dataclass
class Histogram:
    """Fixed-bucket histogram; merging two is bucket-wise addition."""

    edges: Tuple[float, ...] = DEFAULT_EDGES
    counts: List[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)
        if len(self.counts) != len(self.edges) + 1:
            raise ValueError(
                f"histogram needs {len(self.edges) + 1} buckets, "
                f"got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        for index, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Histogram":
        return cls(
            edges=tuple(data["edges"]),
            counts=list(data["counts"]),
            total=int(data["total"]),
            sum=float(data["sum"]),
        )

    def merge(self, other: "Histogram") -> None:
        if tuple(other.edges) != tuple(self.edges):
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum


class MetricsRegistry:
    """Named counters, gauges and histograms for one simulation run."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Per-checker lists (utilization, dispatch counts...), keyed by
        #: metric name; merged element-wise across runs.
        self.per_checker: Dict[str, List[float]] = {}

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(
        self, name: str, value: float, edges: Sequence[float] = DEFAULT_EDGES
    ) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(edges=tuple(edges))
        histogram.observe(value)

    def set_per_checker(self, name: str, values: Sequence[float]) -> None:
        self.per_checker[name] = [float(v) for v in values]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self.histograms.items()
            },
            "per_checker": {
                name: list(values) for name, values in self.per_checker.items()
            },
        }


def _require_metrics_dict(data: Mapping[str, Any]) -> None:
    if data.get("schema") != SCHEMA_NAME:
        raise SchemaError(f"not a telemetry metrics dict: {data.get('schema')!r}")
    if data.get("version") != SCHEMA_VERSION:
        raise SchemaError(
            f"metrics schema version {data.get('version')!r} "
            f"!= supported {SCHEMA_VERSION}"
        )


def merge_metrics(
    runs: Sequence[Optional[Mapping[str, Any]]],
) -> Dict[str, Any]:
    """Aggregate many runs' ``MetricsRegistry.to_dict()`` payloads.

    ``None`` entries (runs without telemetry, crashed workers) are
    skipped but counted in ``skipped_runs`` so a merged report never
    silently claims more coverage than it has.

    The merge nests: an entry may itself be a previous
    :func:`merge_metrics` output (a multicore cell merges its M mains'
    registries before the campaign merges its cells), recognised by its
    ``merged_runs`` key and weighted accordingly, so ``merged_runs``
    always counts underlying engine runs.
    """
    present = [run for run in runs if run is not None]
    for run in present:
        _require_metrics_dict(run)

    counters: Dict[str, float] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    histograms: Dict[str, Histogram] = {}
    per_checker: Dict[str, List[float]] = {}
    per_checker_runs: Dict[str, int] = {}
    total_runs = 0
    nested_skipped = 0

    for run in present:
        weight = int(run.get("merged_runs", 1))
        total_runs += weight
        nested_skipped += int(run.get("skipped_runs", 0))
        for name, value in run.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in run.get("gauges", {}).items():
            if isinstance(value, Mapping):  # already-merged stats
                vmin, vmax = value["min"], value["max"]
                vsum, n = value["mean"] * weight, weight
            else:
                vmin = vmax = vsum = value
                n = 1
            stats = gauges.setdefault(
                name, {"min": vmin, "max": vmax, "mean": 0.0, "_n": 0}
            )
            stats["min"] = min(stats["min"], vmin)
            stats["max"] = max(stats["max"], vmax)
            stats["mean"] += vsum
            stats["_n"] += n
        for name, payload in run.get("histograms", {}).items():
            incoming = Histogram.from_dict(payload)
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = incoming
            else:
                existing.merge(incoming)
        for name, values in run.get("per_checker", {}).items():
            summed = per_checker.setdefault(name, [0.0] * len(values))
            if len(summed) < len(values):
                summed.extend([0.0] * (len(values) - len(summed)))
            for index, value in enumerate(values):
                summed[index] += value * weight
            per_checker_runs[name] = per_checker_runs.get(name, 0) + weight

    for stats in gauges.values():
        n = stats.pop("_n")
        stats["mean"] = stats["mean"] / n if n else 0.0
    # Per-checker lists are mean-per-core across runs (a utilization sum
    # over eight runs is not a utilization).
    for name, summed in per_checker.items():
        n = per_checker_runs[name] or 1
        per_checker[name] = [value / n for value in summed]

    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "merged_runs": total_runs,
        "skipped_runs": len(runs) - len(present) + nested_skipped,
        "counters": counters,
        "gauges": gauges,
        "histograms": {
            name: histogram.to_dict() for name, histogram in histograms.items()
        },
        "per_checker": per_checker,
    }
