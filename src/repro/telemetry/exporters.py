"""Trace exporters: versioned JSONL and Chrome/Perfetto ``trace_event``.

Two serializations of the same event stream:

* **JSONL** — one header object (schema name/version plus the tracer's
  run metadata) followed by one event object per line.  Lossless and
  diffable; :func:`read_jsonl` round-trips exactly what
  :func:`write_jsonl` wrote, validating every line against the schema.
* **Perfetto** — the Chrome ``trace_event`` JSON format, loadable at
  https://ui.perfetto.dev.  Each run becomes one *process*: the main
  core is a thread carrying segment slices and detection/rollback/flush
  instants, each checker core is its own thread carrying busy slices,
  and the supply voltage and checkpoint-length target render as counter
  tracks.  Times convert from simulated nanoseconds to the format's
  microseconds.

:func:`merge_traces` lays any number of runs (a SPEC suite, an injection
campaign) side by side in one Perfetto file, one process per run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Sequence, Tuple

from .events import SCHEMA_NAME, SCHEMA_VERSION, SchemaError, TraceEvent

#: Perfetto thread IDs: the main core, then one thread per checker.
MAIN_TID = 0
CHECKER_TID_BASE = 100


# ------------------------------------------------------------------- JSONL --
def write_jsonl(
    handle: IO[str],
    events: Iterable[TraceEvent],
    meta: Optional[Mapping[str, Any]] = None,
) -> int:
    """Write a header line plus one event per line; returns event count."""
    header = {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "meta": dict(meta or {}),
    }
    handle.write(json.dumps(header) + "\n")
    count = 0
    for event in events:
        handle.write(json.dumps(event.to_dict()) + "\n")
        count += 1
    return count


def write_jsonl_path(
    path: str,
    events: Iterable[TraceEvent],
    meta: Optional[Mapping[str, Any]] = None,
) -> int:
    with open(path, "w", encoding="utf-8") as handle:
        return write_jsonl(handle, events, meta)


def read_jsonl(handle: IO[str]) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Load and validate a JSONL trace; returns ``(meta, events)``.

    Raises :class:`SchemaError` on a missing/foreign header, an
    unsupported version, or any malformed event line.
    """
    header_line = handle.readline()
    if not header_line.strip():
        raise SchemaError("empty trace file (missing header line)")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise SchemaError(f"unparseable header line: {error}") from error
    if not isinstance(header, dict) or header.get("schema") != SCHEMA_NAME:
        raise SchemaError(
            f"not a {SCHEMA_NAME} trace (header schema: "
            f"{header.get('schema') if isinstance(header, dict) else header!r})"
        )
    if header.get("version") != SCHEMA_VERSION:
        raise SchemaError(
            f"trace schema version {header.get('version')!r} "
            f"!= supported {SCHEMA_VERSION}"
        )
    events: List[TraceEvent] = []
    for number, line in enumerate(handle, start=2):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise SchemaError(f"line {number}: unparseable JSON: {error}") from error
        try:
            events.append(TraceEvent.from_dict(data))
        except SchemaError as error:
            raise SchemaError(f"line {number}: {error}") from error
    return dict(header.get("meta", {})), events


def read_jsonl_path(path: str) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    with open(path, "r", encoding="utf-8") as handle:
        return read_jsonl(handle)


def validate_jsonl_path(path: str) -> int:
    """Validate a JSONL trace file; returns its event count."""
    _meta, events = read_jsonl_path(path)
    return len(events)


# ---------------------------------------------------------------- Perfetto --
def _us(time_ns: float) -> float:
    return time_ns / 1000.0


def _metadata(pid: int, tid: int, name: str, which: str) -> Dict[str, Any]:
    return {
        "name": which,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _counter(pid: int, name: str, time_ns: float, series: str, value: float):
    return {
        "name": name,
        "ph": "C",
        "pid": pid,
        "tid": MAIN_TID,
        "ts": _us(time_ns),
        "args": {series: value},
    }


def _instant(pid: int, tid: int, name: str, time_ns: float, args=None):
    event = {
        "name": name,
        "ph": "i",
        "s": "t",
        "pid": pid,
        "tid": tid,
        "ts": _us(time_ns),
    }
    if args:
        event["args"] = args
    return event


def _slice(pid: int, tid: int, name: str, start_ns: float, dur_ns: float, args=None):
    event = {
        "name": name,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": _us(start_ns),
        "dur": max(_us(dur_ns), 0.0),
    }
    if args:
        event["args"] = args
    return event


def perfetto_events(
    events: Sequence[TraceEvent],
    pid: int = 1,
    label: str = "run",
) -> List[Dict[str, Any]]:
    """Translate one run's event stream into ``trace_event`` entries."""
    out: List[Dict[str, Any]] = [
        _metadata(pid, 0, label, "process_name"),
        _metadata(pid, MAIN_TID, "main core", "thread_name"),
    ]
    named_checkers: set = set()

    def checker_tid(core: int) -> int:
        tid = CHECKER_TID_BASE + core
        if core not in named_checkers:
            named_checkers.add(core)
            out.append(_metadata(pid, tid, f"checker {core}", "thread_name"))
        return tid

    #: seg -> open time, for pairing into main-core slices.
    open_at: Dict[int, float] = {}
    for event in events:
        source, kind = event.source, event.kind
        if source == "engine":
            if kind == "segment_open":
                open_at[event.segment] = event.time_ns
            elif kind == "segment_close":
                start = open_at.pop(event.segment, None)
                if start is not None:
                    out.append(
                        _slice(
                            pid,
                            MAIN_TID,
                            f"seg {event.segment}",
                            start,
                            event.time_ns - start,
                            args={"close_reason": event.detail}
                            if event.detail
                            else None,
                        )
                    )
            elif kind == "detect":
                tid = checker_tid(event.core) if event.core >= 0 else MAIN_TID
                out.append(
                    _instant(
                        pid,
                        tid,
                        f"detect seg {event.segment}",
                        event.time_ns,
                        args={"channel": event.detail} if event.detail else None,
                    )
                )
            elif kind == "rollback":
                out.append(
                    _instant(
                        pid,
                        MAIN_TID,
                        f"rollback seg {event.segment}",
                        event.time_ns,
                        args={"detail": event.detail} if event.detail else None,
                    )
                )
            elif kind == "external_flush":
                out.append(_instant(pid, MAIN_TID, "external flush", event.time_ns))
            elif kind == "commit":
                out.append(
                    _instant(
                        pid, MAIN_TID, f"commit seg {event.segment}", event.time_ns
                    )
                )
            # dispatch is rendered from the scheduling busy slice instead.
        elif source == "scheduling":
            if kind == "busy" and event.core >= 0 and event.value:
                out.append(
                    _slice(
                        pid,
                        checker_tid(event.core),
                        f"check seg {event.segment}",
                        event.time_ns,
                        event.value,
                    )
                )
        elif source == "dvfs":
            if kind == "voltage" and event.value is not None:
                out.append(
                    _counter(pid, "voltage (V)", event.time_ns, "V", event.value)
                )
            elif kind == "tide_mark" and event.value is not None:
                out.append(
                    _counter(pid, "tide mark (V)", event.time_ns, "V", event.value)
                )
            elif kind in ("escalate", "tide_reset", "hold_release"):
                out.append(_instant(pid, MAIN_TID, f"dvfs {kind}", event.time_ns))
        elif source == "checkpoint":
            if kind == "target" and event.value is not None:
                out.append(
                    _counter(
                        pid,
                        "checkpoint target (instrs)",
                        event.time_ns,
                        "instrs",
                        event.value,
                    )
                )
        elif source == "faults":
            tid = checker_tid(event.core) if event.core >= 0 else MAIN_TID
            out.append(
                _instant(
                    pid,
                    tid,
                    f"fault {event.detail}" if event.detail else "fault",
                    event.time_ns,
                )
            )
        elif source == "resilience":
            out.append(
                _instant(
                    pid,
                    checker_tid(event.core) if event.core >= 0 else MAIN_TID,
                    f"{kind} {event.detail}".strip(),
                    event.time_ns,
                )
            )
    return out


def to_perfetto(
    events: Sequence[TraceEvent],
    label: str = "run",
    pid: int = 1,
) -> Dict[str, Any]:
    """One run as a complete Perfetto ``trace_event`` JSON document."""
    return {
        "displayTimeUnit": "ns",
        "otherData": {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION},
        "traceEvents": perfetto_events(events, pid=pid, label=label),
    }


def merge_traces(
    runs: Sequence[Tuple[str, Sequence[TraceEvent]]],
) -> Dict[str, Any]:
    """Many runs, one Perfetto document — one process per run.

    ``runs`` is ``(label, events)`` pairs, e.g. ``("paradox/milc", [...])``
    per suite task or ``("seed 7 rate 1e-4", [...])`` per campaign run.
    """
    trace_events: List[Dict[str, Any]] = []
    for index, (label, events) in enumerate(runs):
        trace_events.extend(perfetto_events(events, pid=index + 1, label=label))
    return {
        "displayTimeUnit": "ns",
        "otherData": {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "runs": len(runs),
        },
        "traceEvents": trace_events,
    }


def write_perfetto_path(
    path: str,
    events: Sequence[TraceEvent],
    label: str = "run",
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_perfetto(events, label=label), handle)
        handle.write("\n")


def events_from_dicts(dicts: Iterable[Mapping[str, Any]]) -> List[TraceEvent]:
    """Rehydrate wire-format dicts (e.g. ``RunResult.trace``) to events."""
    return [TraceEvent.from_dict(data) for data in dicts]
