"""Append-and-tail JSONL streams (live telemetry for long-lived jobs).

The exporters in this package serialise a *finished* run's events.  A
long-lived campaign needs the dual: an append-only JSONL file one
process writes as events happen, which any number of readers can tail
incrementally — the transport behind ``repro serve``'s
``/jobs/<id>/events`` endpoint.

Two invariants make tailing safe while the writer is alive:

* the writer flushes a whole line (object + newline) per event, so a
  reader never sees half an object *followed by EOF mid-file*;
* the reader only consumes lines terminated by ``\\n`` and re-reads
  from the byte offset it stopped at, so a line raced mid-write is
  simply picked up whole on the next poll.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Tuple


class JsonlAppender:
    """Append JSON objects to a file, one flushed line per object."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, payload: Mapping[str, Any]) -> None:
        line = json.dumps(dict(payload), sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def tail_jsonl(
    path: str, offset: int = 0
) -> Tuple[int, List[Dict[str, Any]]]:
    """Read complete JSONL lines appended at/after byte ``offset``.

    Returns ``(new_offset, objects)``; ``new_offset`` is the byte just
    past the last *complete* line consumed — hand it back on the next
    call to stream a growing file.  A missing file reads as empty (the
    writer may not have produced its first event yet).  A torn final
    line (no trailing newline yet) is left for the next poll; a line
    that is complete but unparsable is surfaced as a ``{"kind":
    "invalid"}`` object rather than silently dropped.
    """
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return offset, []
    with handle:
        handle.seek(offset)
        blob = handle.read()
    objects: List[Dict[str, Any]] = []
    consumed = 0
    while True:
        newline = blob.find(b"\n", consumed)
        if newline < 0:
            break
        line = blob[consumed:newline]
        consumed = newline + 1
        if not line.strip():
            continue
        try:
            objects.append(json.loads(line.decode("utf-8")))
        except (ValueError, UnicodeDecodeError):
            objects.append(
                {"kind": "invalid", "raw": line.decode("utf-8", "replace")}
            )
    return offset + consumed, objects


def read_jsonl_tail(
    path: str, limit: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Convenience: every complete object currently in ``path``."""
    _, objects = tail_jsonl(path, 0)
    if limit is not None:
        objects = objects[-limit:]
    return objects
