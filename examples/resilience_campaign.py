"""Resilience demo: quarantine, typed forward-progress failure, campaign.

Three acts:

1. A checker core with a permanent stuck-at bit keeps raising false
   detections; the health tracker vindicates and quarantines it, and
   the run still completes bit-identical to the golden run.
2. The same defect in *every* checker (a global stuck-at) cannot be
   scheduled around: the forward-progress guard escalates and finally
   surfaces a typed ``forward_progress_failure`` naming the faulty
   unit — never a ``LivelockError``.
3. A small crash-isolated campaign classifies a grid of seeded runs
   into the six-outcome taxonomy (masked / detected_recovered /
   degraded / sdc / hang / crash), persists every run to a SQLite
   campaign store as it lands, and proves resume-from-store is
   byte-identical (see docs/SERVICE.md).

    python examples/resilience_campaign.py
"""

import json
import tempfile

import numpy as np

from repro import ParaDoxSystem, golden_run
from repro.faults import FaultInjector, StuckAtFaultModel
from repro.isa import FunctionalUnit
from repro.resilience import CampaignSpec, run_campaign
from repro.stats import RunOutcome
from repro.store import CampaignStore
from repro.workloads import WorkloadProfile, build_synthetic


def act_one_quarantine() -> None:
    print("=== act 1: one defective checker is quarantined ===")
    profile = WorkloadProfile(
        name="quarantine-demo", alu=4, load=2, store=2, code_blocks=2,
        block_ops=16, working_set_kib=64, sequential_fraction=0.5,
    )
    workload = build_synthetic(profile, iterations=12, seed=1)
    golden = golden_run(workload)
    rng = np.random.default_rng(1)
    injector = FaultInjector(
        [StuckAtFaultModel(rng, unit=FunctionalUnit.INT_ALU, bit=1)],
        target="checker",
    )
    engine = ParaDoxSystem(resilient=True).engine(
        workload, seed=1, injector=injector
    )
    # Bind the defect to the first core the lowest-free-ID scheduler
    # will actually pick (the pool's randomised boot offset).
    defective = engine.pool.boot_offset
    injector.models[0].bound_checker_id = defective
    result = engine.run(workload.max_instructions)
    print(f"defective checker: {defective}")
    print(f"outcome: {result.outcome.value}, recoveries: {len(result.recoveries)}")
    for event in result.quarantine_events:
        print(
            f"quarantined checker {event.core_id} at {event.at_ns / 1e3:.1f} us "
            f"after {event.vindications} vindicated false detections"
        )
    assert result.outcome is RunOutcome.COMPLETED
    assert engine.memory == golden.memory
    print("final memory matches the golden run. ✓\n")


def act_two_typed_failure() -> None:
    print("=== act 2: a global permanent defect fails *typed* ===")
    profile = WorkloadProfile(
        name="fpf-demo", alu=4, load=2, store=2, code_blocks=2,
        block_ops=16, working_set_kib=64, sequential_fraction=0.5,
    )
    workload = build_synthetic(profile, iterations=4, seed=2)
    rng = np.random.default_rng(2)
    injector = FaultInjector(
        [StuckAtFaultModel(rng, unit=FunctionalUnit.INT_ALU, bit=1)],
        target="checker",
    )
    engine = ParaDoxSystem(resilient=True).engine(
        workload, seed=2, injector=injector
    )
    result = engine.run(workload.max_instructions)
    print(f"outcome: {result.outcome.value}")
    if result.failure is not None:
        print(f"diagnostics: {result.failure.summary()}")
    assert not result.livelocked, "typed failure must replace livelock"
    print()


def act_three_campaign() -> None:
    print("=== act 3: a store-backed, resumable campaign ===")
    spec = CampaignSpec(
        seeds=6, scale=0.3, rates=(3e-4,),
        models=("transient", "burst", "stuckat"), timeout_s=60.0,
    )
    store = tempfile.mkdtemp(prefix="repro-example-") + "/campaign.sqlite"
    report = run_campaign(
        spec,
        progress=lambda r: print(
            f"  run {r.run_id:2d} seed {r.seed:2d} {r.model:<9s} "
            f"-> {r.run_class.value}: {r.detail}"
        ),
        store_path=store,
    )
    print()
    print(report.summary_table())
    assert report.counts["crash"] == 0, "a crash is a simulator bug"

    # Every classified run was committed to the store as it landed
    # (one transaction each), so relaunching the same campaign — after
    # a SIGKILL, on another day — replays from the store instead of
    # re-simulating, and the canonical report is byte-identical.
    cached = []
    resumed = run_campaign(
        spec, store_path=store, resume=True, on_cached=cached.append
    )
    identical = json.dumps(resumed.to_dict(canonical=True)) == json.dumps(
        report.to_dict(canonical=True)
    )
    print(
        f"  resumed from {store}: {len(cached)} cached runs re-loaded, "
        f"0 re-executed, canonical report identical: {identical}"
    )
    assert identical
    with CampaignStore(store) as handle:
        [summary] = handle.list_campaigns()
        print(
            f"  store holds {summary['recorded']}/{summary['total_cells']} "
            f"cells; render it with: python -m repro report {store}"
        )


def main() -> None:
    act_one_quarantine()
    act_two_typed_failure()
    act_three_campaign()


if __name__ == "__main__":
    main()
