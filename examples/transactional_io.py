"""Transactional external I/O: verified values only ever leave the chip.

Builds a control-loop-style program that computes a setpoint, writes it
to an external device register (WRITE_EXTERNAL), and repeats — then runs
it under heavy fault injection and shows that:

* every externally flushed value matches the golden run, bit for bit,
* flushes are never duplicated by rollbacks (the write is released only
  after its own segment checks clean),
* the event timeline shows the drain-before-release protocol in action.

    python examples/transactional_io.py
"""

from repro.config import table1_config
from repro.core import ParaDoxSystem
from repro.isa import ProgramBuilder, Syscall
from repro.stats import EventKind, Timeline, render_timeline
from repro.workloads import Workload, golden_run


def control_loop(steps: int = 5, work: int = 600) -> Workload:
    b = ProgramBuilder("control-loop")
    b.movi(9, steps)
    b.movi(1, 1)
    b.label("step")
    # "Compute" a new setpoint: a xorshift-flavoured scramble.
    b.movi(4, work)
    b.label("work")
    b.lsli(2, 1, 13)
    b.eor(1, 1, 2)
    b.lsri(2, 1, 7)
    b.eor(1, 1, 2)
    b.orri(1, 1, 1)
    b.subi(4, 4, 1)
    b.cbnz(4, "work")
    # Commit the setpoint to the device.
    b.syscall(Syscall.WRITE_EXTERNAL)
    b.subi(9, 9, 1)
    b.cbnz(9, "step")
    b.halt()
    return Workload(
        "control-loop", b.build(), max_instructions=steps * work * 8 + 100
    )


def main() -> None:
    workload = control_loop()
    golden = golden_run(workload)
    golden_values = [text for _, text in golden.output]
    print(f"golden device writes: {golden_values}\n")

    config = table1_config().with_error_rate(1e-3, seed=17)
    system = ParaDoxSystem(config=config)
    engine = system.engine(workload, seed=17)
    engine.options.record_timeline = True
    engine.timeline = Timeline()
    result = engine.run(workload.max_instructions)

    flushed = [text for _, text in result.external_flushes]
    print(
        f"under injection: {result.faults_injected} faults, "
        f"{result.errors_detected} recoveries"
    )
    print(f"device writes:  {flushed}")
    assert flushed == golden_values, "an unverified value escaped!"
    print("every externally visible value was verified before release ✓\n")

    flush_events = engine.timeline.of_kind(EventKind.EXTERNAL_FLUSH)
    detections = engine.timeline.of_kind(EventKind.DETECTION)
    print(
        f"timeline: {len(flush_events)} flushes, {len(detections)} detections; "
        "excerpt around the first flush:"
    )
    ordered = engine.timeline.in_time_order()
    first_flush = next(i for i, e in enumerate(ordered) if e.kind is EventKind.EXTERNAL_FLUSH)
    excerpt = Timeline(events=ordered[max(first_flush - 6, 0) : first_flush + 2])
    print(render_timeline(excerpt))


if __name__ == "__main__":
    main()
