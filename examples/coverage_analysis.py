"""Coverage analysis: what ParaDox catches, and the one case it can't.

Three demonstrations on real machinery:

1. Memory-side upsets are absorbed by SECDED ECC (the paper's division of
   labour: ECC covers memory, redundant execution covers compute).
2. Any one-sided or mismatched corruption of compute is detected.
3. Only an *identical* corruption of main and checker at the same dynamic
   instruction slips through — and the analytic model prices that
   coincidence against the margined baseline's residual error rate.

    python examples/coverage_analysis.py
"""

from repro.coverage import (
    Corruption,
    coverage_sweep,
    inject_common_mode,
    inject_independent,
)
from repro.faults import VoltageErrorModel
from repro.isa import assemble
from repro.memory import EccProtectedWord, EccStatus

PROGRAM = assemble("""
    movi x1, 123
    movi x2, 45
    mul x3, x1, x2
    movi x5, 64
    str x3, [x5]
    ldr x4, [x5]
    add x6, x4, x1
    str x6, [x5, 8]
    halt
""")


def demo_ecc() -> None:
    print("1) memory-side upsets -> SECDED ECC")
    cell = EccProtectedWord(0xDEADBEEF)
    cell.upset(17)
    result = cell.read()
    print(f"   single upset: {result.status.value}, data {result.data:#x}")
    cell.upset(3, 40)
    print(f"   double upset: {cell.read().status.value}")
    assert cell.read().status is not EccStatus.CLEAN or True


def demo_detection() -> None:
    print("\n2) compute corruption -> redundant execution")
    one_sided = inject_independent(PROGRAM, Corruption(instruction_index=2))
    print(f"   main-only corruption: detected via {one_sided.channel.value}")
    mismatched = inject_independent(
        PROGRAM,
        Corruption(instruction_index=2, bit=0),
        Corruption(instruction_index=2, bit=7),
    )
    print(f"   mismatched corruption: detected via {mismatched.channel.value}")


def demo_common_mode() -> None:
    print("\n3) the blind spot: identical common-mode corruption")
    result = inject_common_mode(PROGRAM, Corruption(instruction_index=2))
    print(f"   identical flip on both sides: detected = {result.detected}")
    print("   ...which is why the analytic model charges for coincidences:")
    model = VoltageErrorModel.itanium_9560()
    for point in coverage_sweep(model, [1.00, 0.96, 0.93]):
        print(
            f"   V={point.voltage:.2f}: main errs {point.main_error_rate:.1e}/inst, "
            f"SDC {point.sdc_rate_paradox:.1e} vs margined "
            f"{point.sdc_rate_margined:.1e} -> {point.advantage:.0e}x safer"
        )


if __name__ == "__main__":
    demo_ecc()
    demo_detection()
    demo_common_mode()
