"""Fault-injection demo: watch ParaDox catch and repair real corruption.

Unlike the paper's evaluation (which injects into checkers only, since
detection is symmetric), this example injects faults into the *main
core's* architectural state mid-execution, so the log, the memory image
and downstream computation genuinely go wrong — and then verifies that
every run still converges to the golden final memory, bit for bit.

It also demonstrates the detection channels: store-value mismatches,
address divergence, final-state mismatches and main-core traps.

    python examples/fault_injection_demo.py
"""

from collections import Counter

import numpy as np

from repro import ParaDoxSystem, build_stream, golden_run
from repro.faults import FaultInjector, FunctionalUnitFaultModel, RegisterFaultModel
from repro.isa import FunctionalUnit


def main() -> None:
    workload = build_stream(elements=128, passes=4)
    golden = golden_run(workload)
    print(f"workload: {workload.name} — {golden.instructions} instructions")
    print(f"golden output: {golden.output}\n")

    channels: "Counter[str]" = Counter()
    for seed in range(5):
        rng = np.random.default_rng(seed)
        injector = FaultInjector(
            [
                RegisterFaultModel(5e-4, rng),
                FunctionalUnitFaultModel(5e-4, rng, FunctionalUnit.FP_MUL),
            ],
            target="main",
        )
        system = ParaDoxSystem()
        engine = system.engine(workload, seed=seed, injector=injector)
        result = engine.run(workload.max_instructions)

        ok = result.program_output == golden.output
        mem_ok = engine.memory == golden.memory
        print(
            f"seed {seed}: {result.faults_injected:3d} faults injected, "
            f"{result.errors_detected:3d} recoveries, "
            f"slow {result.wall_ns / 1e3:7.1f} us, "
            f"output {'OK' if ok else 'CORRUPT'}, memory {'OK' if mem_ok else 'CORRUPT'}"
        )
        assert ok and mem_ok, "ParaDox failed to recover!"
        for event in result.recoveries:
            channels[event.channel.value] += 1

    print("\ndetection channels exercised:")
    for channel, count in channels.most_common():
        print(f"  {count:4d}  {channel}")
    print("\nEvery corrupted run converged to the golden state. ✓")


if __name__ == "__main__":
    main()
