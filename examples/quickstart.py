"""Quickstart: run a workload on every system and compare.

Builds the compute-bound bitcount workload (MiBench), runs it on the
unprotected baseline, detection-only, ParaMedic and ParaDox, then injects
errors and shows ParaDox recovering with bounded cost.

    python examples/quickstart.py
"""

from repro import (
    BaselineSystem,
    DetectionOnlySystem,
    ParaDoxSystem,
    ParaMedicSystem,
    build_bitcount,
    golden_run,
)


def main() -> None:
    workload = build_bitcount(values=200)
    golden = golden_run(workload)
    print(f"workload: {workload.name} — {workload.description}")
    print(f"golden run: {golden.instructions} instructions, output {golden.output}\n")

    print("=== error-free comparison ===")
    baseline = BaselineSystem().run(workload)
    for system in (DetectionOnlySystem(), ParaMedicSystem(), ParaDoxSystem()):
        result = system.run(workload)
        assert result.program_output == golden.output, "output diverged!"
        print(
            f"{result.system:>15}: {result.wall_ns / 1e3:8.2f} us  "
            f"slowdown {result.slowdown_vs(baseline):.3f}x  "
            f"segments {result.segments}"
        )

    print("\n=== with injected errors (1 in 10,000 operations) ===")
    for system_cls in (ParaMedicSystem, ParaDoxSystem):
        config = system_cls().config.with_error_rate(1e-4)
        result = system_cls(config=config).run(workload)
        assert result.program_output == golden.output, "recovery failed!"
        print(
            f"{result.system:>15}: {result.wall_ns / 1e3:8.2f} us  "
            f"slowdown {result.slowdown_vs(baseline):.3f}x  "
            f"errors detected & recovered: {result.errors_detected}"
        )
    print("\nAll systems produced bit-identical program output. ✓")


if __name__ == "__main__":
    main()
