"""Undervolting sweep: find the energy sweet spot of figure 3.

Sweeps fixed supply voltages from nominal downwards.  At each point the
Tan-style exponential model converts voltage to an error-injection rate,
ParaDox runs the workload recovering from every induced error, and the
energy model combines power (V^2 f) with the measured slowdown.  The
result is the paper's figure-3 intuition made concrete: energy falls as
margins are cut, until recovery costs dominate below the error cliff.

    python examples/undervolting_sweep.py
"""

import numpy as np

from repro import (
    BaselineSystem,
    ParaDoxSystem,
    VoltageErrorModel,
    build_bitcount,
    default_injector,
)
from repro.power import OperatingPoint, main_core_power


def main() -> None:
    workload = build_bitcount(values=250)
    baseline = BaselineSystem().run(workload)
    model = VoltageErrorModel.itanium_9560()
    nominal = OperatingPoint(model.nominal_voltage, 3.2e9)

    print(f"{'V':>6} {'error rate':>11} {'slowdown':>9} {'power':>7} {'energy':>7}")
    best = (None, float("inf"))
    for voltage in np.arange(1.10, 0.935, -0.01):
        rate = model.rate(voltage)
        injector = default_injector(rate, seed=42)
        result = ParaDoxSystem().run(workload, injector=injector)
        slowdown = result.slowdown_vs(baseline)
        power = main_core_power(OperatingPoint(voltage, 3.2e9), nominal)
        energy = power * slowdown  # E = P * t
        marker = ""
        if energy < best[1]:
            best = (voltage, energy)
            marker = "  <- best so far"
        print(
            f"{voltage:6.3f} {rate:11.2e} {slowdown:9.3f} {power:7.3f} "
            f"{energy:7.3f}{marker}"
        )
    print(
        f"\nsweet spot: {best[0]:.3f} V — "
        f"{(1 - best[1]) * 100:.1f}% less energy than the margined baseline"
    )


if __name__ == "__main__":
    main()
