"""DVFS trace: watch ParaDox hunt for the minimum-energy voltage.

Cold-starts the voltage controller at the safe nominal voltage and plots
(as ASCII) the descent into error-seeking territory, the error-triggered
recoveries, and the tide-mark-slowed hover just below the point of first
error — the behaviour of figure 11.

    python examples/dvfs_trace.py
"""

from repro import ParaDoxSystem, build_bitcount


def ascii_plot(trace, width: int = 72, height: int = 18) -> str:
    """Tiny ASCII scatter of (time, voltage)."""
    if not trace:
        return "(no trace)"
    times = [t for t, _ in trace]
    volts = [v for _, v in trace]
    t_min, t_max = min(times), max(times)
    v_min, v_max = min(volts), max(volts)
    v_span = (v_max - v_min) or 1.0
    t_span = (t_max - t_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in trace:
        x = int((t - t_min) / t_span * (width - 1))
        y = int((v_max - v) / v_span * (height - 1))
        grid[y][x] = "*"
    lines = []
    for i, row in enumerate(grid):
        v_label = v_max - i * v_span / (height - 1)
        lines.append(f"{v_label:6.3f} |{''.join(row)}")
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(
        f"{'':7}{t_min / 1e3:<10.1f}{'time (us)':^{width - 20}}{t_max / 1e3:>10.1f}"
    )
    return "\n".join(lines)


def main() -> None:
    workload = build_bitcount(values=1000)
    result = ParaDoxSystem(dvs=True).run(workload)
    print(ascii_plot(result.voltage_trace))
    print(
        f"\nerrors: {result.errors_detected}   "
        f"mean V: {result.mean_voltage:.3f}   "
        f"highest-error V: {result.highest_error_voltage:.3f}   "
        f"final checkpoint target: {result.final_checkpoint_target} instructions"
    )


if __name__ == "__main__":
    main()
