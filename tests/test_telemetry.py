"""The telemetry subsystem: event model, tracer, metrics, engine hooks."""

import pytest

from repro.config import table1_config
from repro.core import ParaDoxSystem
from repro.telemetry import (
    KNOWN_KINDS,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
    SchemaError,
    TraceEvent,
    Tracer,
    merge_metrics,
    validate_event_dict,
)


def traced_system(rate=0.0, seed=3, **kwargs):
    config = table1_config().with_error_rate(rate, seed=seed)
    return ParaDoxSystem(config=config, tracing=True, **kwargs)


class TestTraceEvent:
    def test_round_trip(self):
        event = TraceEvent(12.5, "engine", "dispatch", segment=3, core=2, value=7.0)
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_compact_dict_elides_defaults(self):
        event = TraceEvent(1.0, "engine", "segment_open", segment=1)
        data = event.to_dict()
        assert set(data) == {"t", "src", "kind", "seg"}

    def test_validate_rejects_unknown_source(self):
        with pytest.raises(SchemaError):
            validate_event_dict({"t": 0.0, "src": "nope", "kind": "dispatch"})

    def test_validate_rejects_unknown_kind(self):
        with pytest.raises(SchemaError):
            validate_event_dict({"t": 0.0, "src": "engine", "kind": "nope"})

    def test_validate_rejects_missing_fields(self):
        with pytest.raises(SchemaError):
            validate_event_dict({"src": "engine", "kind": "dispatch"})

    def test_every_source_has_kinds(self):
        assert all(KNOWN_KINDS.values())


class TestTracer:
    def test_emit_validates_kind(self):
        tracer = Tracer()
        with pytest.raises(SchemaError):
            tracer.emit("engine", "not-a-kind")

    def test_emit_defaults_to_now_ns(self):
        tracer = Tracer()
        tracer.now_ns = 42.0
        tracer.emit("faults", "inject", core=1)
        assert tracer.events[-1].time_ns == 42.0

    def test_span_is_order_independent(self):
        tracer = Tracer()
        tracer.emit("engine", "segment_open", time_ns=100.0, segment=1)
        tracer.emit("engine", "segment_close", time_ns=900.0, segment=1)
        tracer.emit("engine", "commit", time_ns=50.0, segment=1)
        assert tracer.span_ns() == 850.0
        times = [e.time_ns for e in tracer.in_time_order()]
        assert times == sorted(times)

    def test_filters(self):
        tracer = Tracer()
        tracer.emit("engine", "segment_open", segment=1)
        tracer.emit("dvfs", "voltage", value=1.0)
        assert len(tracer.of_source("engine")) == 1
        assert len(tracer.of_kind("dvfs", "voltage")) == 1


class TestMetrics:
    def test_histogram_observe_and_mean(self):
        histogram = Histogram(edges=(10.0, 100.0))
        for value in (5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.mean == pytest.approx(555.0 / 3)

    def test_histogram_merge_requires_same_edges(self):
        left = Histogram(edges=(10.0,))
        with pytest.raises(ValueError):
            left.merge(Histogram(edges=(20.0,)))

    def test_registry_to_dict_carries_schema(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge("b", 2.0)
        registry.observe("c", 3.0)
        data = registry.to_dict()
        assert data["schema"] == SCHEMA_NAME
        assert data["version"] == SCHEMA_VERSION
        assert data["counters"]["a"] == 1.0

    def test_merge_counters_sum_and_gauges_aggregate(self):
        runs = []
        for value in (1.0, 3.0):
            registry = MetricsRegistry()
            registry.inc("n", value)
            registry.gauge("v", value)
            registry.observe("h", value, edges=(2.0,))
            registry.set_per_checker("w", [value, 0.0])
            runs.append(registry.to_dict())
        merged = merge_metrics(runs + [None])
        assert merged["merged_runs"] == 2
        assert merged["skipped_runs"] == 1
        assert merged["counters"]["n"] == 4.0
        assert merged["gauges"]["v"] == {"min": 1.0, "max": 3.0, "mean": 2.0}
        assert merged["histograms"]["h"]["total"] == 2
        assert merged["per_checker"]["w"] == [2.0, 0.0]

    def test_merge_rejects_foreign_dict(self):
        with pytest.raises(SchemaError):
            merge_metrics([{"schema": "other", "version": 1}])


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def clean(self, bitcount_small):
        return traced_system().run(bitcount_small, seed=3)

    @pytest.fixture(scope="class")
    def faulty(self, bitcount_small):
        return traced_system(rate=1e-3).run(bitcount_small, seed=3)

    def test_disabled_by_default(self, bitcount_small):
        result = ParaDoxSystem().run(bitcount_small, seed=3)
        assert result.trace is None
        assert result.metrics is None

    def test_tracing_does_not_perturb_the_simulation(self, bitcount_small, clean):
        plain = ParaDoxSystem().run(bitcount_small, seed=3)
        assert plain.wall_ns == clean.wall_ns
        assert plain.instructions == clean.instructions
        assert plain.segments == clean.segments

    def test_segment_lifecycle_events(self, clean):
        kinds = {}
        for event in clean.trace:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        assert kinds["segment_close"] == clean.segments
        assert kinds["dispatch"] == clean.segments
        assert kinds["commit"] == clean.segments
        assert kinds["busy"] == clean.segments
        assert kinds["segment_open"] >= clean.segments

    def test_metrics_summary(self, clean):
        metrics = clean.metrics
        assert metrics["counters"]["engine.segments"] == clean.segments
        assert metrics["counters"]["engine.instructions"] == clean.instructions
        assert metrics["gauges"]["engine.wall_ns"] == clean.wall_ns
        assert len(metrics["per_checker"]["scheduling.wake_rates"]) == 16

    def test_faulty_run_traces_detections(self, faulty):
        assert faulty.errors_detected > 0
        detects = [e for e in faulty.trace if e["kind"] == "detect"]
        rollbacks = [e for e in faulty.trace if e["kind"] == "rollback"]
        injects = [e for e in faulty.trace if e["kind"] == "inject"]
        assert len(detects) == faulty.errors_detected
        assert len(rollbacks) == faulty.errors_detected
        assert len(injects) == faulty.faults_injected
        assert faulty.metrics["counters"]["faults.injected"] == faulty.faults_injected

    def test_dvs_run_traces_voltage(self, bitcount_small):
        result = traced_system(dvs=True).run(bitcount_small, seed=3)
        voltages = [e for e in result.trace if e["kind"] == "voltage"]
        assert len(voltages) == result.segments
        assert all(v["value"] > 0 for v in voltages)

    def test_resilient_faulty_run_traces_escalations(self, bitcount_small):
        result = traced_system(rate=3e-3, dvs=True, resilient=True).run(
            bitcount_small, seed=3
        )
        if result.escalations:
            traced = [e for e in result.trace if e["kind"] == "escalation"]
            assert len(traced) == len(result.escalations)
        if result.quarantine_events:
            traced = [e for e in result.trace if e["kind"] == "quarantine"]
            assert len(traced) == len(result.quarantine_events)
