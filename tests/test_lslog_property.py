"""Property-based tests on the load-store-log machinery."""

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.isa import ArchState, MemoryImage
from repro.lslog import (
    CheckerReplayPort,
    LINE_ENTRY_BYTES,
    LOAD_ENTRY_BYTES,
    LogSegment,
    MainMemoryPort,
    RollbackGranularity,
    STORE_DETECT_BYTES,
    STORE_OLD_WORD_BYTES,
    SegmentFull,
    UncheckedConflictStall,
)
from repro.memory import UncheckedLineTracker

# An operation: (is_store, word-slot 0..63, value)
OPS = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=2**63),
    ),
    max_size=80,
)


def make_port(granularity, capacity=1 << 20):
    memory = MemoryImage()
    tracker = UncheckedLineTracker(CacheConfig(32 * 1024, 4, 2, mshrs=4))
    port = MainMemoryPort(memory, tracker, granularity)
    port.segment = LogSegment(
        seq=1, granularity=granularity, capacity_bytes=capacity, start_state=ArchState()
    )
    return port


class TestFillReplayRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(
        ops=OPS,
        granularity=st.sampled_from(
            [RollbackGranularity.WORD, RollbackGranularity.LINE]
        ),
    )
    def test_faithful_replay_always_passes(self, ops, granularity):
        """Whatever the main core logged, an identical replay must pass
        every comparison and consume the log exactly."""
        port = make_port(granularity)
        performed = []
        for is_store, slot, value in ops:
            address = slot * 8
            if is_store:
                port.store(address, value)
                performed.append(("s", address, value))
            else:
                loaded = port.load(address)
                performed.append(("l", address, loaded))
        replay = CheckerReplayPort(port.segment)
        for kind, address, value in performed:
            if kind == "s":
                replay.store(address, value)
            else:
                assert replay.load(address) == value
        assert replay.fully_consumed

    @settings(max_examples=60, deadline=None)
    @given(ops=OPS)
    def test_loads_reflect_prior_stores(self, ops):
        """The logged load values must equal architectural memory state."""
        port = make_port(RollbackGranularity.WORD)
        shadow = {}
        for is_store, slot, value in ops:
            address = slot * 8
            if is_store:
                port.store(address, value)
                shadow[address] = value
            else:
                assert port.load(address) == shadow.get(address, 0)

    @settings(max_examples=60, deadline=None)
    @given(ops=OPS)
    def test_capacity_accounting_exact(self, ops):
        """bytes_used must equal the per-entry arithmetic exactly."""
        port = make_port(RollbackGranularity.WORD)
        loads = stores = 0
        for is_store, slot, value in ops:
            if is_store:
                port.store(slot * 8, value)
                stores += 1
            else:
                port.load(slot * 8)
                loads += 1
        expected = loads * LOAD_ENTRY_BYTES + stores * (
            STORE_DETECT_BYTES + STORE_OLD_WORD_BYTES
        )
        assert port.segment.bytes_used() == expected

    @settings(max_examples=60, deadline=None)
    @given(ops=OPS)
    def test_line_rollback_bytes_bounded_by_touched_lines(self, ops):
        """LINE granularity stores at most one line entry per touched line."""
        port = make_port(RollbackGranularity.LINE)
        lines = set()
        for is_store, slot, value in ops:
            if is_store:
                port.store(slot * 8, value)
                lines.add((slot * 8) // 64)
        assert len(port.segment.lines) <= max(len(lines), 0)
        assert port.segment.rollback_bytes == len(port.segment.lines) * LINE_ENTRY_BYTES


class TestCapacityExhaustion:
    @settings(max_examples=40, deadline=None)
    @given(capacity=st.integers(min_value=64, max_value=512))
    def test_segment_full_raised_before_overflow(self, capacity):
        port = make_port(RollbackGranularity.WORD, capacity=capacity)
        wrote = 0
        try:
            for i in range(1000):
                port.store(i * 8, i)
                wrote += 1
        except SegmentFull:
            pass
        assert port.segment.bytes_used() <= capacity
        assert port.segment.store_count == wrote

    @settings(max_examples=30, deadline=None)
    @given(ops=OPS)
    def test_conflict_never_corrupts_log(self, ops):
        """Even with a tiny 1-way tracker, a raised conflict leaves the
        log and memory exactly as before the offending store."""
        memory = MemoryImage()
        tracker = UncheckedLineTracker(CacheConfig(2 * 64, 1, 1, mshrs=1))
        port = MainMemoryPort(memory, tracker, RollbackGranularity.LINE)
        port.segment = LogSegment(
            seq=1,
            granularity=RollbackGranularity.LINE,
            capacity_bytes=1 << 20,
            start_state=ArchState(),
        )
        for is_store, slot, value in ops:
            address = slot * 8
            before_stores = port.segment.store_count
            before_value = memory.load(address)
            try:
                if is_store:
                    port.store(address, value)
                else:
                    port.load(address)
            except UncheckedConflictStall:
                assert port.segment.store_count == before_stores
                assert memory.load(address) == before_value
