"""Coverage model and common-mode demonstration (section IV-E)."""

import pytest

from repro.coverage import (
    Corruption,
    MARGINED_RESIDUAL_RATE,
    checker_undervolt_tradeoff,
    common_mode_match_probability,
    coverage_sweep,
    inject_common_mode,
    inject_independent,
    margined_sdc_rate,
    paradox_sdc_rate,
)
from repro.faults import VoltageErrorModel
from repro.isa import assemble
from repro.isa.registers import RegisterCategory

PROGRAM = assemble("""
    movi x1, 7
    movi x2, 3
    add x3, x1, x2
    mul x4, x3, x2
    movi x5, 64
    str x4, [x5]
    ldr x6, [x5]
    add x7, x6, x1
    str x7, [x5, 8]
    halt
""")


class TestAnalyticModel:
    def test_match_probability_decreases_with_segment_length(self):
        assert common_mode_match_probability(5000) < common_mode_match_probability(100)

    def test_match_probability_bounds(self):
        p = common_mode_match_probability(1000)
        assert 0 < p < 1e-6

    def test_invalid_segment_length(self):
        with pytest.raises(ValueError):
            common_mode_match_probability(0)

    def test_paradox_sdc_needs_both_errors(self):
        assert paradox_sdc_rate(0.0) == 0.0
        assert paradox_sdc_rate(1e-4, checker_error_rate=0.0) == 0.0

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            paradox_sdc_rate(-1.0)

    def test_paradox_beats_margined_even_at_high_main_rates(self):
        """The section IV-E claim: even erring every 10k instructions,
        checked execution has a lower SDC rate than the margined
        baseline, because checkers are margined."""
        sdc = paradox_sdc_rate(1e-4, MARGINED_RESIDUAL_RATE, segment_length=1000)
        assert sdc < margined_sdc_rate()

    def test_sweep_shape(self):
        model = VoltageErrorModel.itanium_9560()
        points = coverage_sweep(model, [1.05, 1.00, 0.95])
        assert len(points) == 3
        # Main error rate grows as voltage drops...
        assert points[-1].main_error_rate > points[0].main_error_rate
        # ...but the advantage over the baseline stays enormous.
        for point in points:
            assert point.advantage > 1e3

    def test_checker_undervolt_tradeoff_monotone(self):
        pairs = checker_undervolt_tradeoff(1e-4, [1e-17, 1e-9, 1e-6])
        sdc_rates = [sdc for _, sdc in pairs]
        assert sdc_rates == sorted(sdc_rates)
        # Undervolting checkers to 1e-6 costs ~11 orders of magnitude of
        # SDC protection relative to margined checkers.
        assert sdc_rates[-1] > sdc_rates[0] * 1e9


class TestCommonModeDemonstration:
    def test_independent_corruption_detected(self):
        result = inject_independent(PROGRAM, Corruption(instruction_index=2))
        assert result.detected

    def test_one_sided_checker_corruption_detected(self):
        result = inject_independent(
            PROGRAM,
            Corruption(instruction_index=2, bit=0),
            Corruption(instruction_index=2, bit=5),
        )
        assert result.detected

    def test_common_mode_corruption_is_invisible(self):
        """The identical flip on both sides reproduces the wrong values
        exactly: no detection channel fires.  This is the (vanishingly
        unlikely) coincidence the analytic model charges for."""
        result = inject_common_mode(PROGRAM, Corruption(instruction_index=2))
        assert not result.detected

    def test_common_mode_flags_flip_also_invisible(self):
        result = inject_common_mode(
            PROGRAM,
            Corruption(instruction_index=3, category=RegisterCategory.FLAGS, bit=1),
        )
        assert not result.detected

    def test_different_bit_same_register_detected(self):
        result = inject_independent(
            PROGRAM,
            Corruption(instruction_index=2, register=1, bit=0),
            Corruption(instruction_index=2, register=1, bit=1),
        )
        assert result.detected

    def test_different_instruction_same_flip_detected(self):
        result = inject_independent(
            PROGRAM,
            Corruption(instruction_index=2, register=3, bit=4),
            Corruption(instruction_index=4, register=3, bit=4),
        )
        assert result.detected
