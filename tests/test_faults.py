"""Fault models, arrival process, injector fast path, voltage model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    MIN_RATE,
    FaultInjector,
    FunctionalUnitFaultModel,
    GeometricArrival,
    MemoryFaultModel,
    RegisterFaultModel,
    VoltageErrorModel,
    default_injector,
)
from repro.isa import ArchState, FunctionalUnit, Instruction, Opcode
from repro.isa.executor import StepInfo
from repro.isa.registers import RegisterCategory
from repro.lslog import LogSegment, RollbackGranularity
from repro.isa.state import ArchState as State


def step_info(opcode=Opcode.ADD, dest=("x", 3), unit_override=None):
    instr = Instruction(opcode, rd=3, rs1=1, rs2=2)
    return StepInfo(instr, 0, 1, (("x", 1), ("x", 2)), dest, None, None)


class TestGeometricArrival:
    def test_zero_rate_never_fires(self):
        arrival = GeometricArrival(0.0, np.random.default_rng(1))
        assert not any(arrival.step() for _ in range(10_000))
        assert arrival.advance(10**9) is None

    def test_rate_one_fires_every_time(self):
        arrival = GeometricArrival(1.0, np.random.default_rng(1))
        assert all(arrival.step() for _ in range(100))

    def test_rate_one_advance_offset_is_one(self):
        arrival = GeometricArrival(1.0, np.random.default_rng(1))
        for _ in range(10):
            assert arrival.advance(1000) == 1
        assert not arrival.clamped and arrival.clamp_events == 0

    def test_sub_min_rate_is_an_explicit_clamp(self):
        """Rates in (0, MIN_RATE) never fire — and say so."""
        arrival = GeometricArrival(MIN_RATE / 10, np.random.default_rng(2))
        assert arrival.clamped
        assert arrival.clamp_events == 1  # the construction-time resample
        assert not arrival.fires_within(10**12)
        assert arrival.advance(10**12) is None
        assert not any(arrival.step() for _ in range(1000))
        # Stepping a clamped process never resamples (no fire, no clamp).
        assert arrival.clamp_events == 1

    def test_zero_rate_is_not_a_clamp(self):
        arrival = GeometricArrival(0.0, np.random.default_rng(3))
        assert not arrival.clamped
        assert arrival.clamp_events == 0

    def test_set_rate_into_clamp_region_counts(self):
        arrival = GeometricArrival(0.5, np.random.default_rng(4))
        assert not arrival.clamped
        arrival.set_rate(MIN_RATE / 2)
        assert arrival.clamped and arrival.clamp_events == 1
        arrival.set_rate(0.5)
        assert not arrival.clamped
        assert arrival.fires_within(10**6)

    def test_mean_gap_close_to_inverse_rate(self):
        arrival = GeometricArrival(0.01, np.random.default_rng(2))
        fires = sum(arrival.step() for _ in range(200_000))
        assert fires == pytest.approx(2000, rel=0.15)

    def test_advance_offset_within_count(self):
        arrival = GeometricArrival(0.05, np.random.default_rng(3))
        offset = arrival.advance(10**6)
        assert offset is not None and 1 <= offset <= 10**6

    def test_advance_no_fire_consumes(self):
        arrival = GeometricArrival(0.5, np.random.default_rng(4))
        remaining_before = arrival._remaining
        if remaining_before > 1:
            assert arrival.advance(remaining_before - 1) is None
            assert arrival._remaining == 1

    def test_fires_within_is_pure(self):
        arrival = GeometricArrival(0.1, np.random.default_rng(5))
        snapshot = arrival._remaining
        arrival.fires_within(1000)
        assert arrival._remaining == snapshot

    def test_invalid_rate_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GeometricArrival(-0.1, rng)
        with pytest.raises(ValueError):
            GeometricArrival(1.5, rng)

    def test_set_rate_resamples(self):
        arrival = GeometricArrival(1e-6, np.random.default_rng(6))
        arrival.set_rate(1.0)
        assert arrival.step()

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.001, max_value=0.5), st.integers(0, 2**32 - 1))
    def test_advance_equivalent_to_stepping(self, rate, seed):
        """Bulk advance must fire at exactly the same offsets as stepping."""
        a = GeometricArrival(rate, np.random.default_rng(seed))
        b = GeometricArrival(rate, np.random.default_rng(seed))
        window = 500
        step_fires = [i for i in range(window) if a.step()]
        bulk_fires = []
        consumed = 0
        while consumed < window:
            offset = b.advance(window - consumed)
            if offset is None:
                break
            consumed += offset
            bulk_fires.append(consumed - 1)  # 0-based position
        assert bulk_fires == step_fires


class TestRegisterFaultModel:
    def test_fires_and_flips_state(self):
        rng = np.random.default_rng(7)
        model = RegisterFaultModel(1.0, rng, category=RegisterCategory.INT)
        state = ArchState()
        fired = model.on_instruction(state, step_info())
        assert fired
        assert any(state.regs.x) or True  # flip may hit x0; firing is the point

    def test_category_pinned(self):
        rng = np.random.default_rng(8)
        model = RegisterFaultModel(1.0, rng, category=RegisterCategory.FLAGS)
        state = ArchState()
        model.on_instruction(state, step_info())
        assert state.regs.flags != 0

    def test_zero_rate_never_fires(self):
        model = RegisterFaultModel(0.0, np.random.default_rng(9))
        state = ArchState()
        assert not any(
            model.on_instruction(state, step_info()) for _ in range(1000)
        )


class TestFunctionalUnitFaultModel:
    def test_only_counts_matching_unit(self):
        rng = np.random.default_rng(10)
        model = FunctionalUnitFaultModel(1.0, rng, FunctionalUnit.INT_MUL)
        state = ArchState()
        add_info = step_info(Opcode.ADD)
        assert not model.on_instruction(state, add_info)
        mul_instr = Instruction(Opcode.MUL, rd=3, rs1=1, rs2=2)
        mul_info = StepInfo(mul_instr, 0, 1, (), ("x", 3), None, None)
        assert model.on_instruction(state, mul_info)

    def test_no_dest_no_injection(self):
        rng = np.random.default_rng(11)
        model = FunctionalUnitFaultModel(1.0, rng, FunctionalUnit.STORE)
        state = ArchState()
        store_instr = Instruction(Opcode.STR, rs1=1, rs2=2)
        info = StepInfo(store_instr, 0, 1, (), None, 0, None)
        assert not model.on_instruction(state, info)

    def test_corrupts_written_register(self):
        rng = np.random.default_rng(12)
        model = FunctionalUnitFaultModel(1.0, rng, FunctionalUnit.INT_ALU)
        state = ArchState()
        state.regs.write_x(3, 100)
        model.on_instruction(state, step_info())
        assert state.regs.read_x(3) != 100


class TestMemoryFaultModel:
    def test_load_target_flips_loads_only(self):
        rng = np.random.default_rng(13)
        model = MemoryFaultModel(1.0, rng, target="load")
        value, fired = model.on_load(0)
        assert fired and value != 0
        value, fired = model.on_store(0)
        assert not fired and value == 0

    def test_store_target(self):
        rng = np.random.default_rng(14)
        model = MemoryFaultModel(1.0, rng, target="store")
        value, fired = model.on_store(5)
        assert fired and value != 5

    def test_single_bit_flip(self):
        rng = np.random.default_rng(15)
        model = MemoryFaultModel(1.0, rng, target="load")
        value, _ = model.on_load(0)
        assert bin(value).count("1") == 1

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            MemoryFaultModel(0.5, np.random.default_rng(0), target="banana")


class TestInjectorFastPath:
    def make_segment(self, instructions=100, loads=10, stores=5):
        segment = LogSegment(
            seq=1,
            granularity=RollbackGranularity.LINE,
            capacity_bytes=1 << 20,
            start_state=State(),
        )
        for _ in range(instructions):
            segment.record_instruction(FunctionalUnit.INT_ALU, writes_register=True)
        for i in range(loads):
            segment.record_load(i * 8, 0)
        for i in range(stores):
            segment.record_store(i * 8, 1, 0)
        return segment

    def test_zero_rate_never_fires_within(self):
        injector = default_injector(0.0)
        assert not injector.fires_within_segment(self.make_segment())

    def test_rate_one_always_fires(self):
        injector = default_injector(1.0)
        assert injector.fires_within_segment(self.make_segment())

    def test_skip_consumes_domains(self):
        injector = default_injector(1e-3, seed=1)
        segment = self.make_segment(instructions=10, loads=1, stores=1)
        register_model = injector.models[0]
        before = register_model.arrival._remaining
        if not injector.fires_within_segment(segment):
            injector.skip_segment(segment)
            assert register_model.arrival._remaining == before - 10

    def test_skip_after_fire_check_raises(self):
        injector = default_injector(1.0, seed=1)
        segment = self.make_segment()
        with pytest.raises(RuntimeError):
            injector.skip_segment(segment)

    def test_set_rate_propagates(self):
        injector = default_injector(1e-6)
        injector.set_rate(0.5)
        assert all(model.rate == 0.5 for model in injector.models)
        assert injector.enabled

    def test_clamped_rate_surfaces_in_telemetry(self):
        from repro.telemetry import Tracer

        injector = default_injector(1e-3)
        injector.tracer = Tracer()
        injector.set_rate(1e-16)  # inside (0, MIN_RATE): clamped
        clamped = injector.tracer.metrics.counters.get("faults.rate_clamped")
        assert clamped == len(injector.models)
        assert all(model.arrival.clamped for model in injector.models)
        # Restoring a sane rate stops the counting.
        injector.set_rate(1e-3)
        assert (
            injector.tracer.metrics.counters["faults.rate_clamped"] == clamped
        )

    def test_target_validation(self):
        with pytest.raises(ValueError):
            FaultInjector([], target="gpu")


class TestVoltageModel:
    def test_rate_increases_as_voltage_drops(self):
        model = VoltageErrorModel.itanium_9560()
        assert model.rate(1.0) > model.rate(1.05) > model.rate(1.1)

    def test_nominal_rate_negligible(self):
        model = VoltageErrorModel.itanium_9560()
        assert model.rate(1.1) < 1e-20

    def test_rate_clamped(self):
        model = VoltageErrorModel.itanium_9560()
        assert model.rate(0.1) == model.max_rate

    def test_inverse(self):
        model = VoltageErrorModel.itanium_9560()
        for rate in (1e-9, 1e-6, 1e-4):
            voltage = model.voltage_for_rate(rate)
            assert model.rate(voltage) == pytest.approx(rate)

    def test_first_error_voltage_ordering(self):
        model = VoltageErrorModel.itanium_9560()
        # Longer runs see their first error at a higher voltage.
        assert model.first_error_voltage(1e9) > model.first_error_voltage(1e6)

    def test_invalid_rate_rejected(self):
        model = VoltageErrorModel.itanium_9560()
        with pytest.raises(ValueError):
            model.voltage_for_rate(0.0)

    def test_cliff_below_margin(self):
        """The error cliff must sit inside the measured Arm margin width
        (roughly 10-13% below nominal)."""
        model = VoltageErrorModel.itanium_9560()
        cliff = model.voltage_for_rate(1e-6)
        assert 0.85 * model.nominal_voltage < cliff < 0.95 * model.nominal_voltage
