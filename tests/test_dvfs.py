"""Dynamic voltage adaptation (section IV-B)."""

import pytest

from repro.config import DvfsConfig
from repro.dvfs import VoltageController

F_TARGET = 3.2e9


def make(dynamic=True, **overrides):
    config = DvfsConfig(**overrides)
    return VoltageController(config, F_TARGET, dynamic_decrease=dynamic)


class TestDescent:
    def test_starts_at_safe_voltage(self):
        controller = make()
        assert controller.voltage == DvfsConfig().safe_voltage

    def test_clean_checkpoints_lower_target(self):
        controller = make()
        for i in range(10):
            controller.on_checkpoint(False, now_ns=float(i) * 1000)
        assert controller.target_voltage == pytest.approx(1.1 - 10 * 0.002)

    def test_never_below_min_voltage(self):
        controller = make(min_voltage=1.05)
        for i in range(1000):
            controller.on_checkpoint(False, now_ns=float(i) * 1000)
        assert controller.target_voltage >= 1.05

    def test_warm_start(self):
        controller = make(initial_difference=0.1)
        assert controller.target_voltage == pytest.approx(1.0)
        assert controller.voltage == pytest.approx(1.0)


class TestErrorResponse:
    def descend(self, controller, steps, start_ns=0.0):
        now = start_ns
        for _ in range(steps):
            now += 1000.0
            controller.on_checkpoint(False, now)
        return now

    def test_error_raises_voltage_by_0875_factor(self):
        controller = make()
        now = self.descend(controller, 50)  # difference = 0.1
        difference = 1.1 - controller.target_voltage
        controller.on_checkpoint(True, now + 1000)
        new_difference = 1.1 - controller.target_voltage
        assert new_difference == pytest.approx(difference * 0.875)

    def test_tide_mark_recorded(self):
        controller = make()
        now = self.descend(controller, 50)
        controller.advance_to(now + 1e6)  # let the regulator catch up
        controller.on_checkpoint(True, now + 1e6)
        assert controller.tide_mark == pytest.approx(1.0, abs=0.01)

    def test_decrease_slows_below_tide_mark(self):
        controller = make()
        now = self.descend(controller, 50)
        controller.advance_to(now + 1e6)
        controller.on_checkpoint(True, now + 1e6)  # sets tide mark ~1.0
        # Descend back under the tide mark: steps should shrink by 8x.
        target_before = controller.target_voltage
        now += 2e6
        controller.on_checkpoint(False, now)
        first_step = target_before - controller.target_voltage
        # Keep descending until below the tide mark, then measure a step.
        for i in range(200):
            now += 1000.0
            controller.on_checkpoint(False, now)
            if controller.target_voltage < controller.tide_mark - 0.002:
                break
        target_before = controller.target_voltage
        now += 1000.0
        controller.on_checkpoint(False, now)
        slow_step = target_before - controller.target_voltage
        assert slow_step == pytest.approx(0.002 / 8)
        del first_step

    def test_constant_decrease_ignores_tide(self):
        controller = make(dynamic=False)
        now = self.descend(controller, 50)
        controller.advance_to(now + 1e6)
        controller.on_checkpoint(True, now + 1e6)
        # Under constant decrease the step never shrinks.
        for i in range(60):
            now += 1e6
            before = controller.target_voltage
            controller.on_checkpoint(False, now + 2e6 + i)
            if before > controller.target_voltage:
                assert before - controller.target_voltage == pytest.approx(0.002)

    def test_tide_resets_after_100_errors(self):
        controller = make()
        now = self.descend(controller, 50)
        for i in range(100):
            now += 1e6
            controller.advance_to(now)
            controller.on_checkpoint(True, now)
        assert controller.tide_mark == 0.0
        assert controller.stats.tide_resets == 1

    def test_highest_error_voltage_never_resets(self):
        controller = make(tide_reset_errors=2)
        now = self.descend(controller, 50)
        controller.advance_to(now + 1e6)
        controller.on_checkpoint(True, now + 1e6)
        high = controller.stats.highest_error_voltage
        controller.on_checkpoint(True, now + 2e6)
        assert controller.stats.highest_error_voltage >= high


class TestRegulatorSlew:
    def test_actual_voltage_lags_target(self):
        controller = make()
        # Big target drop at t=0, advance only 1us: slew 0.01 V/us.
        for _ in range(100):
            controller.on_checkpoint(False, 0.0)
        controller.advance_to(1000.0)  # 1 us
        assert controller.voltage == pytest.approx(1.1 - 0.01)

    def test_actual_converges_to_target(self):
        controller = make()
        for _ in range(10):
            controller.on_checkpoint(False, 0.0)
        controller.advance_to(1e9)
        assert controller.voltage == pytest.approx(controller.target_voltage)

    def test_no_time_travel(self):
        controller = make()
        controller.advance_to(1000.0)
        voltage = controller.voltage
        controller.advance_to(500.0)  # earlier timestamp: ignored
        assert controller.voltage == voltage


class TestFrequency:
    def test_full_speed_when_converged(self):
        controller = make()
        controller.on_checkpoint(False, 0.0)
        controller.advance_to(1e9)
        assert controller.frequency_hz == F_TARGET

    def test_scaled_down_while_below_target(self):
        """After an error the target jumps up; until the regulator catches
        up, frequency follows (v - vth)/(v_target - vth)."""
        controller = make()
        now = 0.0
        for i in range(60):
            now += 1000.0
            controller.on_checkpoint(False, now)
        controller.advance_to(now + 1e9)  # settle low
        low = controller.voltage
        controller.on_checkpoint(True, now + 1e9)  # target rises
        target = controller.target_voltage
        assert target > low
        expected = F_TARGET * (low - 0.45) / (target - 0.45)
        assert controller.frequency_hz == pytest.approx(expected)

    def test_frequency_never_exceeds_target(self):
        controller = make()
        assert controller.frequency_hz <= F_TARGET


class TestTrace:
    def test_trace_recorded_per_checkpoint(self):
        controller = make()
        for i in range(5):
            controller.on_checkpoint(False, float(i))
        assert len(controller.stats.trace) == 5

    def test_mean_voltage_time_weighted(self):
        controller = make(step_volts=0.0)
        controller.on_checkpoint(False, 0.0)
        controller.on_checkpoint(False, 100.0)
        assert controller.stats.mean_voltage() == pytest.approx(1.1)
