"""The static HTML dashboard rendered from a campaign store."""

import json

import pytest

from repro.store import CampaignStore, render_dashboard, write_dashboard
from repro.store.dashboard import CLASS_COLORS, CLASS_ORDER, dashboard_json

SPEC = {
    "workload": "bitcount",
    "scale": 0.4,
    "seeds": 6,
    "rates": [1e-4, 1e-3],
    "models": ["transient"],
}


def payload(run_id, seed, rate=1e-4, voltage=None):
    data = {
        "run_id": run_id,
        "workload": "bitcount",
        "scale": 0.4,
        "seed": seed,
        "rate": rate,
        "model": "transient",
        "dvs": True,
        "initial_margin": 0.15,
        "chip_seed": 0,
        "tracing": False,
    }
    if voltage is not None:
        data["voltage"] = voltage
    return data


def record(run_id, seed, run_class, rate=1e-4, detail="", instructions=1000):
    return {
        "run_id": run_id,
        "seed": seed,
        "rate": rate,
        "model": "transient",
        "workload": "bitcount",
        "run_class": run_class,
        "chip_seed": 0,
        "detail": detail,
        "outcome": "completed",
        "recoveries": 0,
        "faults_injected": 1,
        "instructions": instructions,
        "quarantined": [],
        "escalations": {},
        "duration_s": 0.1,
    }


def populate(path, classes=("masked", "sdc", "hang"), voltage=None):
    with CampaignStore(path) as store:
        cells = [
            (f"key{i}", i, payload(i, i, voltage=voltage))
            for i in range(len(classes) + 1)
        ]
        store.register_campaign("campaign-a", SPEC, cells)
        for i, run_class in enumerate(classes):
            store.record_run(
                "campaign-a",
                f"key{i}",
                record(i, i, run_class),
                voltage=voltage,
            )
    return path


class TestRenderDashboard:
    def test_page_structure(self, tmp_path):
        path = populate(str(tmp_path / "s.sqlite"))
        with CampaignStore(path) as store:
            page = render_dashboard(store)
        assert page.startswith("<!DOCTYPE html>")
        assert "viz-root" in page and "<svg" in page
        assert "campaign-a" in page
        # One cell never recorded: the coverage stat shows 3 of 4.
        assert "grid cells" in page and "recorded" in page
        for run_class in ("masked", "sdc", "hang"):
            assert run_class in page

    def test_counts_table_always_present(self, tmp_path):
        # The palette's sub-3:1 segment colors are relieved by visible
        # labels and a table view; the table must always render.
        path = populate(str(tmp_path / "s.sqlite"))
        with CampaignStore(path) as store:
            page = render_dashboard(store)
        assert "<table" in page

    def test_untrusted_text_is_escaped(self, tmp_path):
        # Everything rendered from the store (a file someone handed you)
        # is untrusted; spec fields land in the page header.
        path = str(tmp_path / "s.sqlite")
        hostile = dict(SPEC, workload='<script>alert("x")</script>')
        with CampaignStore(path) as store:
            store.register_campaign(
                "campaign-a", hostile, [("key0", 0, payload(0, 0))]
            )
            store.record_run("campaign-a", "key0", record(0, 0, "sdc"))
            page = render_dashboard(store)
        assert "<script>alert" not in page
        assert "&lt;script&gt;" in page

    def test_campaign_key_prefix_filter(self, tmp_path):
        path = populate(str(tmp_path / "s.sqlite"))
        with CampaignStore(path) as store:
            assert "campaign-a" in render_dashboard(store, "campaign-")
            with pytest.raises(KeyError):
                render_dashboard(store, "nonexistent")

    def test_empty_store_renders(self, tmp_path):
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            assert "store is empty" in render_dashboard(store)

    def test_voltage_axis_used_when_all_runs_have_voltage(self, tmp_path):
        path = populate(str(tmp_path / "v.sqlite"), voltage=0.85)
        with CampaignStore(path) as store:
            page = render_dashboard(store)
        assert "voltage" in page

    def test_dark_mode_palette_included(self, tmp_path):
        path = populate(str(tmp_path / "s.sqlite"))
        with CampaignStore(path) as store:
            page = render_dashboard(store)
        assert "prefers-color-scheme: dark" in page


class TestWriteDashboard:
    def test_write_is_atomic_and_counts(self, tmp_path):
        store = populate(str(tmp_path / "s.sqlite"))
        out = tmp_path / "dash.html"
        assert write_dashboard(store, str(out)) == 1
        assert out.read_text().startswith("<!DOCTYPE html>")
        names = {p.name for p in tmp_path.iterdir()}
        assert not any(name.endswith(".tmp") for name in names)


class TestPalette:
    def test_one_color_per_outcome_class(self):
        assert set(CLASS_COLORS) == set(CLASS_ORDER)
        light = [CLASS_COLORS[name][0] for name in CLASS_ORDER]
        dark = [CLASS_COLORS[name][1] for name in CLASS_ORDER]
        assert len(set(light)) == len(light)  # no hue reuse
        assert len(set(dark)) == len(dark)

    def test_dashboard_json_is_serialisable(self, tmp_path):
        path = populate(str(tmp_path / "s.sqlite"))
        with CampaignStore(path) as store:
            payload = dashboard_json(store)
        json.dumps(payload)
        assert payload[0]["campaign_key"] == "campaign-a"
