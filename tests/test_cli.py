"""Command-line interface."""

import pytest

from repro.cli import main, resolve_workload


class TestResolve:
    def test_builtin_kernel(self):
        workload = resolve_workload("bitcount", 0.2)
        assert workload.name == "bitcount"

    def test_spec_proxy(self):
        workload = resolve_workload("gobmk", 0.1)
        assert workload.name == "gobmk"

    def test_unknown_exits(self):
        with pytest.raises(SystemExit):
            resolve_workload("doom", 1.0)


class TestCommands:
    def test_workloads_lists_everything(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "bitcount" in out
        assert "xalancbmk" in out

    def test_run_paradox(self, capsys):
        code = main(
            ["run", "crc32", "--system", "paradox", "--scale", "0.5", "--seed", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "paradox / crc32" in out
        assert "errors detected: 0" in out

    def test_run_with_errors(self, capsys):
        main(
            [
                "run", "bitcount", "--error-rate", "1e-3",
                "--scale", "0.2", "--seed", "5",
            ]
        )
        out = capsys.readouterr().out
        assert "errors detected" in out

    def test_run_with_timeline(self, capsys):
        main(["run", "crc32", "--scale", "0.3", "--timeline"])
        out = capsys.readouterr().out
        assert "dispatch" in out
        assert "c00" in out  # gantt row

    def test_compare_all_systems(self, capsys):
        main(["compare", "quicksort", "--scale", "0.3"])
        out = capsys.readouterr().out
        for name in ("baseline", "detection", "paramedic", "paradox"):
            assert name in out

    def test_figure_unknown_exits(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_figure_sec6e(self, capsys):
        assert main(["figure", "sec6e"]) == 0
        out = capsys.readouterr().out
        assert "overclocking" in out

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
